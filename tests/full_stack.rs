//! Full-stack integration tests spanning every crate: storage → ORM →
//! CacheGenie → social app → workload driver.

use cachegenie_repro::genie::ConsistencyStrategy;
use cachegenie_repro::social::{build_app, AppConfig, SeedConfig};
use cachegenie_repro::workload::{run, CacheMode, PageKind, WorkloadConfig};

fn tiny_app(strategy: Option<ConsistencyStrategy>) -> cachegenie_repro::social::AppEnv {
    build_app(&AppConfig {
        seed: SeedConfig::tiny(),
        strategy,
        ..Default::default()
    })
    .expect("build app")
}

#[test]
fn full_stack_page_loads_with_cache() {
    let env = tiny_app(Some(ConsistencyStrategy::UpdateInPlace));
    // Cold then warm render of a read page.
    let cold = env.app.lookup_fbm(1).unwrap();
    let warm = env.app.lookup_fbm(1).unwrap();
    assert!(warm.cache_hit_queries >= cold.cache_hit_queries);
    assert!(warm.db_cost.rows_scanned <= cold.db_cost.rows_scanned);
}

#[test]
fn cache_and_database_agree_after_a_busy_day() {
    // Interleave many page loads (reads + writes) and then verify every
    // cached object against a bypass query for a sample of users.
    let env = tiny_app(Some(ConsistencyStrategy::UpdateInPlace));
    for round in 0..5 {
        for user in 1..=10i64 {
            env.app.lookup_bm(user).unwrap();
            env.app.lookup_fbm(user).unwrap();
            if round % 2 == 0 {
                env.app
                    .create_bm(user, &format!("http://bookmark.example/{}", round * 3 + 1))
                    .unwrap();
            } else {
                env.app.accept_fr(user, (user % 10) + 1).unwrap();
            }
            env.app.view_wall(user).unwrap();
            env.app.post_wall(user, (user % 10) + 1, "hey").unwrap();
        }
    }
    let session = env.app.session();
    for user in 1..=10i64 {
        // Cached read.
        let qs = env.app.user_bookmarks_qs(user).unwrap();
        let cached = session.all(&qs).unwrap();
        // Ground truth with interception off.
        session.clear_interceptor();
        let truth = session.all(&qs).unwrap();
        env.genie.install(session);
        let key = |rows: &[cachegenie_repro::orm::OrmRow]| {
            let mut v: Vec<(i64, String)> = rows
                .iter()
                .map(|r| {
                    (
                        r.id(),
                        r.get("url").as_text().unwrap_or_default().to_owned(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&cached.rows), key(&truth.rows), "user {user} bookmarks");

        let (cached_n, _) = session.count(&env.app.friends_qs(user).unwrap()).unwrap();
        session.clear_interceptor();
        let (truth_n, _) = session.count(&env.app.friends_qs(user).unwrap()).unwrap();
        env.genie.install(session);
        assert_eq!(cached_n, truth_n, "user {user} friend count");
    }
}

#[test]
fn workload_all_modes_complete_and_order_sensibly() {
    let base = WorkloadConfig {
        clients: 5,
        sessions_per_client: 5,
        warmup_sessions_per_client: 1,
        pages_per_session: 6,
        seed: SeedConfig::tiny(),
        ..Default::default()
    };
    let mut results = Vec::new();
    for mode in [CacheMode::NoCache, CacheMode::Invalidate, CacheMode::Update] {
        results.push(
            run(&WorkloadConfig {
                mode,
                ..base.clone()
            })
            .unwrap(),
        );
    }
    let (nocache, invalidate, update) = (&results[0], &results[1], &results[2]);
    // The paper's headline ordering.
    assert!(
        update.throughput_pages_per_sec >= invalidate.throughput_pages_per_sec,
        "Update {:.1} >= Invalidate {:.1}",
        update.throughput_pages_per_sec,
        invalidate.throughput_pages_per_sec
    );
    assert!(
        invalidate.throughput_pages_per_sec > nocache.throughput_pages_per_sec,
        "Invalidate {:.1} > NoCache {:.1}",
        invalidate.throughput_pages_per_sec,
        nocache.throughput_pages_per_sec
    );
    // Latency ordering is the mirror image.
    assert!(update.mean_latency_s() <= invalidate.mean_latency_s());
    assert!(invalidate.mean_latency_s() < nocache.mean_latency_s());
    // Every page type in the configured mix was exercised (BatchPost
    // rides only in mixes that give it weight; the default reproduces the
    // paper's original 50:30:10:10).
    for kind in PageKind::all() {
        if kind == PageKind::BatchPost && base.mix.batch_post == 0 {
            continue;
        }
        assert!(
            update.per_page.contains_key(&kind),
            "missing page type {kind:?}"
        );
    }
}

#[test]
fn write_pages_slower_cached_read_pages_faster() {
    // Table 2's qualitative content.
    let base = WorkloadConfig {
        clients: 5,
        sessions_per_client: 6,
        warmup_sessions_per_client: 1,
        pages_per_session: 8,
        seed: SeedConfig::tiny(),
        ..Default::default()
    };
    let nocache = run(&WorkloadConfig {
        mode: CacheMode::NoCache,
        ..base.clone()
    })
    .unwrap();
    let update = run(&WorkloadConfig {
        mode: CacheMode::Update,
        ..base
    })
    .unwrap();
    let mean = |r: &cachegenie_repro::workload::RunResult, k: PageKind| {
        r.per_page.get(&k).map(|m| m.mean_s()).unwrap_or(0.0)
    };
    // Reads: dramatically faster with the cache.
    assert!(
        mean(&update, PageKind::LookupFBM) < mean(&nocache, PageKind::LookupFBM),
        "LookupFBM cached {:.3}s vs NoCache {:.3}s",
        mean(&update, PageKind::LookupFBM),
        mean(&nocache, PageKind::LookupFBM)
    );
}

#[test]
fn nocache_and_cached_serve_identical_results_via_workload_seed() {
    // Two full deployments from the same seed are row-for-row identical
    // in what pages observe (the cache is an optimization, not a fork).
    let a = tiny_app(None);
    let b = tiny_app(Some(ConsistencyStrategy::Invalidate));
    for user in 1..=10i64 {
        let qa = a
            .app
            .session()
            .all(&a.app.friends_qs(user).unwrap())
            .unwrap();
        let qb = b
            .app
            .session()
            .all(&b.app.friends_qs(user).unwrap())
            .unwrap();
        assert_eq!(qa.rows.len(), qb.rows.len(), "user {user}");
    }
}

#[test]
fn facade_reexports_compile_together() {
    // The facade exposes every layer under one roof.
    use cachegenie_repro::{cache, genie, orm, sim, social, storage, workload};
    let _ = sim::SimTime::ZERO;
    let _ = storage::Value::Int(1);
    let _ = cache::Payload::Count(1);
    let _: Option<orm::FilterOp> = None;
    let _ = genie::SortOrder::Descending;
    let _ = social::SeedConfig::tiny();
    let _ = workload::CacheMode::Update;
}
