//! A miniature end-to-end run of the paper's evaluation: seed a small
//! social network, run the 50:30:10:10 workload in all three caching
//! modes, and print the throughput comparison (Figure 2a's 15-client
//! point, at example scale).
//!
//! Run with: `cargo run --release --example mini_benchmark`

use cachegenie_repro::workload::{run, CacheMode, WorkloadConfig};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let base = WorkloadConfig {
        clients: 10,
        sessions_per_client: 8,
        warmup_sessions_per_client: 2,
        ..WorkloadConfig::default()
    };
    println!("mode        pages/s   mean_latency  cache_hit%  bottleneck");
    let mut nocache = 0.0;
    for mode in [CacheMode::NoCache, CacheMode::Invalidate, CacheMode::Update] {
        let r = run(&WorkloadConfig {
            mode,
            ..base.clone()
        })?;
        if mode == CacheMode::NoCache {
            nocache = r.throughput_pages_per_sec;
        }
        println!(
            "{:<10}  {:>7.1}   {:>10.3}s   {:>8.1}   {} ({:.0}%)",
            mode.label(),
            r.throughput_pages_per_sec,
            r.mean_latency_s(),
            r.cache_stats.hit_ratio() * 100.0,
            r.bottleneck().0,
            r.bottleneck().1 * 100.0,
        );
        if mode == CacheMode::Update {
            println!(
                "\nUpdate vs NoCache: {:.2}x (paper reports 2-2.5x)",
                r.throughput_pages_per_sec / nocache
            );
        }
    }
    Ok(())
}
