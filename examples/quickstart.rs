//! Quickstart: the paper's §3.1 user-profile example, end to end.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Shows the whole CacheGenie loop: declare one cached object, keep
//! application code unchanged, and watch reads come from the cache while
//! a database trigger keeps the cached entry fresh across writes.

use cachegenie::{CacheGenie, CacheableDef, GenieConfig};
use cachegenie_repro::cache::{CacheCluster, ClusterConfig};
use cachegenie_repro::orm::{FieldDef, ModelDef, ModelRegistry, OrmSession};
use cachegenie_repro::storage::{Database, Value, ValueType};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Models, database, session — ordinary ORM setup.
    let mut registry = ModelRegistry::new();
    registry.register(
        ModelDef::builder("User", "users")
            .field(FieldDef::new("username", ValueType::Text).not_null())
            .build(),
    )?;
    registry.register(
        ModelDef::builder("Profile", "profiles")
            .foreign_key("user_id", "User")
            .field(FieldDef::new("bio", ValueType::Text))
            .build(),
    )?;
    let registry = Arc::new(registry);
    let db = Database::default();
    registry.sync(&db)?;
    let session = OrmSession::new(db.clone(), Arc::clone(&registry));

    session.create("User", &[("username", "alice".into())])?;
    // user 42 doesn't exist yet: foreign keys are enforced.
    assert!(session
        .create("Profile", &[("user_id", 42i64.into()), ("bio", "x".into())])
        .is_err());
    let profile_id = session
        .create(
            "Profile",
            &[("user_id", 1i64.into()), ("bio", "hello world".into())],
        )?
        .new_id
        .expect("create returns the new id");

    // 2. CacheGenie: one declaration — the paper's `cacheable(...)` call.
    let genie = CacheGenie::new(
        db,
        CacheCluster::new(ClusterConfig::default()),
        registry,
        GenieConfig::default(),
    );
    genie.cacheable(
        CacheableDef::feature("cached_user_profile", "Profile").where_fields(&["user_id"]),
    )?;
    genie.install(&session);
    println!(
        "declared 1 cached object -> {} triggers, {} lines of generated trigger code",
        genie.trigger_count(),
        genie.generated_trigger_lines()
    );

    // 3. Application code is UNCHANGED: the same query now hits the cache.
    let qs = session.objects("Profile")?.filter_eq("user_id", 1i64);
    let first = session.all(&qs)?;
    println!(
        "first read : from_cache={} bio={}",
        first.from_cache,
        first.rows[0].get("bio")
    );
    let second = session.all(&qs)?;
    println!(
        "second read: from_cache={} bio={}",
        second.from_cache,
        second.rows[0].get("bio")
    );
    assert!(second.from_cache);

    // 4. A write fires the generated trigger, which updates the cached
    //    entry in place — the next read is fresh AND from the cache.
    session.update_by_id("Profile", profile_id, &[("bio", "updated!".into())])?;
    let third = session.all(&qs)?;
    println!(
        "after write: from_cache={} bio={}",
        third.from_cache,
        third.rows[0].get("bio")
    );
    assert!(third.from_cache);
    assert_eq!(third.rows[0].get("bio"), &Value::Text("updated!".into()));

    println!("stats: {:?}", genie.stats());
    Ok(())
}
