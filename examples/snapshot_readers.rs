//! MVCC snapshot readers: a long analytics transaction scans the wall
//! while BatchPost writer threads commit bursts underneath it — the
//! scan never blocks, never deadlocks, and every read inside it agrees
//! with the snapshot it pinned at BEGIN, no matter how many commits
//! land meanwhile.
//!
//! Under the pre-MVCC engine (table-shared reader locks), the analytics
//! transaction would stall behind every open writer transaction and
//! hold its own shared locks against them; you can watch that world by
//! flipping `db.set_reader_table_locks(true)` below.
//!
//! Run with: `cargo run --example snapshot_readers`

use cachegenie_repro::social::{build_app, AppConfig, SeedConfig};
use cachegenie_repro::storage::Value;
use std::error::Error;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn Error>> {
    let env = build_app(&AppConfig {
        seed: SeedConfig {
            users: 20,
            ..SeedConfig::tiny()
        },
        ..Default::default()
    })?;
    let db = env.db.clone();
    // Flip to `true` to feel the PR-4 baseline: the analytics scan
    // below will wait behind every writer transaction's intent locks.
    db.set_reader_table_locks(false);

    // --- writers: BatchPost bursts with application think time -------
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let app = env.app.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut committed = 0u64;
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let wall = (w as i64 * 5 + i) % 20 + 1;
                    let sender = (i % 20) + 1;
                    // Each burst holds its row locks across the pacing
                    // callback — the window a blocking reader would
                    // stall in.
                    let paced = app.post_wall_batch_paced(wall, sender, 3, false, &|| {
                        std::thread::sleep(Duration::from_micros(200));
                    });
                    if paced.is_ok() {
                        committed += 1;
                    }
                    i += 1;
                }
                committed
            })
        })
        .collect();

    // --- the long analytics scan -------------------------------------
    // One read-only transaction: pin a snapshot, then take slow,
    // repeated measurements while the writers churn.
    std::thread::sleep(Duration::from_millis(20)); // let writers warm up
    let t0 = Instant::now();
    db.execute_sql("BEGIN", &[])?;
    let count = |db: &cachegenie_repro::storage::Database| -> Result<i64, Box<dyn Error>> {
        Ok(db
            .execute_sql("SELECT COUNT(*) FROM wall_posts", &[])?
            .result
            .rows[0]
            .get(0)
            .as_int()
            .unwrap_or(0))
    };
    let baseline = count(&db)?;
    let mut max_stmt = Duration::ZERO;
    let mut per_user_total = 0i64;
    for user in 1..=20i64 {
        let s = Instant::now();
        let n = db
            .execute_sql(
                "SELECT COUNT(*) FROM wall_posts WHERE user_id = $1",
                &[Value::Int(user)],
            )?
            .result
            .rows[0]
            .get(0)
            .as_int()
            .unwrap_or(0);
        max_stmt = max_stmt.max(s.elapsed());
        per_user_total += n;
        std::thread::sleep(Duration::from_millis(2)); // slow analytics
    }
    let recheck = count(&db)?;
    db.execute_sql("COMMIT", &[])?;
    let scan_elapsed = t0.elapsed();

    stop.store(true, Ordering::Relaxed);
    let committed: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    let final_count = count(&db)?;

    println!("snapshot_readers: long analytics scan vs {committed} committed write bursts");
    println!("  snapshot total at BEGIN ......... {baseline} posts");
    println!("  sum of 20 per-user counts ....... {per_user_total} posts");
    println!("  total re-checked at end of txn .. {recheck} posts");
    println!("  total after txn (fresh snapshot)  {final_count} posts");
    println!(
        "  scan wall time {scan_elapsed:?}, slowest statement {max_stmt:?}, \
         reader lock waits: 0 by construction"
    );

    // The guarantees, asserted:
    assert_eq!(
        baseline, recheck,
        "the snapshot must not move during the transaction"
    );
    assert_eq!(
        baseline, per_user_total,
        "per-user counts must sum to the snapshot total (one consistent cut)"
    );
    assert!(
        final_count >= baseline,
        "commits that landed during the scan become visible afterwards"
    );
    println!("  consistent snapshot, zero blocking — ok");
    Ok(())
}
