//! Dashboard counters on CacheGenie's Count cache class, comparing the
//! two consistency strategies side by side: update-in-place keeps serving
//! from the cache across writes (incr/decr in the trigger), while
//! invalidation pays a database recompute after every write.
//!
//! Run with: `cargo run --example analytics_counters`

use cachegenie::{CacheGenie, CacheableDef, ConsistencyStrategy, GenieConfig};
use cachegenie_repro::cache::{CacheCluster, ClusterConfig};
use cachegenie_repro::orm::{FieldDef, ModelDef, ModelRegistry, OrmSession};
use cachegenie_repro::storage::{Database, Value, ValueType};
use std::error::Error;
use std::sync::Arc;

fn deploy(strategy: ConsistencyStrategy) -> Result<(OrmSession, CacheGenie), Box<dyn Error>> {
    let mut registry = ModelRegistry::new();
    registry.register(
        ModelDef::builder("Event", "events")
            .field(FieldDef::new("kind", ValueType::Text).not_null().indexed())
            .field(FieldDef::new("at", ValueType::Timestamp).not_null())
            .build(),
    )?;
    let registry = Arc::new(registry);
    let db = Database::default();
    registry.sync(&db)?;
    let session = OrmSession::new(db.clone(), Arc::clone(&registry));
    let genie = CacheGenie::new(
        db,
        CacheCluster::new(ClusterConfig::default()),
        registry,
        GenieConfig::default(),
    );
    genie.cacheable(
        CacheableDef::count("events_by_kind", "Event")
            .where_fields(&["kind"])
            .strategy(strategy),
    )?;
    genie.install(&session);
    Ok((session, genie))
}

fn drive(label: &str, session: &OrmSession, genie: &CacheGenie) -> Result<(), Box<dyn Error>> {
    let count_of = |kind: &str| -> Result<(i64, bool), Box<dyn Error>> {
        let qs = session.objects("Event")?.filter_eq("kind", kind);
        let (n, out) = session.count(&qs)?;
        Ok((n, out.from_cache))
    };
    // Warm the two counters.
    for kind in ["signup", "click"] {
        count_of(kind)?;
    }
    // A burst of writes...
    for i in 0..10i64 {
        let kind = if i % 3 == 0 { "signup" } else { "click" };
        session.create(
            "Event",
            &[("kind", kind.into()), ("at", Value::Timestamp(i))],
        )?;
    }
    // ...then dashboard reads.
    let (signups, s_cached) = count_of("signup")?;
    let (clicks, c_cached) = count_of("click")?;
    let stats = genie.stats();
    println!(
        "{label:<16} signups={signups} (cached={s_cached})  clicks={clicks} (cached={c_cached})  \
         in-place updates={}  invalidations={}  db misses={}",
        stats.inplace_updates, stats.invalidations, stats.cache_misses
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let (s1, g1) = deploy(ConsistencyStrategy::UpdateInPlace)?;
    drive("update-in-place", &s1, &g1)?;
    let (s2, g2) = deploy(ConsistencyStrategy::Invalidate)?;
    drive("invalidate", &s2, &g2)?;
    println!("\nBoth strategies return identical counts; update-in-place keeps serving");
    println!("them from the cache, which is the paper's throughput advantage.");
    Ok(())
}
