//! A social feed on CacheGenie's Top-K cache class — the paper's §3.2
//! wall example: the latest-20 list is maintained *incrementally* by
//! database triggers (insert at sort position, reserve absorbs deletes,
//! recompute only when the reserve runs out).
//!
//! Run with: `cargo run --example social_feed`

use cachegenie::SortOrder;
use cachegenie_repro::cache::{CacheCluster, ClusterConfig};
use cachegenie_repro::genie::{CacheGenie, CacheableDef, GenieConfig};
use cachegenie_repro::orm::OrmSession;
use cachegenie_repro::social::build_registry;
use cachegenie_repro::storage::{Database, Value};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let registry = Arc::new(build_registry()?);
    let db = Database::default();
    registry.sync(&db)?;
    let session = OrmSession::new(db.clone(), Arc::clone(&registry));
    let app = cachegenie_repro::social::SocialApp::new(session.clone());

    // Two users; user 1 owns the wall we watch.
    for name in ["walter", "wanda"] {
        session.create(
            "User",
            &[
                ("username", name.into()),
                ("date_joined", Value::Timestamp(0)),
                ("last_login", Value::Timestamp(0)),
            ],
        )?;
    }

    let genie = CacheGenie::new(
        db,
        CacheCluster::new(ClusterConfig::default()),
        registry,
        GenieConfig::default(),
    );
    genie.cacheable(
        CacheableDef::top_k(
            "latest_wall_posts",
            "WallPost",
            "date_posted",
            SortOrder::Descending,
            5,
        )
        .where_fields(&["user_id"])
        .reserve(2),
    )?;
    genie.install(&session);

    // Fill the feed.
    for i in 1..=8 {
        app.post_wall(1, 2, &format!("post #{i}"))?;
    }
    // The cached object uses K=5; build the matching query shape (the
    // app's standard wall page uses K=20).
    let feed_qs = || -> Result<_, Box<dyn Error>> {
        Ok(session
            .objects("WallPost")?
            .filter_eq("user_id", 1i64)
            .order_by("-date_posted")
            .limit(5))
    };
    let feed = |label: &str| -> Result<(), Box<dyn Error>> {
        let out = session.all(&feed_qs()?)?;
        let posts: Vec<String> = out
            .rows
            .iter()
            .map(|r| r.get("content").as_text().unwrap_or("?").to_owned())
            .collect();
        println!("{label:<28} from_cache={:<5} -> {posts:?}", out.from_cache);
        Ok(())
    };
    feed("initial feed")?;
    feed("warm feed")?;

    // New posts enter the cached list at the right position via triggers.
    app.post_wall(1, 2, "breaking news!")?;
    feed("after a new post")?;

    // Deletes are absorbed by the reserve...
    let newest = session
        .all(&feed_qs()?)?
        .rows
        .first()
        .map(|r| r.id())
        .expect("feed nonempty");
    session.delete_by_id("WallPost", newest)?;
    feed("after deleting the newest")?;

    // ...until it runs out, which forces one recompute.
    for _ in 0..4 {
        let id = session
            .all(&feed_qs()?)?
            .rows
            .first()
            .map(|r| r.id())
            .expect("feed nonempty");
        session.delete_by_id("WallPost", id)?;
    }
    feed("after exhausting reserve")?;
    println!("\nmiddleware stats: {:?}", genie.stats());
    Ok(())
}
