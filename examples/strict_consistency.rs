//! The §3.3 strict-consistency extension: two-phase locking over cache
//! keys, with timeout-based deadlock resolution and abort-time key drops.
//! The paper designs this protocol but leaves it unimplemented; this
//! reproduction builds it.
//!
//! Run with: `cargo run --example strict_consistency`

use cachegenie::{CacheGenie, CacheableDef, GenieConfig, StrictTxnManager};
use cachegenie_repro::cache::{CacheCluster, ClusterConfig};
use cachegenie_repro::orm::{FieldDef, ModelDef, ModelRegistry, OrmSession};
use cachegenie_repro::storage::{Database, Value, ValueType};
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let mut registry = ModelRegistry::new();
    registry.register(
        ModelDef::builder("Account", "accounts")
            .field(FieldDef::new("owner", ValueType::Int).not_null().indexed())
            .field(FieldDef::new("balance", ValueType::Int).not_null())
            .build(),
    )?;
    let registry = Arc::new(registry);
    let db = Database::default();
    registry.sync(&db)?;
    let session = OrmSession::new(db.clone(), Arc::clone(&registry));
    let genie = CacheGenie::new(
        db,
        CacheCluster::new(ClusterConfig::default()),
        registry,
        GenieConfig::default(),
    );
    // Strict-mode objects opt out of transparent fetching (§3.3's escape
    // hatch) and are read through transactions instead.
    genie.cacheable(
        CacheableDef::feature("account_by_owner", "Account")
            .where_fields(&["owner"])
            .manual_only(),
    )?;
    session.create(
        "Account",
        &[("owner", 7i64.into()), ("balance", 100i64.into())],
    )?;

    let mgr = StrictTxnManager::new();

    // T1 reads owner 7's account under a read lock.
    let mut t1 = mgr.begin(&genie);
    let out = t1.read("account_by_owner", &[Value::Int(7)])?;
    println!(
        "T1 read balance={} (from_cache={})",
        out.result.rows[0].get(2),
        out.from_cache
    );

    // T2 wants to write the same key: blocked by 2PL, then times out —
    // the paper's deadlock/conflict handling.
    let mut t2 = mgr.begin(&genie);
    match t2.write_lock("account_by_owner", &[Value::Int(7)]) {
        Err(e) => println!("T2 write blocked as expected: {e}"),
        Ok(()) => unreachable!("reader holds the key"),
    }
    println!("T2 aborts: {:?}", t2.abort());

    // T1 upgrades (sole reader), writes through the DB, commits.
    t1.write_lock("account_by_owner", &[Value::Int(7)])?;
    session.update_by_id("Account", 1, &[("balance", 175i64.into())])?;
    println!("T1 commits: {:?}", t1.commit());

    // A fresh transaction sees the committed balance.
    let mut t3 = mgr.begin(&genie);
    let out = t3.read("account_by_owner", &[Value::Int(7)])?;
    println!(
        "T3 read balance={} (from_cache={})",
        out.result.rows[0].get(2),
        out.from_cache
    );
    assert_eq!(out.result.rows[0].get(2), &Value::Int(175));
    t3.commit();
    assert_eq!(mgr.locked_keys(), 0);
    println!("all locks released; done");
    Ok(())
}
