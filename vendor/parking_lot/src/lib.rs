//! Offline shim for the `parking_lot` API surface this workspace uses.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching
//! parking_lot's semantics of panicking threads simply releasing the lock.
//! Only the constructors and guard types the workspace calls are provided.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(p) => MutexGuard(p.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(7);
        {
            let _r = l.read();
            assert!(l.try_read().is_some(), "readers share");
            assert!(l.try_write().is_none(), "writer excluded by reader");
        }
        {
            let _w = l.try_write().expect("uncontended try_write succeeds");
            assert!(l.try_read().is_none(), "reader excluded by writer");
        }
        assert_eq!(*l.try_read().expect("free again"), 7);
    }
}
