//! Offline shim for the `proptest` API surface this workspace uses.
//!
//! Provides the `proptest!` test harness, the [`Strategy`] trait with
//! `prop_map`, range / tuple / collection / option / sample strategies,
//! char-class string patterns, and the `prop_assert*` macros. Generation
//! is deterministic: each test derives its RNG seed from the test-function
//! name and case number, so failures reproduce exactly across runs.
//! Shrinking is intentionally not implemented — on failure the harness
//! prints the generated inputs for the failing case instead.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Runner configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies (deterministic per test + case).
pub type TestRng = StdRng;

/// Builds the per-case RNG from a stable hash of the test name.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37))
}

// ---------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Values with a canonical "any" strategy (a pragmatic subset of
/// proptest's `Arbitrary`).
pub trait ArbitraryValue: Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<T>()`).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arb_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix edge cases in, as real proptest's binary search
                // around special values tends to surface them.
                match rng.gen_range(0..20u32) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.gen_range(<$t>::MIN..=<$t>::MAX),
                }
            }
        }
    )*};
}

impl_arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.gen_range(0..16u32) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            _ => {
                let mantissa = rng.gen_range(-1.0e9..1.0e9);
                let exp = rng.gen_range(-6..7i32);
                mantissa * 10f64.powi(exp)
            }
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, f64);

// Char-class string patterns: `"[a-z]{1,6}"` etc. Supports literal
// characters, `[...]` classes with ranges, and `{n}` / `{m,n}` counts.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        set.push(char::from_u32(c).expect("ascii range"));
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional repetition count.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("repeat lower bound"),
                    b.trim().parse::<usize>().expect("repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let n = rng.gen_range(lo..=hi);
        assert!(!class.is_empty(), "empty character class in {pattern:?}");
        for _ in 0..n {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Weighted union over same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union choosing uniformly among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Vectors whose length is drawn from `sizes` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.sizes.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// Uniformly selects one element of `items`.
    pub fn select<T: Clone + Debug + 'static>(items: Vec<T>) -> SelectStrategy<T> {
        assert!(!items.is_empty(), "select over an empty vec");
        SelectStrategy { items }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct SelectStrategy<T> {
        items: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for SelectStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl ArbitraryValue for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.gen_range(0..=u64::MAX))
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::*;

    /// `None` 25% of the time, `Some(inner)` otherwise (matching
    /// proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `prop::` namespace used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    pub use rand::{Rng, RngCore};
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform choice among strategy arms yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assertion macros: plain asserts (no shrinking machinery to unwind).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The property-test harness. Each declared function runs `cases` times
/// with fresh generated inputs; on panic the failing inputs are printed.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let guard = $crate::FailureReporter {
                        armed: true,
                        dump: format!(
                            concat!("proptest case {} of ", stringify!($name), ":"
                                    $(, "\n  ", stringify!($arg), " = {:?}")+),
                            case $(, &$arg)+
                        ),
                    };
                    $body
                    guard.disarm();
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Prints the generated inputs when a property body panics.
pub struct FailureReporter {
    /// Whether the drop handler should report.
    pub armed: bool,
    /// Pre-rendered description of the case inputs.
    pub dump: String,
}

impl FailureReporter {
    /// Marks the case as passed.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for FailureReporter {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!("{}", self.dump);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strings_honor_class_and_count() {
        let mut rng = crate::case_rng("pattern", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::case_rng("tuple", 1);
        let strat = (0..5i64, 10u8..12, any::<bool>());
        for _ in 0..100 {
            let (a, b, _c) = Strategy::generate(&strat, &mut rng);
            assert!((0..5).contains(&a));
            assert!((10..12).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::case_rng("oneof", 2);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a: Vec<i64> = {
            let mut rng = crate::case_rng("same", 7);
            (0..10)
                .map(|_| Strategy::generate(&(0..100i64), &mut rng))
                .collect()
        };
        let b: Vec<i64> = {
            let mut rng = crate::case_rng("same", 7);
            (0..10)
                .map(|_| Strategy::generate(&(0..100i64), &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_runs_generated_cases(v in prop::collection::vec(0..10i64, 0..5)) {
            prop_assert!(v.len() < 5);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 10).count(), 0);
        }
    }
}
