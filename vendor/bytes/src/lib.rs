//! Offline shim for the `bytes` API surface this workspace uses.
//!
//! [`Bytes`] is a cheaply clonable immutable byte buffer (an `Arc<[u8]>`
//! here — no zero-copy slicing, which the workspace never relies on),
//! [`BytesMut`] a growable builder that freezes into one. The [`Buf`] and
//! [`BufMut`] traits cover the little-endian accessors the cache codec
//! calls.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Wraps a static slice (copied here; the shim has no zero-copy path).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes(Arc::from(v.as_bytes()))
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.0.len())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.0.len())
    }
}

/// Read-side cursor operations over a byte source.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut a = [0u8; 2];
        a.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(a)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(a)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        i64::from_le_bytes(a)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(a)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side append operations over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16_le(0xCA6E);
        b.put_u8(7);
        b.put_u32_le(42);
        b.put_i64_le(-5);
        b.put_f64_le(2.5);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u16_le(), 0xCA6E);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 42);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert_eq!(Bytes::copy_from_slice(b"xy").len(), 2);
    }
}
