//! Offline shim for the `rand` API surface this workspace uses.
//!
//! The workspace only needs deterministic seeded randomness (`StdRng` via
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, `gen_bool`). The generator is xoshiro256++ seeded through
//! splitmix64 — high-quality, fast, and reproducible; no OS entropy is
//! ever touched, which also suits the no-network build sandbox.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling operations, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive; integer or
    /// float element types — see [`SampleRange`]).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to sample its element type uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)`.
fn sample_unit_f64(bits: u64) -> f64 {
    // 53 high bits give a uniform dyadic rational in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, n)` by Lemire's multiply-shift with rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Reject the partial final stripe to stay exactly uniform.
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = (rng.next_u64() as u128) * (n as u128);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Whole-domain request: raw bits are already uniform.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = sample_unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + sample_unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..10i64);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=5usize);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn int_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..=4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_range(0..10u64) == 0).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "frac {frac}");
    }
}
