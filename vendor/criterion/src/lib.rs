//! Offline shim for the `criterion` API surface this workspace uses.
//!
//! Implements the group/bench/iter call structure with a plain
//! time-boxed measurement loop (warm-up, then repeated timed batches,
//! reporting the median per-iteration time). No statistical analysis,
//! plotting, or baseline storage — this exists so `cargo bench` gives
//! usable numbers and bench targets compile without the network.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1000);
const BATCHES: usize = 20;

/// Benchmark registry and runner handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _c: self,
            group: name,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, f);
        self
    }
}

/// A set of benchmarks sharing a group name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IdLike, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.group, id.render()), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.group, id.render()), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; reports print as benches run).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Accepted benchmark-name types.
pub trait IdLike {
    /// The display form.
    fn render(&self) -> String;
}

impl IdLike for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl IdLike for String {
    fn render(&self) -> String {
        self.clone()
    }
}

impl IdLike for BenchmarkId {
    fn render(&self) -> String {
        self.name.clone()
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, recording the median batch time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the batch so one batch is ~1ms.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((MEASURE.as_nanos() as f64 / BATCHES as f64 / per_iter.max(1.0)) as u64)
            .clamp(1, 10_000_000);

        let mut samples = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    if b.ns_per_iter >= 1000.0 {
        eprintln!("  {id}: {:.2} us/iter", b.ns_per_iter / 1000.0);
    } else {
        eprintln!("  {id}: {:.0} ns/iter", b.ns_per_iter);
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups, honoring `--test` mode so
/// `cargo test --benches` stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` passes --test to harness=false bench targets;
            // compile-check mode only, skip the timed runs.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
