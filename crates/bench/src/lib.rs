//! # genie-bench
//!
//! Shared plumbing for the experiment binaries that regenerate every
//! table and figure of the CacheGenie paper (see `src/bin/`), plus
//! Criterion micro-benchmarks of the substrate crates (`benches/`).
//!
//! Run everything with `cargo run --release -p genie-bench --bin run_all`.

use genie_social::SeedConfig;
use genie_workload::{CacheMode, RunResult, WorkloadConfig};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// The reproduction's standard scale: the paper's 1 M-user / 10 GB / 2 GB
/// testbed shrunk ~2500× with the buffer-pool : dataset ratio preserved,
/// so the DB still cannot hold the working set in memory.
pub fn paper_scale() -> WorkloadConfig {
    WorkloadConfig {
        mode: CacheMode::Update,
        clients: 15,
        sessions_per_client: 12,
        warmup_sessions_per_client: 8,
        pages_per_session: 10,
        mix: Default::default(),
        zipf_a: 2.0,
        seed: SeedConfig {
            users: 400,
            unique_bookmarks: 150,
            // The paper's per-user ranges: 1-20 bookmark instances,
            // 1-50 friends, 1-100 pending invitations (scaled ~2x down).
            max_instances_per_user: 15,
            max_friends: 32,
            max_pending_invitations: 20,
            groups: 25,
            max_groups_per_user: 3,
            max_wall_posts_per_user: 10,
            rng_seed: 42,
        },
        db_buffer_pool_bytes: 2 * 1024 * 1024,
        cache_bytes: 8 * 1024 * 1024,
        cache_servers: 1,
        colocated_cache: false,
        triggers_enabled: true,
        bump_lru_on_trigger: true,
        reuse_trigger_connections: false,
        batch_posts_per_txn: 4,
        batch_abort_pct: 25,
        cost: Default::default(),
        rng_seed: 1,
    }
}

/// A quick scale for CI / smoke runs (`--quick` on every binary).
pub fn quick_scale() -> WorkloadConfig {
    WorkloadConfig {
        sessions_per_client: 6,
        warmup_sessions_per_client: 2,
        seed: SeedConfig {
            users: 120,
            unique_bookmarks: 60,
            ..paper_scale().seed
        },
        db_buffer_pool_bytes: 256 * 1024,
        ..paper_scale()
    }
}

/// Picks the scale from argv (`--quick` anywhere selects the small one).
pub fn scale_from_args() -> WorkloadConfig {
    if std::env::args().any(|a| a == "--quick") {
        quick_scale()
    } else {
        paper_scale()
    }
}

/// All three systems compared throughout §5.4.
pub const MODES: [CacheMode; 3] = [CacheMode::NoCache, CacheMode::Invalidate, CacheMode::Update];

/// Where experiment outputs are written.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes `content` under `results/<name>` and echoes the path.
pub fn write_result(name: &str, content: &str) {
    let path = results_dir().join(name);
    if let Err(e) = fs::write(&path, content) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("  wrote {}", path.display());
    }
}

/// Machine-readable benchmark summary: a flat, ordered JSON object
/// written as `results/BENCH_<name>.json` next to the human-readable
/// output. Built field by field so every experiment binary emits the
/// same shape without a serialization dependency:
///
/// ```no_run
/// genie_bench::BenchJson::new("exp_demo")
///     .int("threads", 8)
///     .num("throughput_txns_per_sec", 1234.5)
///     .nums("speedups", &[1.0, 1.9, 3.7])
///     .write();
/// ```
#[derive(Debug)]
pub struct BenchJson {
    name: String,
    fields: Vec<(String, String)>,
}

impl BenchJson {
    /// Starts a summary for the experiment called `name`.
    pub fn new(name: &str) -> Self {
        BenchJson {
            name: name.to_owned(),
            fields: vec![("experiment".to_owned(), json_str(name))],
        }
    }

    fn push(mut self, key: &str, value: String) -> Self {
        self.fields.push((key.to_owned(), value));
        self
    }

    /// Adds an integer field.
    #[must_use]
    pub fn int(self, key: &str, v: u64) -> Self {
        self.push(key, v.to_string())
    }

    /// Adds a float field (non-finite values become `null`).
    #[must_use]
    pub fn num(self, key: &str, v: f64) -> Self {
        self.push(key, json_num(v))
    }

    /// Adds a string field.
    #[must_use]
    pub fn str_field(self, key: &str, v: &str) -> Self {
        self.push(key, json_str(v))
    }

    /// Adds an integer-array field (e.g. the swept thread counts).
    #[must_use]
    pub fn ints(self, key: &str, vs: &[u64]) -> Self {
        let items: Vec<String> = vs.iter().map(u64::to_string).collect();
        self.push(key, format!("[{}]", items.join(",")))
    }

    /// Adds a float-array field (e.g. per-thread-count throughputs).
    #[must_use]
    pub fn nums(self, key: &str, vs: &[f64]) -> Self {
        let items: Vec<String> = vs.iter().map(|v| json_num(*v)).collect();
        self.push(key, format!("[{}]", items.join(",")))
    }

    /// Renders the JSON object (insertion order, two-space indent).
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let comma = if i + 1 == self.fields.len() { "" } else { "," };
            let _ = writeln!(out, "  {}: {v}{comma}", json_str(k));
        }
        out.push_str("}\n");
        out
    }

    /// Writes `results/BENCH_<name>.json`.
    pub fn write(self) {
        write_result(&format!("BENCH_{}.json", self.name), &self.render());
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A plain-text table builder for experiment output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(
                    out,
                    "{:>width$}  ",
                    c,
                    width = widths.get(i).copied().unwrap_or(8)
                );
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// One row of the standard mode-comparison summaries.
pub fn summarize(r: &RunResult) -> String {
    format!(
        "{:<10}  {:>7.1} pages/s  mean {:>6.3}s  hit {:>5.1}%  bottleneck {} ({:.0}%)",
        r.mode.label(),
        r.throughput_pages_per_sec,
        r.mean_latency_s(),
        r.cache_stats.hit_ratio() * 100.0,
        r.bottleneck().0,
        r.bottleneck().1 * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["clients", "Update", "NoCache"]);
        t.row(vec!["5".into(), "70.1".into(), "30.0".into()]);
        let s = t.render();
        assert!(s.contains("clients"));
        assert!(s.lines().count() >= 3);
        let csv = t.to_csv();
        assert!(csv.starts_with("clients,Update,NoCache\n"));
        assert!(csv.contains("5,70.1,30.0"));
    }

    #[test]
    fn bench_json_renders_flat_object() {
        let j = BenchJson::new("exp_demo")
            .int("threads", 8)
            .num("throughput", 123.5)
            .num("bad", f64::NAN)
            .str_field("mode", "row \"latch\"")
            .ints("sweep", &[1, 2, 4])
            .nums("speedups", &[1.0, 1.9]);
        let s = j.render();
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("\"experiment\": \"exp_demo\""));
        assert!(s.contains("\"threads\": 8,"));
        assert!(s.contains("\"throughput\": 123.5,"));
        assert!(s.contains("\"bad\": null,"));
        assert!(s.contains("\"mode\": \"row \\\"latch\\\"\","));
        assert!(s.contains("\"sweep\": [1,2,4],"));
        assert!(s.contains("\"speedups\": [1,1.9]\n"));
    }

    #[test]
    fn scales_are_consistent() {
        let p = paper_scale();
        assert_eq!(p.clients, 15);
        assert!(p.seed.users >= 100);
        let q = quick_scale();
        assert!(q.sessions_per_client < p.sessions_per_client);
    }
}
