//! Table 2: average latency by page type at 15 clients, for the three
//! systems.
//!
//! Expected shape (paper): read pages (LookupBM, LookupFBM) are far
//! faster cached — LookupFBM drops from 1.25 s to 0.06 s — while write
//! pages (CreateBM, AcceptFR, Login's write) get *slower* cached because
//! triggers run inside the writes; Update beats Invalidate on reads.

use genie_bench::{scale_from_args, write_result, TextTable, MODES};
use genie_workload::{run, PageKind, WorkloadConfig};

fn main() {
    let base = scale_from_args();
    println!(
        "Table 2: mean latency (s) by page type, {} clients\n",
        base.clients
    );
    let mut results = Vec::new();
    for mode in MODES {
        results.push(
            run(&WorkloadConfig {
                mode,
                ..base.clone()
            })
            .expect("run"),
        );
    }
    let mut table = TextTable::new(&["page", "Update", "Invalidate", "NoCache"]);
    // Paper column order: Update, Inval., NoCache.
    for kind in PageKind::all() {
        let cell = |i: usize| -> String {
            results[i]
                .per_page
                .get(&kind)
                .map(|m| format!("{:.3}", m.mean_s()))
                .unwrap_or_else(|| "-".into())
        };
        // results[] is MODES order: NoCache, Invalidate, Update.
        table.row(vec![kind.label().to_owned(), cell(2), cell(1), cell(0)]);
    }
    println!("{}", table.render());
    write_result("table2_page_latency.csv", &table.to_csv());

    // Our FIFO resource model lets expensive pages delay cheap ones at
    // saturation, flattening per-type differences (real Postgres
    // timeslices backends). A light-load run exposes the per-page
    // *service* structure the paper's Table 2 reflects: write pages pay
    // the trigger costs in cached modes.
    println!("Light-load (3 clients) service-structure variant:\n");
    let mut light_results = Vec::new();
    for mode in MODES {
        light_results.push(
            run(&WorkloadConfig {
                mode,
                clients: 3,
                ..base.clone()
            })
            .expect("run"),
        );
    }
    let mut light = TextTable::new(&["page", "Update", "Invalidate", "NoCache"]);
    for kind in PageKind::all() {
        let cell = |i: usize| -> String {
            light_results[i]
                .per_page
                .get(&kind)
                .map(|m| format!("{:.3}", m.mean_s()))
                .unwrap_or_else(|| "-".into())
        };
        light.row(vec![kind.label().to_owned(), cell(2), cell(1), cell(0)]);
    }
    println!("{}", light.render());
    write_result("table2_light_load.csv", &light.to_csv());
}
