//! Experiment 3 (Figure 3b): throughput as the Zipf user-popularity
//! exponent varies from 1.1 (skewed toward few heavy users... lower `a`
//! actually spreads sessions more; see §5.4) to 2.0.
//!
//! Expected shape (paper): the cached systems gain ~1.5× at a = 1.2
//! versus a = 2.0 (more repeat traffic helps the disk-bound database),
//! while NoCache stays flat (it is CPU-bound recomputing results that are
//! already in its buffer pool).

use genie_bench::{scale_from_args, write_result, BenchJson, TextTable, MODES};
use genie_workload::{run, WorkloadConfig};

fn main() {
    let base = scale_from_args();
    println!("Experiment 3: throughput vs Zipf exponent");
    println!("(reproduces Figure 3b)\n");
    let exponents = [11u32, 12, 14, 16, 18, 20];
    let mut table = TextTable::new(&["zipf_a", "NoCache", "Invalidate", "Update"]);
    let mut tp_by_mode: Vec<Vec<f64>> = vec![Vec::new(); MODES.len()];
    for &a10 in &exponents {
        let a = a10 as f64 / 10.0;
        let mut row = vec![format!("{a:.1}")];
        for (m, mode) in MODES.into_iter().enumerate() {
            let r = run(&WorkloadConfig {
                mode,
                zipf_a: a,
                // The zipf effect is a steady-state property (the paper
                // warms with 4000 sessions); run longer than the default
                // so first-touch misses do not dominate spread traffic.
                sessions_per_client: base.sessions_per_client * 2,
                warmup_sessions_per_client: base.warmup_sessions_per_client * 4,
                ..base.clone()
            })
            .expect("run");
            row.push(format!("{:.1}", r.throughput_pages_per_sec));
            tp_by_mode[m].push(r.throughput_pages_per_sec);
        }
        table.row(row);
    }
    println!("{}", table.render());

    // Per-node view at the paper's most cache-friendly skew: a 4-server
    // cluster under Update, with the store-level hit/miss counters split
    // by origin. Application traffic should hit hard while trigger
    // (maintenance) traffic shows its own read pattern, and the
    // consistent-hash ring should spread items across all nodes.
    let r = run(&WorkloadConfig {
        mode: genie_workload::CacheMode::Update,
        zipf_a: 1.2,
        cache_servers: 4,
        sessions_per_client: base.sessions_per_client * 2,
        warmup_sessions_per_client: base.warmup_sessions_per_client * 4,
        ..base.clone()
    })
    .expect("per-node run");
    let mut node_table = TextTable::new(&[
        "node",
        "items",
        "app hits",
        "app misses",
        "trig hits",
        "trig misses",
    ]);
    let mut app_hits_by_node = Vec::new();
    for s in &r.per_server {
        node_table.row(vec![
            s.index.to_string(),
            s.items.to_string(),
            s.store.app_hits.to_string(),
            s.store.app_misses.to_string(),
            s.store.trigger_hits.to_string(),
            s.store.trigger_misses.to_string(),
        ]);
        app_hits_by_node.push(s.store.app_hits);
    }
    println!("per-node store counters (Update, a=1.2, 4 servers):");
    println!("{}", node_table.render());

    write_result("fig3b_zipf.csv", &table.to_csv());
    write_result("exp3_per_node.csv", &node_table.to_csv());
    let mut json = BenchJson::new("exp3_zipf").nums(
        "zipf_a",
        &exponents
            .iter()
            .map(|&a| a as f64 / 10.0)
            .collect::<Vec<_>>(),
    );
    for (m, mode) in MODES.into_iter().enumerate() {
        json = json.nums(
            &format!("{}_pages_per_sec", mode.label().to_lowercase()),
            &tp_by_mode[m],
        );
    }
    json = json.ints("per_node_app_hits", &app_hits_by_node);
    json.write();
}
