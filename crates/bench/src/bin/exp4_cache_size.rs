//! Experiment 4 (Figure 3c): throughput of the cached systems as cache
//! capacity shrinks, plus the colocated-memcached coda.
//!
//! Expected shape (paper): Update plateaus at a larger cache than
//! Invalidate (it never deletes, so it needs more space), both remain
//! ≥2× NoCache even at the smallest size, and colocating the cache with
//! the database costs both cached systems throughput while still beating
//! NoCache.

use genie_bench::{scale_from_args, write_result, BenchJson, TextTable};
use genie_workload::{run, CacheMode, WorkloadConfig};

fn main() {
    let base = scale_from_args();
    println!("Experiment 4: throughput vs cache size");
    println!("(reproduces Figure 3c and the colocated-cache variant)\n");

    // The paper sweeps 64–512 MB against a ~10 GB dataset; our dataset is
    // ~2500× smaller, so the sweep scales to tens–hundreds of KiB.
    let sizes_kib = [16usize, 24, 32, 48, 64, 96, 128, 256];
    let mut table = TextTable::new(&[
        "cache_kib",
        "Invalidate",
        "Update",
        "Inval_hit%",
        "Upd_hit%",
    ]);
    let mut inval_tps = Vec::new();
    let mut upd_tps = Vec::new();
    for &kib in &sizes_kib {
        let mut row = vec![kib.to_string()];
        let mut hits = Vec::new();
        for mode in [CacheMode::Invalidate, CacheMode::Update] {
            let r = run(&WorkloadConfig {
                mode,
                cache_bytes: kib * 1024,
                ..base.clone()
            })
            .expect("run");
            row.push(format!("{:.1}", r.throughput_pages_per_sec));
            hits.push(format!("{:.1}", r.genie_stats.hit_ratio() * 100.0));
            if mode == CacheMode::Invalidate {
                inval_tps.push(r.throughput_pages_per_sec);
            } else {
                upd_tps.push(r.throughput_pages_per_sec);
            }
        }
        row.extend(hits);
        table.row(row);
    }
    let nocache = run(&WorkloadConfig {
        mode: CacheMode::NoCache,
        ..base.clone()
    })
    .expect("run");
    println!("{}", table.render());
    println!(
        "NoCache reference: {:.1} pages/s\n",
        nocache.throughput_pages_per_sec
    );
    write_result("fig3c_cache_size.csv", &table.to_csv());

    // Colocated coda: memcached on the DB machine.
    let mut coda = TextTable::new(&["mode", "separate", "colocated"]);
    for mode in [CacheMode::Update, CacheMode::Invalidate] {
        let sep = run(&WorkloadConfig {
            mode,
            ..base.clone()
        })
        .expect("run");
        let col = run(&WorkloadConfig {
            mode,
            colocated_cache: true,
            // The DB loses memory to memcached: shrink its buffer pool.
            db_buffer_pool_bytes: base.db_buffer_pool_bytes / 2,
            ..base.clone()
        })
        .expect("run");
        coda.row(vec![
            mode.label().to_owned(),
            format!("{:.1}", sep.throughput_pages_per_sec),
            format!("{:.1}", col.throughput_pages_per_sec),
        ]);
    }
    coda.row(vec![
        "NoCache".into(),
        format!("{:.1}", nocache.throughput_pages_per_sec),
        format!("{:.1}", nocache.throughput_pages_per_sec),
    ]);
    println!("Colocated-cache variant (pages/s):\n{}", coda.render());
    write_result("exp4_colocated.csv", &coda.to_csv());
    BenchJson::new("exp4_cache_size")
        .ints(
            "cache_kib",
            &sizes_kib.iter().map(|&k| k as u64).collect::<Vec<_>>(),
        )
        .nums("invalidate_pages_per_sec", &inval_tps)
        .nums("update_pages_per_sec", &upd_tps)
        .num("nocache_pages_per_sec", nocache.throughput_pages_per_sec)
        .write();
}
