//! CI gate for the multi-writer engine: a thread-count sweep over the
//! transactional mix that must terminate (no deadlock livelock), keep
//! the engine-abort rate under a fixed ceiling, surface every
//! lock-manager deadlock as exactly one aborted transaction, and pass
//! the post-run cache/database coherence cross-check with zero
//! violations.
//!
//! ```text
//! cargo run --release -p genie-bench --bin concurrency_audit            # report
//! cargo run --release -p genie-bench --bin concurrency_audit -- --check # CI gate
//! ```

use genie_social::SeedConfig;
use genie_workload::{run_concurrent, ConcurrencyConfig};

/// Engine aborts (deadlock victims + lock timeouts) may claim at most
/// this fraction of attempted transactions, even on the adversarial
/// all-poke mix — above it, victim selection is thrashing instead of
/// resolving.
const ABORT_RATE_CEILING: f64 = 0.35;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let mut failures: Vec<String> = Vec::new();

    println!("concurrency audit: thread sweep over the transactional mix\n");
    println!(
        "{:<26} {:>7} {:>9} {:>9} {:>10} {:>9} {:>10}",
        "configuration", "threads", "txn/s", "deadlocks", "abort_rate", "checked", "violations"
    );
    for (name, threads, poke_pct, users) in [
        ("batch-post mix", 1, 25, 40),
        ("batch-post mix", 2, 25, 40),
        ("batch-post mix", 4, 25, 40),
        // Adversarial: every transaction updates two hot rows in random
        // order — maximal cycle pressure on the wait-for graph.
        ("all-poke hot rows", 4, 100, 4),
    ] {
        let cfg = ConcurrencyConfig {
            threads,
            txns_per_thread: 150,
            poke_pct,
            seed: SeedConfig {
                users,
                ..SeedConfig::tiny()
            },
            ..Default::default()
        };
        let r = match run_concurrent(&cfg) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{name} ({threads} threads): run failed: {e}"));
                continue;
            }
        };
        println!(
            "{:<26} {:>7} {:>9.0} {:>9} {:>10.3} {:>9} {:>10}",
            name,
            threads,
            r.throughput_txns_per_sec,
            r.deadlock_aborts,
            r.abort_rate(),
            r.checked_objects,
            r.coherence_violations
        );
        if r.errors + r.read_errors > 0 {
            failures.push(format!(
                "{name} ({threads} threads): {} txn errors, {} read errors",
                r.errors, r.read_errors
            ));
        }
        if r.committed == 0 {
            failures.push(format!(
                "{name} ({threads} threads): no commits (livelock?)"
            ));
        }
        if r.coherence_violations > 0 {
            failures.push(format!(
                "{name} ({threads} threads): {} coherence violations over {} objects",
                r.coherence_violations, r.checked_objects
            ));
        }
        if r.abort_rate() > ABORT_RATE_CEILING {
            failures.push(format!(
                "{name} ({threads} threads): abort rate {:.3} above ceiling {ABORT_RATE_CEILING}",
                r.abort_rate()
            ));
        }
        if r.deadlock_aborts + r.read_deadlocks != r.lock_stats_deadlocks {
            failures.push(format!(
                "{name} ({threads} threads): {} lock-manager deadlocks but {} aborted txns + {} aborted reads",
                r.lock_stats_deadlocks, r.deadlock_aborts, r.read_deadlocks
            ));
        }
    }

    if failures.is_empty() {
        println!("\nconcurrency_audit: all checks passed");
    } else {
        eprintln!("\nconcurrency_audit: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        if check {
            std::process::exit(1);
        }
    }
}
