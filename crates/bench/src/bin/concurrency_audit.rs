//! CI gate for the multi-writer engine: a thread-count sweep over the
//! transactional mix that must terminate (no deadlock livelock), keep
//! the engine-abort and write-conflict rates under fixed ceilings,
//! surface every lock-manager deadlock as exactly one aborted
//! transaction, and pass the post-run cache/database coherence
//! cross-check with zero violations.
//!
//! The sweep ends with an MVCC readers+writers scenario: dedicated
//! reader transactions run against BatchPost writers that hold row
//! locks across real think time. Because snapshot readers take no locks
//! and the writers' rows are disjoint, the gate requires **zero lock
//! waits** (no reader ever blocked), **zero reader deadlocks**, and
//! **zero intra-transaction snapshot violations**.
//!
//! A serving scenario then re-checks the same guarantees through the
//! network front-end: a loopback-TCP client fleet interleaving
//! `snapshot` MVCC probes with writes must see zero snapshot
//! violations, drain without dropping a request or leaking a pooled
//! session, and leave the cache coherent.
//!
//! ```text
//! cargo run --release -p genie-bench --bin concurrency_audit            # report
//! cargo run --release -p genie-bench --bin concurrency_audit -- --check # CI gate
//! ```

use genie_social::SeedConfig;
use genie_workload::{run_concurrent, run_serve, ConcurrencyConfig, ServeConfig};

/// Engine aborts (deadlock victims + lock timeouts) may claim at most
/// this fraction of attempted transactions, even on the adversarial
/// all-poke mix — above it, victim selection is thrashing instead of
/// resolving.
const ABORT_RATE_CEILING: f64 = 0.35;

/// First-updater-wins conflicts may claim at most this fraction of
/// attempts on the adversarial all-poke mix. Conflicts are correct
/// behaviour under snapshot isolation (the 2PL baseline silently
/// serialized these blind overwrites), but past this ceiling the mix
/// makes no progress worth measuring.
const CONFLICT_RATE_CEILING: f64 = 0.80;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let mut failures: Vec<String> = Vec::new();

    println!("concurrency audit: thread sweep over the transactional mix\n");
    println!(
        "{:<26} {:>7} {:>9} {:>9} {:>10} {:>10} {:>9} {:>10}",
        "configuration",
        "threads",
        "txn/s",
        "deadlocks",
        "conflicts",
        "abort_rate",
        "checked",
        "violations"
    );
    for (name, threads, poke_pct, users) in [
        ("batch-post mix", 1, 25, 40),
        ("batch-post mix", 2, 25, 40),
        ("batch-post mix", 4, 25, 40),
        // Adversarial: every transaction updates two hot rows in random
        // order — maximal cycle pressure on the wait-for graph, and
        // maximal first-updater-wins conflict pressure under MVCC.
        ("all-poke hot rows", 4, 100, 4),
    ] {
        let cfg = ConcurrencyConfig {
            threads,
            txns_per_thread: 150,
            poke_pct,
            seed: SeedConfig {
                users,
                ..SeedConfig::tiny()
            },
            ..Default::default()
        };
        let r = match run_concurrent(&cfg) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{name} ({threads} threads): run failed: {e}"));
                continue;
            }
        };
        println!(
            "{:<26} {:>7} {:>9.0} {:>9} {:>10} {:>10.3} {:>9} {:>10}",
            name,
            threads,
            r.throughput_txns_per_sec,
            r.deadlock_aborts,
            r.write_conflicts,
            r.abort_rate(),
            r.checked_objects,
            r.coherence_violations
        );
        if r.errors + r.read_errors > 0 {
            failures.push(format!(
                "{name} ({threads} threads): {} txn errors, {} read errors",
                r.errors, r.read_errors
            ));
        }
        if r.committed == 0 {
            failures.push(format!(
                "{name} ({threads} threads): no commits (livelock?)"
            ));
        }
        if r.coherence_violations > 0 {
            failures.push(format!(
                "{name} ({threads} threads): {} coherence violations over {} objects",
                r.coherence_violations, r.checked_objects
            ));
        }
        if r.abort_rate() > ABORT_RATE_CEILING {
            failures.push(format!(
                "{name} ({threads} threads): abort rate {:.3} above ceiling {ABORT_RATE_CEILING}",
                r.abort_rate()
            ));
        }
        if r.conflict_rate() > CONFLICT_RATE_CEILING {
            failures.push(format!(
                "{name} ({threads} threads): write-conflict rate {:.3} above ceiling {CONFLICT_RATE_CEILING}",
                r.conflict_rate()
            ));
        }
        if r.deadlock_aborts + r.read_deadlocks != r.lock_stats_deadlocks {
            failures.push(format!(
                "{name} ({threads} threads): {} lock-manager deadlocks but {} aborted txns + {} aborted reads",
                r.lock_stats_deadlocks, r.deadlock_aborts, r.read_deadlocks
            ));
        }
    }

    // MVCC gate: snapshot readers against lock-holding writers must
    // never block, never deadlock, and never observe a torn snapshot.
    let mvcc_cfg = ConcurrencyConfig {
        threads: 2,
        txns_per_thread: 100,
        poke_pct: 0, // disjoint inserts: the lock manager must stay idle
        abort_pct: 0,
        read_every: 0, // reads come from the dedicated reader threads
        reader_threads: 3,
        reads_per_reader_txn: 4,
        think_us: 100,
        seed: SeedConfig {
            users: 40,
            ..SeedConfig::tiny()
        },
        ..Default::default()
    };
    match run_concurrent(&mvcc_cfg) {
        Ok(r) => {
            println!(
                "{:<26} {:>7} {:>9.0} {:>9} {:>10} {:>10.3} {:>9} {:>10}",
                "mvcc readers+writers",
                "2+3r",
                r.read_txns_per_sec,
                r.read_deadlocks,
                r.write_conflicts,
                r.abort_rate(),
                r.checked_objects,
                r.coherence_violations
            );
            if r.lock_waits != 0 {
                failures.push(format!(
                    "mvcc readers+writers: {} lock waits — a snapshot reader (or disjoint writer) blocked",
                    r.lock_waits
                ));
            }
            if r.read_deadlocks != 0 || r.lock_stats_deadlocks != 0 {
                failures.push(format!(
                    "mvcc readers+writers: {} reader deadlocks / {} lock-manager deadlocks (lock-free readers cannot deadlock)",
                    r.read_deadlocks, r.lock_stats_deadlocks
                ));
            }
            if r.snapshot_violations != 0 {
                failures.push(format!(
                    "mvcc readers+writers: {} snapshot violations (repeated reads inside one txn disagreed)",
                    r.snapshot_violations
                ));
            }
            if r.read_txns == 0 || r.committed == 0 {
                failures.push("mvcc readers+writers: no progress".to_owned());
            }
            if r.errors + r.read_errors > 0 {
                failures.push(format!(
                    "mvcc readers+writers: {} txn errors, {} read errors",
                    r.errors, r.read_errors
                ));
            }
            if r.coherence_violations > 0 {
                failures.push(format!(
                    "mvcc readers+writers: {} coherence violations",
                    r.coherence_violations
                ));
            }
        }
        Err(e) => failures.push(format!("mvcc readers+writers: run failed: {e}")),
    }

    // Latch-sharding gate: writers pinned to disjoint tables share
    // nothing above the catalog read latch, so the per-table latch
    // counters must stay at **zero** — any table-latch wait means two
    // statements on different tables still serialized somewhere.
    let disjoint_cfg = ConcurrencyConfig {
        threads: 4,
        txns_per_thread: 100,
        posts_per_txn: 3,
        think_us: 50,
        disjoint_tables: true,
        seed: SeedConfig {
            users: 20,
            ..SeedConfig::tiny()
        },
        ..Default::default()
    };
    match run_concurrent(&disjoint_cfg) {
        Ok(r) => {
            println!(
                "{:<26} {:>7} {:>9.0} {:>9} {:>10} {:>10.3} {:>9} {:>10}",
                "disjoint-table latch mix",
                4,
                r.throughput_txns_per_sec,
                r.deadlock_aborts,
                r.write_conflicts,
                r.abort_rate(),
                r.checked_objects,
                r.coherence_violations
            );
            if r.latch_table_waits != 0 {
                failures.push(format!(
                    "disjoint-table latch mix: {} table-latch waits — disjoint writers \
                     must never meet on a per-table latch (total latch waits {})",
                    r.latch_table_waits, r.latch_waits
                ));
            }
            if r.errors + r.read_errors > 0 {
                failures.push(format!(
                    "disjoint-table latch mix: {} txn errors, {} read errors",
                    r.errors, r.read_errors
                ));
            }
            if r.committed != 4 * 100 {
                failures.push(format!(
                    "disjoint-table latch mix: {} of {} txns committed (nothing may abort \
                     on disjoint tables)",
                    r.committed,
                    4 * 100
                ));
            }
            if r.coherence_violations > 0 {
                failures.push(format!(
                    "disjoint-table latch mix: {} coherence violations",
                    r.coherence_violations
                ));
            }
        }
        Err(e) => failures.push(format!("disjoint-table latch mix: run failed: {e}")),
    }

    // Cache-tier gate: the cache-heavy mix with hot-key replication
    // runs through a node kill and rejoin. The post-run sweep must find
    // zero coherence violations, the schedule must actually execute,
    // and the hot keys must have served reads from replica copies.
    let cache_cfg = ConcurrencyConfig {
        threads: 4,
        txns_per_thread: 90,
        read_every: 1,    // a cached read after every transaction
        hot_read_pct: 80, // skewed onto users 1-4 to trip promotion
        node_kill: true,
        cluster: genie_cache::ClusterConfig {
            servers: 4,
            hot_key_replicas: 2,
            hot_key_threshold: 8,
            ..Default::default()
        },
        seed: SeedConfig {
            users: 20,
            ..SeedConfig::tiny()
        },
        ..Default::default()
    };
    match run_concurrent(&cache_cfg) {
        Ok(r) => {
            println!(
                "{:<26} {:>7} {:>9.0} {:>9} {:>10} {:>10.3} {:>9} {:>10}",
                "cache tier kill/rejoin",
                4,
                r.throughput_txns_per_sec,
                r.deadlock_aborts,
                r.write_conflicts,
                r.abort_rate(),
                r.checked_objects,
                r.coherence_violations
            );
            if r.node_kills != 1 || r.node_revives != 1 {
                failures.push(format!(
                    "cache tier kill/rejoin: schedule did not execute \
                     ({} kills / {} revives, expected 1/1)",
                    r.node_kills, r.node_revives
                ));
            }
            if r.coherence_violations > 0 {
                failures.push(format!(
                    "cache tier kill/rejoin: {} coherence violations over {} objects \
                     through a node kill",
                    r.coherence_violations, r.checked_objects
                ));
            }
            if r.cache_hot_promotions == 0 {
                failures.push(
                    "cache tier kill/rejoin: the skewed mix never promoted a hot key".to_owned(),
                );
            }
            if r.cache_replica_reads == 0 {
                failures.push(
                    "cache tier kill/rejoin: no read was served by a hot-key replica".to_owned(),
                );
            }
            if r.errors + r.read_errors > 0 {
                failures.push(format!(
                    "cache tier kill/rejoin: {} txn errors, {} read errors",
                    r.errors, r.read_errors
                ));
            }
        }
        Err(e) => failures.push(format!("cache tier kill/rejoin: run failed: {e}")),
    }

    // Serving gate: the same isolation and coherence guarantees must
    // hold when clients arrive over loopback TCP through the full
    // middleware stack. Every fourth request is a protocol-level MVCC
    // probe (`snapshot` page: repeated reads inside one transaction);
    // the drain must drop nothing and leak no pooled session, and the
    // post-drain sweep must find the cache coherent.
    let serve_cfg = ServeConfig {
        clients: 6,
        requests_per_client: 60,
        snapshot_every: 4,
        server: genie_server::ServerConfig {
            workers: 6,
            ..Default::default()
        },
        ..Default::default()
    };
    match run_serve(&serve_cfg) {
        Ok(r) => {
            println!(
                "{:<26} {:>7} {:>9.0} {:>9} {:>10} {:>10} {:>9} {:>10}",
                "serve front-end mvcc",
                6,
                r.achieved_qps,
                "-",
                "-",
                "-",
                r.checked_objects,
                r.coherence_violations
            );
            if r.requests_ok == 0 {
                failures.push("serve front-end: no request succeeded".to_owned());
            }
            if r.requests_failed != 0 {
                failures.push(format!(
                    "serve front-end: {} non-retryable request failures",
                    r.requests_failed
                ));
            }
            if r.snapshot_violations != 0 {
                failures.push(format!(
                    "serve front-end: {} snapshot probes saw a torn repeat read",
                    r.snapshot_violations
                ));
            }
            if r.coherence_violations > 0 {
                failures.push(format!(
                    "serve front-end: {} coherence violations over {} objects",
                    r.coherence_violations, r.checked_objects
                ));
            }
            match r.shutdown {
                Some(rep) => {
                    if rep.dropped_in_flight != 0 || rep.leaked_sessions != 0 {
                        failures.push(format!(
                            "serve front-end: drain dropped {} in-flight requests, \
                             leaked {} sessions",
                            rep.dropped_in_flight, rep.leaked_sessions
                        ));
                    }
                }
                None => failures.push("serve front-end: no shutdown report".to_owned()),
            }
        }
        Err(e) => failures.push(format!("serve front-end: run failed: {e}")),
    }

    // Durability gate: the full writer mix on a durable database, with
    // a crash image copied out of the live log directory mid-run and
    // fuzzy checkpoints firing concurrently. The torn image must
    // recover to a committed prefix that still passes the coherence
    // sweep, and the final quiescent directory must recover to the
    // exact post-run state (digest + epoch).
    let base = std::env::temp_dir().join(format!("genie-audit-wal-{}", std::process::id()));
    let wal_dir = base.join("live");
    let copy_dir = base.join("crash");
    let durable_cfg = ConcurrencyConfig {
        threads: 4,
        txns_per_thread: 120,
        wal_dir: Some(wal_dir.clone()),
        crash_copy_dir: Some(copy_dir.clone()),
        wal_config: genie_storage::WalConfig {
            checkpoint_every: 200,
            ..Default::default()
        },
        seed: SeedConfig {
            users: 20,
            ..SeedConfig::tiny()
        },
        ..Default::default()
    };
    match run_concurrent(&durable_cfg) {
        Ok(r) => {
            println!(
                "{:<26} {:>7} {:>9.0} {:>9} {:>10} {:>10.3} {:>9} {:>10}",
                "durable mix + crash image",
                4,
                r.throughput_txns_per_sec,
                r.deadlock_aborts,
                r.write_conflicts,
                r.abort_rate(),
                r.checked_objects,
                r.coherence_violations
            );
            if r.errors + r.read_errors > 0 {
                failures.push(format!(
                    "durable mix: {} txn errors, {} read errors",
                    r.errors, r.read_errors
                ));
            }
            if r.coherence_violations > 0 {
                failures.push(format!(
                    "durable mix: {} coherence violations",
                    r.coherence_violations
                ));
            }
            if !r.crash_copy_taken {
                failures.push("durable mix: mid-run crash image was never taken".to_owned());
            }
            if r.wal_checkpoints == 0 {
                failures.push("durable mix: no fuzzy checkpoint fired mid-run".to_owned());
            }
            // Recover the torn mid-run image and run the full app +
            // coherence sweep on top of it: a recovered prefix is a
            // valid deployment, not just a pile of rows.
            match genie_storage::Database::open_with_recovery(&copy_dir) {
                Ok(recovered) => {
                    if recovered.commit_epoch() > r.commit_epoch {
                        failures.push(format!(
                            "durable mix: crash image recovered epoch {} beyond the live run's {}",
                            recovered.commit_epoch(),
                            r.commit_epoch
                        ));
                    }
                    match genie_social::build_app_on(
                        recovered,
                        &genie_social::AppConfig {
                            seed: durable_cfg.seed.clone(),
                            ..Default::default()
                        },
                    ) {
                        Ok(env) => {
                            if env.seeded.rows != 0 {
                                failures.push(
                                    "durable mix: recovered deployment re-seeded over live data"
                                        .to_owned(),
                                );
                            }
                            for user in 1..=20i64 {
                                for name in ["wall_post_count", "friend_count", "user_by_id"] {
                                    match env
                                        .genie
                                        .verify_coherence(name, &[genie_storage::Value::Int(user)])
                                    {
                                        Ok(true) => {}
                                        Ok(false) => failures.push(format!(
                                            "durable mix: recovered image incoherent on \
                                             {name}({user})"
                                        )),
                                        Err(e) => failures.push(format!(
                                            "durable mix: coherence sweep on recovered image \
                                             failed: {e}"
                                        )),
                                    }
                                }
                            }
                        }
                        Err(e) => failures.push(format!(
                            "durable mix: rebuilding the app on the recovered image failed: {e}"
                        )),
                    }
                }
                Err(e) => failures.push(format!(
                    "durable mix: recovering the torn crash image failed: {e}"
                )),
            }
            // The quiescent final directory must reproduce the live
            // state bit-for-bit.
            match genie_storage::Database::open_with_recovery(&wal_dir) {
                Ok(recovered) => {
                    if recovered.commit_epoch() != r.commit_epoch
                        || recovered.content_digest() != r.content_digest
                    {
                        failures.push(format!(
                            "durable mix: final recovery diverged (epoch {} vs {}, \
                             digest {:#x} vs {:#x})",
                            recovered.commit_epoch(),
                            r.commit_epoch,
                            recovered.content_digest(),
                            r.content_digest
                        ));
                    }
                }
                Err(e) => failures.push(format!("durable mix: final recovery failed: {e}")),
            }
        }
        Err(e) => failures.push(format!("durable mix: run failed: {e}")),
    }
    let _ = std::fs::remove_dir_all(&base);

    if failures.is_empty() {
        println!("\nconcurrency_audit: all checks passed");
    } else {
        eprintln!("\nconcurrency_audit: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        if check {
            std::process::exit(1);
        }
    }
}
