//! Experiment 1 (Figures 2a and 2b): page-load throughput and latency as
//! the number of parallel clients grows, for NoCache / Invalidate /
//! Update.
//!
//! Expected shape (paper): the cached systems deliver 2–2.5× NoCache's
//! throughput, Update above Invalidate, with latencies rising steeply
//! past ~15 clients.

use genie_bench::{scale_from_args, summarize, write_result, BenchJson, TextTable, MODES};
use genie_workload::{run, WorkloadConfig};

fn main() {
    let base = scale_from_args();
    let client_counts = [1usize, 5, 10, 15, 20, 25, 30, 40];
    let mut tput = TextTable::new(&["clients", "NoCache", "Invalidate", "Update"]);
    let mut lat = TextTable::new(&["clients", "NoCache", "Invalidate", "Update"]);

    println!("Experiment 1: throughput and latency vs parallel clients");
    println!("(reproduces Figure 2a / Figure 2b)\n");
    // Hold TOTAL offered work constant across the sweep (the paper's huge
    // dataset makes per-client-constant sessions equivalent; at our scale
    // constant totals avoid dataset-growth skew between points).
    let total_sessions = base.clients * base.sessions_per_client;
    let total_warmup = base.clients * base.warmup_sessions_per_client;
    let mut tp_by_mode: Vec<Vec<f64>> = vec![Vec::new(); MODES.len()];
    for &clients in &client_counts {
        let mut tp = vec![clients.to_string()];
        let mut lt = vec![clients.to_string()];
        for (m, mode) in MODES.into_iter().enumerate() {
            let r = run(&WorkloadConfig {
                mode,
                clients,
                sessions_per_client: (total_sessions / clients).max(2),
                warmup_sessions_per_client: (total_warmup / clients).max(1),
                ..base.clone()
            })
            .expect("run");
            if clients == 15 {
                println!("  [15 clients] {}", summarize(&r));
            }
            tp.push(format!("{:.1}", r.throughput_pages_per_sec));
            lt.push(format!("{:.3}", r.mean_latency_s()));
            tp_by_mode[m].push(r.throughput_pages_per_sec);
        }
        tput.row(tp);
        lat.row(lt);
    }

    println!(
        "\nFigure 2a — page-load throughput (pages/s):\n{}",
        tput.render()
    );
    println!("Figure 2b — mean page latency (s):\n{}", lat.render());
    write_result("fig2a_throughput.csv", &tput.to_csv());
    write_result("fig2b_latency.csv", &lat.to_csv());
    let mut json = BenchJson::new("exp1_clients").ints(
        "clients",
        &client_counts.iter().map(|&c| c as u64).collect::<Vec<_>>(),
    );
    for (m, mode) in MODES.into_iter().enumerate() {
        json = json.nums(
            &format!("{}_pages_per_sec", mode.label().to_lowercase()),
            &tp_by_mode[m],
        );
    }
    json.write();
}
