//! Vectorized / parallel scan experiment: row-at-a-time vs morsel-driven
//! batch execution.
//!
//! Builds one wide table (large enough to clear the engine's parallel
//! morsel threshold), then times the same scan-heavy query pair — a
//! predicated `COUNT(*)` (the count-pushdown path) and a filtered
//! `ORDER BY ... LIMIT` top-k (the per-worker partial-merge path) —
//! under three engine shapes:
//!
//! 1. row-at-a-time (`set_batch_scan(false)`), the pre-vectorization
//!    interpreter;
//! 2. batched execution, one worker (`set_batch_scan(true)`);
//! 3. batched execution with a worker-count sweep (morsel-driven
//!    parallelism).
//!
//! `--check` turns the report into a CI gate: batched execution must
//! not lose to row-at-a-time, and with 4 workers the combined speedup
//! over row-at-a-time must reach 1.5x — the parallel leg is skipped
//! when the host lacks 4 hardware threads, since a morsel scheduler
//! cannot beat the clock on cores it does not have.
//!
//! ```text
//! cargo run --release -p genie-bench --bin exp_parallel_scan
//! cargo run --release -p genie-bench --bin exp_parallel_scan -- --check --quick
//! ```

use genie_bench::{write_result, BenchJson, TextTable};
use genie_storage::{Database, DbConfig, Value};
use std::time::Instant;

/// Batched single-worker execution must stay at least this fraction of
/// row-at-a-time throughput (i.e. batching never regresses; in practice
/// it wins comfortably and the gate just guards the sign).
const BATCH_FLOOR: f64 = 1.0;

/// Required combined speedup of batch + 4 workers over row-at-a-time.
const PARALLEL_TARGET: f64 = 1.5;

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Seeds `rows` rows of `scan_t` in bulk transactions. Column values
/// come from a tiny deterministic LCG so selectivities are stable
/// across runs without an RNG dependency.
fn build_db(rows: i64) -> Database {
    let db = Database::new(DbConfig {
        buffer_pool_bytes: 8 * 1024 * 1024,
        ..Default::default()
    });
    db.execute_sql(
        "CREATE TABLE scan_t (id INT PRIMARY KEY, grp INT NOT NULL, val INT NOT NULL)",
        &[],
    )
    .expect("create scan_t");
    let mut state: i64 = 88172645463325252;
    let mut next = || {
        // xorshift: cheap, deterministic, well-spread.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.rem_euclid(1_000_000)
    };
    let mut id = 1;
    while id <= rows {
        db.execute_sql("BEGIN", &[]).expect("begin");
        let end = (id + 1999).min(rows);
        while id <= end {
            db.execute_sql(
                "INSERT INTO scan_t (id, grp, val) VALUES ($1, $2, $3)",
                &[Value::Int(id), Value::Int(next() % 100), Value::Int(next())],
            )
            .expect("insert");
            id += 1;
        }
        db.execute_sql("COMMIT", &[]).expect("commit");
    }
    db
}

/// Runs the scan pair `reps` times and returns scanned rows per second.
/// The `COUNT(*)` answer is cross-checked against the first measurement
/// so a broken scan path cannot masquerade as a fast one.
fn measure(db: &Database, rows: i64, reps: usize, expect_count: &mut Option<i64>) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        let count = db
            .execute_sql(
                "SELECT COUNT(*) FROM scan_t WHERE val < $1",
                &[Value::Int(500_000)],
            )
            .expect("count scan");
        let got = match count.result.rows[0].get(0) {
            Value::Int(n) => *n,
            v => panic!("COUNT(*) returned {v:?}"),
        };
        match expect_count {
            Some(e) => assert_eq!(*e, got, "scan modes disagree on COUNT(*)"),
            None => *expect_count = Some(got),
        }
        let topk = db
            .execute_sql(
                "SELECT id, val FROM scan_t WHERE grp < $1 ORDER BY val DESC LIMIT 10",
                &[Value::Int(50)],
            )
            .expect("topk scan");
        assert_eq!(topk.result.rows.len(), 10, "top-k short of LIMIT");
    }
    // Both queries walk the full table once per rep.
    (rows as f64 * 2.0 * reps as f64) / start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let quick = args.iter().any(|a| a == "--quick");
    let rows: i64 = arg_after(&args, "--rows")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 20_000 } else { 60_000 });
    let reps: usize = arg_after(&args, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 15 } else { 40 });
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    println!("Parallel scan experiment: row-at-a-time vs vectorized morsels");
    println!("({rows} rows x {reps} reps, {hw} hardware threads)\n");
    let db = build_db(rows);
    let mut expect = None;

    // Warm the buffer pool so mode one is not charged for cold misses.
    db.set_batch_scan(false);
    db.set_scan_workers(1);
    measure(&db, rows, 2, &mut expect);

    let row_tp = measure(&db, rows, reps, &mut expect);
    db.set_batch_scan(true);
    let workers: Vec<usize> = [1usize, 2, 4].into_iter().collect();
    let mut batch_tp = Vec::new();
    let mut table = TextTable::new(&["mode", "rows/s", "vs_row"]);
    table.row(vec![
        "row-at-a-time".into(),
        format!("{row_tp:.0}"),
        "1.00x".into(),
    ]);
    for &w in &workers {
        db.set_scan_workers(w);
        let tp = measure(&db, rows, reps, &mut expect);
        table.row(vec![
            format!("batch x{w}"),
            format!("{tp:.0}"),
            format!("{:.2}x", tp / row_tp),
        ]);
        batch_tp.push(tp);
    }
    println!("{}", table.render());

    let batch1_speedup = batch_tp[0] / row_tp;
    let batch4_speedup = batch_tp[2] / row_tp;
    let parallel_gate = hw >= 4;
    println!("batch x1 vs row: {batch1_speedup:.2}x (floor {BATCH_FLOOR:.2}x)");
    if parallel_gate {
        println!("batch x4 vs row: {batch4_speedup:.2}x (target {PARALLEL_TARGET:.1}x)");
    } else {
        println!(
            "batch x4 vs row: {batch4_speedup:.2}x (informational: {hw} hardware \
             thread(s), parallel gate needs 4)"
        );
    }

    write_result("exp_parallel_scan.csv", &table.to_csv());
    BenchJson::new("exp_parallel_scan")
        .int("rows", rows as u64)
        .int("reps", reps as u64)
        .int("hardware_threads", hw as u64)
        .num("row_at_a_time_rows_per_sec", row_tp)
        .ints(
            "workers",
            &workers.iter().map(|&w| w as u64).collect::<Vec<_>>(),
        )
        .nums("batch_rows_per_sec", &batch_tp)
        .num("speedup_batch_x1", batch1_speedup)
        .num("speedup_batch_x4", batch4_speedup)
        .write();

    if check {
        let mut failures = Vec::new();
        if batch1_speedup < BATCH_FLOOR {
            failures.push(format!(
                "batched execution lost to row-at-a-time: {batch1_speedup:.2}x < {BATCH_FLOOR:.2}x"
            ));
        }
        if parallel_gate && batch4_speedup < PARALLEL_TARGET {
            failures.push(format!(
                "batch x4 speedup {batch4_speedup:.2}x below target {PARALLEL_TARGET:.1}x"
            ));
        }
        if failures.is_empty() {
            println!("\nexp_parallel_scan: all checks passed");
        } else {
            eprintln!("\nexp_parallel_scan: {} failure(s):", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
