//! Write-ahead log experiment: group commit vs per-commit sync, and
//! restart-recovery time vs log size.
//!
//! Two legs, each a CI gate under `--check`:
//!
//! 1. **Commit throughput sweep**: 1/4/8 writer threads hammer disjoint
//!    tables with autocommit updates on a durable database whose log
//!    writer simulates a realistic device flush latency
//!    ([`SYNC_DELAY_US`] per physical sync — tmpfs would otherwise hide
//!    the very cost group commit amortizes). Per-commit sync pays one
//!    flush per transaction; group commit elects a leader that flushes a
//!    whole batch at once. At 8 threads group commit must reach at least
//!    [`GROUP_TARGET`]× the per-commit baseline.
//! 2. **Recovery sweep**: logs of 1k / 5k / 10k commits are crash-copied
//!    with one in-flight transaction open, then recovered. The recovered
//!    database must match the live committed state exactly — same
//!    content digest, same commit epoch, zero in-flight leakage — and
//!    the per-commit replay cost must be visible in the timing series.
//!
//! ```text
//! cargo run --release -p genie-bench --bin exp_wal
//! cargo run --release -p genie-bench --bin exp_wal -- --check --quick
//! ```

use genie_bench::{write_result, BenchJson, TextTable};
use genie_storage::{Database, DbConfig, SyncPolicy, Value, WalConfig};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Required group-commit over per-commit throughput ratio at 8 threads.
const GROUP_TARGET: f64 = 2.0;

/// Simulated device flush latency (microseconds per physical sync).
/// Chosen near a datacenter SSD's fsync: large enough that sync count
/// dominates the commit path, small enough that a sweep stays fast.
const SYNC_DELAY_US: u64 = 150;

/// Rows per writer-thread shard table.
const SHARD_ROWS: i64 = 64;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("genie-exp-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One throughput cell: `threads` writers, `ops` autocommit updates
/// each against their own table, under `sync`. Returns commits/sec.
fn commit_throughput(threads: usize, ops: usize, sync: SyncPolicy, tag: &str) -> f64 {
    let dir = scratch(tag);
    let db = Database::create_durable(
        &dir,
        DbConfig::default(),
        WalConfig {
            sync,
            sync_delay_us: SYNC_DELAY_US,
            checkpoint_every: 0,
            ..WalConfig::default()
        },
    )
    .expect("create durable db");
    for t in 0..threads {
        db.execute_sql(
            &format!("CREATE TABLE shard_{t} (id INT PRIMARY KEY, n INT NOT NULL)"),
            &[],
        )
        .unwrap();
        for id in 1..=SHARD_ROWS {
            db.execute_sql(
                &format!("INSERT INTO shard_{t} (id, n) VALUES ($1, 0)"),
                &[Value::Int(id)],
            )
            .unwrap();
        }
    }
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let sql = format!("UPDATE shard_{t} SET n = $1 WHERE id = $2");
                barrier.wait();
                for i in 0..ops {
                    db.execute_sql(
                        &sql,
                        &[
                            Value::Int(i as i64),
                            Value::Int(1 + (i as i64 % SHARD_ROWS)),
                        ],
                    )
                    .unwrap();
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("writer thread panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = db.wal_stats().expect("durable db has wal stats");
    assert!(
        stats.syncs <= stats.records,
        "more syncs than records: {stats:?}"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    (threads * ops) as f64 / elapsed.max(1e-9)
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let p = entry.unwrap().path();
        if p.is_file() {
            std::fs::copy(&p, dst.join(p.file_name().unwrap())).unwrap();
        }
    }
}

/// One recovery cell: a log of `commits` single-row commits is
/// crash-copied with an in-flight transaction open, then recovered.
/// Returns `(recovery seconds, replayed commits)` and pushes any
/// correctness failure.
fn recovery_cell(commits: u64, failures: &mut Vec<String>) -> (f64, u64) {
    let dir = scratch(&format!("rec-{commits}"));
    let copy = scratch(&format!("rec-copy-{commits}"));
    let db = Database::create_durable(
        &dir,
        DbConfig::default(),
        WalConfig {
            sync_delay_us: 0,
            checkpoint_every: 0,
            ..WalConfig::default()
        },
    )
    .expect("create durable db");
    db.execute_sql("CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL)", &[])
        .unwrap();
    db.execute_sql("CREATE INDEX kv_v ON kv (v)", &[]).unwrap();
    for i in 0..commits as i64 {
        // Inserts grow the table; every 4th commit updates instead, so
        // replay exercises both paths.
        if i % 4 == 3 {
            // Row 0 is inserted by the first commit, so this always
            // hits: every commit in the log is effective and the
            // replayed count equals the log size.
            db.execute_sql("UPDATE kv SET v = $1 WHERE k = 0", &[Value::Int(i)])
                .unwrap();
        } else {
            db.execute_sql(
                "INSERT INTO kv VALUES ($1, $2)",
                &[Value::Int(i), Value::Int(i % 97)],
            )
            .unwrap();
        }
    }
    let digest = db.content_digest();
    let epoch = db.commit_epoch();
    // Crash with one transaction in flight: its writes are buffered,
    // never logged, and must not survive.
    let mut txn = db.begin_concurrent().expect("begin txn");
    txn.execute_sql("INSERT INTO kv VALUES (-1, -1)", &[])
        .unwrap();
    copy_dir(&dir, &copy);

    let start = Instant::now();
    let (recovered, report) = Database::open_with(&copy, DbConfig::default(), WalConfig::default())
        .expect("recovery failed");
    let secs = start.elapsed().as_secs_f64();
    if report.replayed_commits != commits {
        failures.push(format!(
            "{commits}-commit log: only {} commits replayed",
            report.replayed_commits
        ));
    }
    if recovered.commit_epoch() != epoch || recovered.content_digest() != digest {
        failures.push(format!(
            "{commits}-commit log: recovered (epoch {}, digest {:#x}) != live committed \
             (epoch {epoch}, digest {digest:#x})",
            recovered.commit_epoch(),
            recovered.content_digest()
        ));
    }
    let ghost = recovered
        .execute_sql("SELECT k FROM kv WHERE k = -1", &[])
        .unwrap();
    if !ghost.result.rows.is_empty() {
        failures.push(format!(
            "{commits}-commit log: in-flight transaction leaked into recovery"
        ));
    }
    drop(txn);
    drop(db);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&copy);
    (secs, report.replayed_commits)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let quick = args.iter().any(|a| a == "--quick");
    let ops: usize = if quick { 600 } else { 2_000 };
    let mut failures: Vec<String> = Vec::new();
    let mut json = BenchJson::new("exp_wal");

    // Leg 1: group commit vs per-commit sync.
    println!("WAL group commit vs per-commit sync");
    println!("({ops} commits/thread, {SYNC_DELAY_US}us simulated flush latency)\n");
    let threads_sweep = [1usize, 4, 8];
    let mut table = TextTable::new(&["threads", "per-commit c/s", "group c/s", "speedup"]);
    let mut per_tp = Vec::new();
    let mut group_tp = Vec::new();
    let mut speedup_at_8 = 0.0;
    // Best-of-3 per cell: the measured phase is sub-second and a noisy
    // neighbor perturbs the slowest rep far more than the best one.
    let reps = 3;
    for &t in &threads_sweep {
        let mut per = 0.0f64;
        let mut group = 0.0f64;
        for _ in 0..reps {
            per = per.max(commit_throughput(t, ops, SyncPolicy::PerCommit, "per"));
            group = group.max(commit_throughput(t, ops, SyncPolicy::GroupCommit, "group"));
        }
        let speedup = group / per.max(1.0);
        if t == 8 {
            speedup_at_8 = speedup;
        }
        table.row(vec![
            t.to_string(),
            format!("{per:.0}"),
            format!("{group:.0}"),
            format!("{speedup:.2}x"),
        ]);
        per_tp.push(per);
        group_tp.push(group);
    }
    println!("{}", table.render());
    println!("speedup at 8 threads: {speedup_at_8:.2}x (target {GROUP_TARGET:.1}x)\n");
    if check && speedup_at_8 < GROUP_TARGET {
        failures.push(format!(
            "group commit at 8 threads only {speedup_at_8:.2}x over per-commit sync \
             (target {GROUP_TARGET:.1}x)"
        ));
    }

    // Leg 2: recovery time vs log size, with correctness gates inside
    // each cell. The 10k point is the acceptance bar: recovery must
    // replay a >=10k-commit log to the exact pre-crash committed state.
    let sizes: [u64; 3] = [1_000, 5_000, 10_000];
    let mut rec_table = TextTable::new(&["commits", "recovery ms", "replayed", "commits/ms"]);
    let mut rec_ms = Vec::new();
    let mut replayed = Vec::new();
    println!("Restart recovery vs log size (crash with one in-flight txn)\n");
    for &n in &sizes {
        let (secs, r) = recovery_cell(n, &mut failures);
        rec_table.row(vec![
            n.to_string(),
            format!("{:.1}", secs * 1e3),
            r.to_string(),
            format!("{:.0}", r as f64 / (secs * 1e3).max(1e-9)),
        ]);
        rec_ms.push(secs * 1e3);
        replayed.push(r);
    }
    println!("{}", rec_table.render());

    write_result(
        "exp_wal.csv",
        &format!("{}\n{}", table.to_csv(), rec_table.to_csv()),
    );
    json = json
        .int("ops_per_thread", ops as u64)
        .int("sync_delay_us", SYNC_DELAY_US)
        .ints(
            "threads",
            &threads_sweep.iter().map(|&t| t as u64).collect::<Vec<_>>(),
        )
        .nums("per_commit_commits_per_sec", &per_tp)
        .nums("group_commit_commits_per_sec", &group_tp)
        .num("speedup_at_8_threads", speedup_at_8)
        .ints("recovery_log_commits", &sizes)
        .nums("recovery_ms", &rec_ms)
        .ints("recovery_replayed_commits", &replayed);
    json.write();

    if check {
        if failures.is_empty() {
            println!("\nexp_wal: all checks passed");
        } else {
            eprintln!("\nexp_wal: {} failure(s):", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
