//! §5.2 programmer-effort table: how much code caching costs with and
//! without CacheGenie.
//!
//! Paper numbers for its Pinax port: 14 cached-object declarations
//! (~20 changed lines), 48 auto-generated triggers totalling ~1720 lines
//! of trigger code — code a manual-caching developer would write by hand,
//! spread over ≥22 explicit call sites.

use cachegenie::{CacheGenie, ConsistencyStrategy};
use genie_bench::{write_result, TextTable};
use genie_cache::{CacheCluster, ClusterConfig};
use genie_social::{build_registry, cached_object_defs, define_cached_objects};
use genie_storage::Database;
use std::sync::Arc;

fn main() {
    println!("Programmer-effort metrics (reproduces §5.2)\n");
    let registry = Arc::new(build_registry().expect("registry"));
    let db = Database::default();
    registry.sync(&db).expect("sync");
    let genie = CacheGenie::new(
        db,
        CacheCluster::new(ClusterConfig::default()),
        registry,
        Default::default(),
    );
    let declared =
        define_cached_objects(&genie, ConsistencyStrategy::UpdateInPlace).expect("define");

    // "Changed lines" = the declaration call sites in cached_objects.rs:
    // one cacheable(...) call per object, as in the paper's 20 lines.
    let declaration_lines = cached_object_defs(ConsistencyStrategy::UpdateInPlace).len();

    let mut table = TextTable::new(&["metric", "paper", "this reproduction"]);
    table.row(vec![
        "cached objects declared".into(),
        "14".into(),
        declared.to_string(),
    ]);
    table.row(vec![
        "application lines changed".into(),
        "~20".into(),
        format!("{declaration_lines} declarations"),
    ]);
    table.row(vec![
        "triggers auto-generated".into(),
        "48".into(),
        genie.trigger_count().to_string(),
    ]);
    table.row(vec![
        "generated trigger code (lines)".into(),
        "~1720".into(),
        genie.generated_trigger_lines().to_string(),
    ]);
    table.row(vec![
        "manual call sites avoided".into(),
        ">=22".into(),
        "every intercepted query".into(),
    ]);
    println!("{}", table.render());
    println!("object names: {}", genie.object_names().join(", "));
    write_result("effort_table.csv", &table.to_csv());
}
