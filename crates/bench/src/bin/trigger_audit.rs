//! Effect-pipeline audit: cache ops and trigger firings per workload mix,
//! with a committed baseline so effect-coalescing regressions gate CI —
//! the write-path analogue of `plan_audit`.
//!
//! Runs a small deterministic workload per cache mode (including a
//! transactional batch-post share with aborts) and records the counters
//! that define the commit pipeline's efficiency: triggers fired, physical
//! commit cache ops vs the per-statement naive baseline, rollbacks.
//!
//! ```text
//! cargo run --release -p genie-bench --bin trigger_audit                    # report
//! cargo run --release -p genie-bench --bin trigger_audit -- --check        # CI gate
//! cargo run --release -p genie-bench --bin trigger_audit -- --write-baseline
//! ```
//!
//! `--check` fails when triggers fired or cache ops *increase* against the
//! baseline (a coalescing regression), when the deterministic
//! commit/rollback counts drift (the workload changed — regenerate), or
//! when coalesced ops exceed the naive baseline (coalescing is broken).

use genie_social::SeedConfig;
use genie_workload::{run, CacheMode, WorkloadConfig};

const BASELINE_PATH: &str = "crates/bench/trigger_audit.baseline";

struct Audit {
    name: String,
    commits: u64,
    rollbacks: u64,
    triggers_fired: u64,
    commit_cache_ops: u64,
    commit_cache_ops_naive: u64,
    trigger_cache_ops: u64,
}

fn config(mode: CacheMode) -> WorkloadConfig {
    WorkloadConfig {
        mode,
        clients: 6,
        sessions_per_client: 8,
        warmup_sessions_per_client: 2,
        pages_per_session: 8,
        seed: SeedConfig {
            users: 120,
            rng_seed: 7,
            ..Default::default()
        },
        db_buffer_pool_bytes: 256 * 1024,
        rng_seed: 11,
        ..Default::default()
    }
}

fn audit(name: &str, cfg: &WorkloadConfig) -> Audit {
    let r = run(cfg).expect("workload run");
    Audit {
        name: name.to_owned(),
        commits: r.db_stats.commits,
        rollbacks: r.db_stats.rollbacks,
        triggers_fired: r.db_stats.triggers_fired,
        commit_cache_ops: r.genie_stats.commit_cache_ops,
        commit_cache_ops_naive: r.genie_stats.commit_cache_ops_naive,
        trigger_cache_ops: r.genie_stats.inplace_updates
            + r.genie_stats.invalidations
            + r.genie_stats.key_drops,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let write = args.iter().any(|a| a == "--write-baseline");

    let mut audits = Vec::new();
    for mode in [CacheMode::Update, CacheMode::Invalidate] {
        // The paper's plain per-statement mix…
        audits.push(audit(&format!("{}/plain", mode.label()), &config(mode)));
        // …and the transactional mix exercising the commit pipeline.
        let mut cfg = config(mode);
        cfg.mix.batch_post = 20;
        cfg.batch_abort_pct = 25;
        audits.push(audit(&format!("{}/batch", mode.label()), &cfg));
    }

    println!(
        "{:<20} {:>8} {:>9} {:>9} {:>11} {:>11} {:>11}",
        "mix", "commits", "rollbacks", "triggers", "commit_ops", "naive_ops", "applied_fx"
    );
    for a in &audits {
        println!(
            "{:<20} {:>8} {:>9} {:>9} {:>11} {:>11} {:>11}",
            a.name,
            a.commits,
            a.rollbacks,
            a.triggers_fired,
            a.commit_cache_ops,
            a.commit_cache_ops_naive,
            a.trigger_cache_ops,
        );
    }

    if write {
        std::fs::write(BASELINE_PATH, render_baseline(&audits)).expect("write baseline");
        println!("\nwrote {BASELINE_PATH}");
        return;
    }
    if check {
        match std::fs::read_to_string(BASELINE_PATH) {
            Ok(baseline) => {
                let failures = check_against(&audits, &baseline);
                if failures.is_empty() {
                    println!("\ntrigger_audit --check: all effect counters within baseline");
                } else {
                    eprintln!("\ntrigger_audit --check: {} regression(s):", failures.len());
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("trigger_audit --check: cannot read {BASELINE_PATH}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn render_baseline(audits: &[Audit]) -> String {
    let mut out = String::from(
        "# trigger_audit baseline: mix|commits|rollbacks|triggers_fired|commit_cache_ops|commit_cache_ops_naive|trigger_cache_ops\n\
         # Regenerate with: cargo run --release -p genie-bench --bin trigger_audit -- --write-baseline\n",
    );
    for a in audits {
        out.push_str(&format!(
            "{}|{}|{}|{}|{}|{}|{}\n",
            a.name,
            a.commits,
            a.rollbacks,
            a.triggers_fired,
            a.commit_cache_ops,
            a.commit_cache_ops_naive,
            a.trigger_cache_ops,
        ));
    }
    out
}

fn check_against(audits: &[Audit], baseline: &str) -> Vec<String> {
    let mut failures = Vec::new();
    let mut seen = 0usize;
    for line in baseline.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split('|').collect();
        if parts.len() != 7 {
            failures.push(format!("malformed baseline line: {line}"));
            continue;
        }
        let nums: Vec<u64> = parts[1..]
            .iter()
            .filter_map(|p| p.parse::<u64>().ok())
            .collect();
        if nums.len() != 6 {
            failures.push(format!(
                "{}: non-numeric baseline counters: {line}",
                parts[0]
            ));
            continue;
        }
        let (commits, rollbacks, triggers, ops, naive, _applied) =
            (nums[0], nums[1], nums[2], nums[3], nums[4], nums[5]);
        let Some(a) = audits.iter().find(|a| a.name == parts[0]) else {
            failures.push(format!("{}: mix disappeared from the audit", parts[0]));
            continue;
        };
        seen += 1;
        // The workload is deterministic: drifted txn counts mean the
        // scenario itself changed and the baseline must be regenerated.
        if a.commits != commits || a.rollbacks != rollbacks {
            failures.push(format!(
                "{}: txn counts drifted (commits {commits} -> {}, rollbacks {rollbacks} -> {})",
                a.name, a.commits, a.rollbacks
            ));
        }
        if a.triggers_fired > triggers {
            failures.push(format!(
                "{}: triggers_fired regressed ({triggers} -> {})",
                a.name, a.triggers_fired
            ));
        }
        if a.commit_cache_ops > ops {
            failures.push(format!(
                "{}: commit cache ops regressed ({ops} -> {})",
                a.name, a.commit_cache_ops
            ));
        }
        if a.commit_cache_ops > a.commit_cache_ops_naive {
            failures.push(format!(
                "{}: coalesced ops ({}) exceed the naive baseline ({}) — coalescing broken",
                a.name, a.commit_cache_ops, a.commit_cache_ops_naive
            ));
        }
        let _ = naive;
    }
    if seen < audits.len() {
        failures.push(format!(
            "baseline covers {seen} of {} audited mixes — regenerate with --write-baseline",
            audits.len()
        ));
    }
    failures
}
