//! Cache-tier scale-out experiment: sharded lock-striped stores, hot-key
//! replication, and node failure/rejoin.
//!
//! Three legs, each a CI gate under `--check`:
//!
//! 1. **Thread sweep** (one server): aggregate cache-op throughput of the
//!    sharded CLOCK store vs the legacy single-mutex stamp-LRU baseline
//!    at 1–8 client threads under a Zipf hot-key mix. At 8 threads the
//!    sharded store must reach at least [`SHARD_TARGET`]× the baseline —
//!    the lock-striping + eviction-path payoff.
//! 2. **Server sweep** (fixed load): p99 GET latency as the ring grows
//!    1→8 servers must stay near-flat (within [`P99_FLAT_FACTOR`]× of
//!    the single-server p99) — per-key work must not grow with cluster
//!    size.
//! 3. **Kill/rejoin** (full stack): the transactional cache-heavy mix
//!    with hot-key replication runs through a node kill and revive;
//!    the post-run sweep must find zero coherence violations and the
//!    hot keys must actually have served reads from replicas.
//!
//! ```text
//! cargo run --release -p genie-bench --bin exp_cache_scale
//! cargo run --release -p genie-bench --bin exp_cache_scale -- --check --quick
//! ```

use genie_bench::{write_result, BenchJson, TextTable};
use genie_cache::{ClusterConfig, EvictionPolicy};
use genie_workload::{run_cache_scale, run_concurrent, CacheScaleConfig, ConcurrencyConfig};

/// Required sharded-over-baseline throughput ratio at 8 client threads.
const SHARD_TARGET: f64 = 2.0;

/// p99 GET latency at 8 servers may be at most this multiple of the
/// single-server p99. Generous on purpose: the gate catches per-key
/// work growing with cluster size, not scheduler noise on a small host.
const P99_FLAT_FACTOR: f64 = 3.0;

fn sharded(threads: usize, servers: usize, ops: usize) -> CacheScaleConfig {
    CacheScaleConfig {
        client_threads: threads,
        servers,
        shards_per_server: 16,
        eviction: EvictionPolicy::Clock,
        ops_per_thread: ops,
        ..Default::default()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let quick = args.iter().any(|a| a == "--quick");
    let ops: usize = if quick { 16_000 } else { 40_000 };
    let mut failures: Vec<String> = Vec::new();
    let mut json = BenchJson::new("exp_cache_scale");

    // Leg 1: thread sweep, sharded CLOCK vs single-mutex stamp-LRU.
    println!("Cache-tier scale-out: sharded stores vs single-mutex baseline");
    println!("({ops} ops/thread, Zipf key mix)\n");
    let threads_sweep = [1usize, 2, 4, 8];
    let mut table = TextTable::new(&["threads", "baseline ops/s", "sharded ops/s", "speedup"]);
    let mut base_tp = Vec::new();
    let mut shard_tp = Vec::new();
    let mut speedup_at_8 = 0.0;
    // Best-of-3 per cell: sub-second measured phases on a small host see
    // real scheduler noise, and the best rep is the least-perturbed one.
    let reps = 5;
    let best = |cfg: &CacheScaleConfig, failures: &mut Vec<String>| {
        let mut best_tp = 0.0f64;
        for _ in 0..reps {
            let r = run_cache_scale(cfg);
            if r.value_violations + r.coherence_violations > 0 {
                failures.push(format!(
                    "thread sweep at {} threads was not clean: {r:?}",
                    cfg.client_threads
                ));
            }
            best_tp = best_tp.max(r.ops_per_sec);
        }
        best_tp
    };
    for &t in &threads_sweep {
        let base = best(
            &CacheScaleConfig {
                shards_per_server: 1,
                eviction: EvictionPolicy::LruStamp,
                ..sharded(t, 1, ops)
            },
            &mut failures,
        );
        let shard = best(&sharded(t, 1, ops), &mut failures);
        let speedup = shard / base.max(1.0);
        if t == 8 {
            speedup_at_8 = speedup;
        }
        table.row(vec![
            t.to_string(),
            format!("{base:.0}"),
            format!("{shard:.0}"),
            format!("{speedup:.2}x"),
        ]);
        base_tp.push(base);
        shard_tp.push(shard);
    }
    println!("{}", table.render());
    println!("speedup at 8 threads: {speedup_at_8:.2}x (target {SHARD_TARGET:.1}x)\n");
    if check && speedup_at_8 < SHARD_TARGET {
        failures.push(format!(
            "sharded store at 8 threads only {speedup_at_8:.2}x over the \
             single-mutex baseline (target {SHARD_TARGET:.1}x)"
        ));
    }

    // Leg 2: server sweep, p99 GET latency must stay near-flat.
    let servers_sweep = [1usize, 2, 4, 8];
    let mut p99_table = TextTable::new(&["servers", "ops/s", "p50 us", "p99 us"]);
    let mut p99s = Vec::new();
    for &s in &servers_sweep {
        let r = run_cache_scale(&sharded(4, s, ops));
        if r.value_violations + r.coherence_violations > 0 {
            failures.push(format!("server sweep at {s} servers was not clean: {r:?}"));
        }
        p99_table.row(vec![
            s.to_string(),
            format!("{:.0}", r.ops_per_sec),
            format!("{:.1}", r.get_p50_us),
            format!("{:.1}", r.get_p99_us),
        ]);
        p99s.push(r.get_p99_us);
    }
    println!("{}", p99_table.render());
    let p99_ratio = p99s[p99s.len() - 1] / p99s[0].max(0.001);
    println!("p99 at 8 servers vs 1: {p99_ratio:.2}x (flatness bound {P99_FLAT_FACTOR:.1}x)\n");
    if check && p99_ratio > P99_FLAT_FACTOR {
        failures.push(format!(
            "p99 GET latency grew {p99_ratio:.2}x from 1 to 8 servers \
             (bound {P99_FLAT_FACTOR:.1}x)"
        ));
    }

    // Leg 3: full-stack kill/rejoin with hot-key replication.
    let kill = run_concurrent(&ConcurrencyConfig {
        threads: 4,
        txns_per_thread: if quick { 40 } else { 90 },
        read_every: 1,
        hot_read_pct: 80,
        node_kill: true,
        cluster: ClusterConfig {
            servers: 4,
            hot_key_replicas: 2,
            hot_key_threshold: 8,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("kill/rejoin run failed to deploy");
    println!(
        "kill/rejoin: {} committed, {} kills, {} revives, {} hot promotions, \
         {} replica reads, {} checked, {} violations",
        kill.committed,
        kill.node_kills,
        kill.node_revives,
        kill.cache_hot_promotions,
        kill.cache_replica_reads,
        kill.checked_objects,
        kill.coherence_violations
    );
    if kill.errors + kill.read_errors > 0 {
        failures.push(format!(
            "kill/rejoin run hit {} txn / {} read errors",
            kill.errors, kill.read_errors
        ));
    }
    if kill.node_kills != 1 || kill.node_revives != 1 {
        failures.push(format!(
            "failure schedule did not execute: {} kills / {} revives",
            kill.node_kills, kill.node_revives
        ));
    }
    if kill.coherence_violations > 0 {
        failures.push(format!(
            "{} coherence violations through node kill/rejoin",
            kill.coherence_violations
        ));
    }
    if kill.cache_hot_promotions == 0 {
        failures.push("hot-key detector never promoted a key".into());
    }
    if kill.cache_replica_reads == 0 {
        failures.push("no read was ever served by a hot-key replica".into());
    }

    write_result(
        "exp_cache_scale.csv",
        &format!("{}\n{}", table.to_csv(), p99_table.to_csv()),
    );
    json = json
        .int("ops_per_thread", ops as u64)
        .ints(
            "threads",
            &threads_sweep.iter().map(|&t| t as u64).collect::<Vec<_>>(),
        )
        .nums("baseline_ops_per_sec", &base_tp)
        .nums("sharded_ops_per_sec", &shard_tp)
        .num("speedup_at_8_threads", speedup_at_8)
        .ints(
            "servers",
            &servers_sweep.iter().map(|&s| s as u64).collect::<Vec<_>>(),
        )
        .nums("get_p99_us_by_servers", &p99s)
        .num("p99_ratio_8_vs_1", p99_ratio)
        .int("kill_committed", kill.committed)
        .int("kill_hot_promotions", kill.cache_hot_promotions)
        .int("kill_replica_reads", kill.cache_replica_reads)
        .int("kill_checked_objects", kill.checked_objects)
        .int("kill_coherence_violations", kill.coherence_violations);
    json.write();

    if check {
        if failures.is_empty() {
            println!("\nexp_cache_scale: all checks passed");
        } else {
            eprintln!("\nexp_cache_scale: {} failure(s):", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
