//! MVCC experiment: snapshot readers vs the PR-4 blocking baseline.
//!
//! Sweeps reader-thread counts against a fixed pool of BatchPost writer
//! threads that hold row locks across a simulated application think
//! time. Each cell runs twice on the same binary:
//!
//! * **snapshot** — MVCC reads (the default): readers take no locks.
//! * **s-lock baseline** — `Database::set_reader_table_locks(true)`
//!   restores the PR-4 behaviour: SELECTs take table shared locks and
//!   block behind the writers' intent locks for the whole think window.
//!
//! The writer mix is pure BatchPost (disjoint inserted rows, no pokes),
//! so in snapshot mode *nothing* in the system ever waits on a lock —
//! the experiment asserts exactly that (zero lock waits, zero
//! deadlocks), plus zero reader errors, zero intra-transaction snapshot
//! violations, snapshot read throughput at or above the baseline, and a
//! zero-violation post-run coherence sweep.
//!
//! ```text
//! cargo run --release -p genie-bench --bin exp_mvcc
//! cargo run --release -p genie-bench --bin exp_mvcc -- --readers 1,2,4,8 --txns 200
//! ```

use genie_bench::{write_result, BenchJson, TextTable};
use genie_social::SeedConfig;
use genie_workload::{run_concurrent, ConcurrencyConfig};

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let readers: Vec<usize> = arg_after(&args, "--readers")
        .unwrap_or_else(|| "1,2,4,8".to_owned())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let txns: usize = arg_after(&args, "--txns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);

    println!("MVCC experiment: snapshot readers vs table-S-lock baseline");
    println!("(4 BatchPost writers holding row locks across ~100us think time)\n");

    let base = ConcurrencyConfig {
        threads: 4,
        txns_per_thread: txns,
        posts_per_txn: 4,
        abort_pct: 0,
        poke_pct: 0,   // disjoint inserts: the lock manager should be idle
        read_every: 0, // readers are the dedicated reader threads below
        think_us: 100,
        reads_per_reader_txn: 4,
        seed: SeedConfig {
            users: 50,
            ..SeedConfig::tiny()
        },
        ..Default::default()
    };

    let mut table = TextTable::new(&[
        "readers",
        "snap_read_txn/s",
        "slock_read_txn/s",
        "read_speedup",
        "snap_write_txn/s",
        "snap_lock_waits",
        "snap_rd_deadlocks",
        "snap_violations",
        "coherence_viol",
    ]);
    let mut failures: Vec<String> = Vec::new();
    let mut snap_reads_total = 0.0f64;
    let mut slock_reads_total = 0.0f64;
    let mut snap_tps = Vec::new();
    let mut slock_tps = Vec::new();
    for &r in &readers {
        let snap = run_concurrent(&ConcurrencyConfig {
            reader_threads: r,
            ..base.clone()
        })
        .expect("snapshot run");
        let slock = run_concurrent(&ConcurrencyConfig {
            reader_threads: r,
            reader_locking: true,
            ..base.clone()
        })
        .expect("s-lock baseline run");
        snap_reads_total += snap.read_txns_per_sec;
        slock_reads_total += slock.read_txns_per_sec;
        snap_tps.push(snap.read_txns_per_sec);
        slock_tps.push(slock.read_txns_per_sec);

        // The headline MVCC guarantees, per cell.
        if snap.lock_waits != 0 || snap.lock_stats_deadlocks != 0 {
            failures.push(format!(
                "{r} readers: snapshot mode saw {} lock waits / {} deadlocks (readers must be lock-free, disjoint writers conflict-free)",
                snap.lock_waits, snap.lock_stats_deadlocks
            ));
        }
        if snap.read_deadlocks + snap.read_errors > 0 {
            failures.push(format!(
                "{r} readers: {} reader deadlocks, {} reader errors in snapshot mode",
                snap.read_deadlocks, snap.read_errors
            ));
        }
        if snap.snapshot_violations + slock.snapshot_violations > 0 {
            failures.push(format!(
                "{r} readers: intra-transaction snapshot violations (snap {}, slock {})",
                snap.snapshot_violations, slock.snapshot_violations
            ));
        }
        if snap.coherence_violations + slock.coherence_violations > 0 {
            failures.push(format!(
                "{r} readers: cache/database coherence violations (snap {}, slock {})",
                snap.coherence_violations, slock.coherence_violations
            ));
        }
        if snap.errors + slock.errors > 0 {
            failures.push(format!(
                "{r} readers: writer errors (snap {}, slock {})",
                snap.errors, slock.errors
            ));
        }
        table.row(vec![
            r.to_string(),
            format!("{:.0}", snap.read_txns_per_sec),
            format!("{:.0}", slock.read_txns_per_sec),
            format!(
                "{:.2}x",
                snap.read_txns_per_sec / slock.read_txns_per_sec.max(f64::EPSILON)
            ),
            format!("{:.0}", snap.throughput_txns_per_sec),
            snap.lock_waits.to_string(),
            snap.read_deadlocks.to_string(),
            snap.snapshot_violations.to_string(),
            (snap.coherence_violations + slock.coherence_violations).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(each reader transaction re-runs its first count before COMMIT; any difference \
         would be a snapshot violation. The post-run sweep re-evaluates every touched \
         cached object against the database.)"
    );
    // Aggregate throughput criterion: snapshot reads at or above the
    // blocking baseline (per-cell numbers are noisy on small boxes; the
    // aggregate is decisively in MVCC's favour because baseline readers
    // spend the writers' think windows blocked).
    if snap_reads_total < slock_reads_total {
        failures.push(format!(
            "aggregate snapshot read throughput {snap_reads_total:.0} txn/s fell below \
             the s-lock baseline {slock_reads_total:.0} txn/s"
        ));
    }
    if !failures.is_empty() {
        eprintln!("\nexp_mvcc: {} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!(
        "\nexp_mvcc: all checks passed (aggregate read speedup {:.2}x)",
        snap_reads_total / slock_reads_total.max(f64::EPSILON)
    );
    write_result("exp_mvcc.csv", &table.to_csv());
    BenchJson::new("exp_mvcc")
        .ints(
            "reader_threads",
            &readers.iter().map(|&r| r as u64).collect::<Vec<_>>(),
        )
        .int("writer_threads", base.threads as u64)
        .int("txns_per_thread", txns as u64)
        .nums("snapshot_read_txns_per_sec", &snap_tps)
        .nums("slock_read_txns_per_sec", &slock_tps)
        .num(
            "aggregate_read_speedup",
            snap_reads_total / slock_reads_total.max(f64::EPSILON),
        )
        .write();
}
