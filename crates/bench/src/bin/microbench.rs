//! §5.3 microbenchmarks: database vs cache lookup cost, and the cost of
//! triggers on INSERT — evaluated through the cost model the experiments
//! use, against a small in-RAM database (as in the paper).
//!
//! Paper numbers: DB lookup 10–25× a cache op; plain INSERT 6.3 ms;
//! no-op trigger 6.5 ms; trigger opening a remote memcached connection
//! 11.9 ms; each in-trigger cache op +0.2 ms.

use genie_bench::{write_result, TextTable};
use genie_storage::{Database, Trigger, TriggerCtx, TriggerEvent, Value};
use genie_workload::CostParams;

fn main() {
    println!("Microbenchmarks (reproduces §5.3)\n");
    let cost = CostParams::default();
    let db = Database::default();
    db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)", &[])
        .expect("ddl");
    for i in 0..1000i64 {
        db.execute_sql("INSERT INTO t VALUES ($1, 'row')", &[Value::Int(i)])
            .expect("seed");
    }

    // Simple B+Tree lookup (warm).
    db.execute_sql("SELECT * FROM t WHERE id = 1", &[])
        .expect("warm");
    let lookup = db
        .execute_sql("SELECT * FROM t WHERE id = $1", &[Value::Int(500)])
        .expect("lookup");
    let lookup_ms = cost
        .page_charge(&lookup.cost, 1, 0, 0)
        .total()
        .as_millis_f64();
    let cache_ms = cost.cache_op_ms;

    // INSERT variants.
    let plain = db
        .execute_sql("INSERT INTO t VALUES (2000, 'x')", &[])
        .expect("insert");
    let plain_ms = cost
        .page_charge(&plain.cost, 0, 1, 0)
        .total()
        .as_millis_f64();

    db.create_trigger(Trigger::new(
        "noop",
        "t",
        TriggerEvent::Insert,
        |_: &mut TriggerCtx<'_>| Ok(()),
    ))
    .expect("trigger");
    let noop = db
        .execute_sql("INSERT INTO t VALUES (2001, 'x')", &[])
        .expect("insert");
    let noop_ms = cost
        .page_charge(&noop.cost, 0, 1, 0)
        .total()
        .as_millis_f64();

    db.clear_triggers();
    db.create_trigger(Trigger::new(
        "with_conn",
        "t",
        TriggerEvent::Insert,
        |ctx: &mut TriggerCtx<'_>| {
            ctx.charge_connection_open();
            Ok(())
        },
    ))
    .expect("trigger");
    let conn = db
        .execute_sql("INSERT INTO t VALUES (2002, 'x')", &[])
        .expect("insert");
    let conn_ms = cost
        .page_charge(&conn.cost, 0, 1, 0)
        .total()
        .as_millis_f64();

    db.clear_triggers();
    db.create_trigger(Trigger::new(
        "with_ops",
        "t",
        TriggerEvent::Insert,
        |ctx: &mut TriggerCtx<'_>| {
            ctx.charge_connection_open();
            ctx.charge_cache_ops(1);
            Ok(())
        },
    ))
    .expect("trigger");
    let ops = db
        .execute_sql("INSERT INTO t VALUES (2003, 'x')", &[])
        .expect("insert");
    // Cache-op time shows on the DB side; report db_cpu+disk delta.
    let ops_charge = cost.page_charge(&ops.cost, 0, 1, 0);
    let ops_ms = (ops_charge.db_cpu + ops_charge.db_disk).as_millis_f64();
    let conn_charge = cost.page_charge(&conn.cost, 0, 1, 0);
    let per_op_delta = ops_ms - (conn_charge.db_cpu + conn_charge.db_disk).as_millis_f64();

    let mut table = TextTable::new(&["measurement", "paper", "modelled"]);
    table.row(vec![
        "cache operation (ms)".into(),
        "0.2".into(),
        format!("{cache_ms:.2}"),
    ]);
    table.row(vec![
        "simple DB lookup (ms)".into(),
        "2-5 (10-25x cache)".into(),
        format!("{lookup_ms:.2} ({:.1}x)", lookup_ms / cache_ms),
    ]);
    table.row(vec![
        "plain INSERT (ms)".into(),
        "6.3".into(),
        format!("{plain_ms:.2}"),
    ]);
    table.row(vec![
        "INSERT + no-op trigger (ms)".into(),
        "6.5".into(),
        format!("{noop_ms:.2}"),
    ]);
    table.row(vec![
        "INSERT + remote-connection trigger (ms)".into(),
        "11.9".into(),
        format!("{conn_ms:.2}"),
    ]);
    table.row(vec![
        "per cache op inside trigger (ms)".into(),
        "0.2".into(),
        format!("{per_op_delta:.2}"),
    ]);
    println!("{}", table.render());
    write_result("microbench.csv", &table.to_csv());
}
