//! Experiment 5: the cost of cache consistency. Replays the workload
//! with triggers disabled — the "ideal" system whose cache is updated for
//! free — and compares against the real systems.
//!
//! Expected shape (paper): Update 75 → 104 req/s ideal, Invalidate
//! 62 → 80, i.e. triggers cost 22–28% of throughput on a loaded system.

use genie_bench::{scale_from_args, write_result, BenchJson, TextTable};
use genie_workload::{run, CacheMode, WorkloadConfig};

fn main() {
    let base = scale_from_args();
    println!("Experiment 5: trigger (cache-consistency) overhead");
    println!("(reproduces §5.4 Experiment 5)\n");
    let mut table = TextTable::new(&["mode", "with_triggers", "ideal_no_triggers", "overhead_pct"]);
    let mut json = BenchJson::new("exp5_trigger_overhead");
    for mode in [CacheMode::Update, CacheMode::Invalidate] {
        let real = run(&WorkloadConfig {
            mode,
            ..base.clone()
        })
        .expect("run");
        let ideal = run(&WorkloadConfig {
            mode,
            triggers_enabled: false,
            ..base.clone()
        })
        .expect("run");
        let overhead = 100.0 * (ideal.throughput_pages_per_sec - real.throughput_pages_per_sec)
            / ideal.throughput_pages_per_sec.max(f64::EPSILON);
        table.row(vec![
            mode.label().to_owned(),
            format!("{:.1}", real.throughput_pages_per_sec),
            format!("{:.1}", ideal.throughput_pages_per_sec),
            format!("{:.1}", overhead),
        ]);
        let label = mode.label().to_lowercase();
        json = json
            .num(
                &format!("{label}_with_triggers_pages_per_sec"),
                real.throughput_pages_per_sec,
            )
            .num(
                &format!("{label}_ideal_pages_per_sec"),
                ideal.throughput_pages_per_sec,
            )
            .num(&format!("{label}_overhead_pct"), overhead);
    }
    json.write();
    println!("{}", table.render());
    println!("(paper: triggers reduce throughput by 22-28% on a loaded database)");
    write_result("exp5_trigger_overhead.csv", &table.to_csv());

    // Commit-time effect coalescing: replay the workload with a
    // transactional (multi-statement, abort-mixed) page share and compare
    // the physical cache ops committed transactions performed against the
    // per-statement (naive) baseline the same effects would have cost.
    println!("\nCommit-pipeline effect coalescing (batch-post transactional mix):\n");
    let mut coalesce = TextTable::new(&[
        "mode",
        "commits",
        "rollbacks",
        "cache_ops/txn",
        "naive_ops/txn",
        "saved_pct",
    ]);
    for mode in [CacheMode::Update, CacheMode::Invalidate] {
        let mut cfg = base.clone();
        cfg.mode = mode;
        cfg.mix.batch_post = 20;
        let r = run(&cfg).expect("run");
        let g = r.genie_stats;
        let commits = r.db_stats.commits.max(1);
        let saved = 100.0 * g.commit_ops_saved() as f64 / (g.commit_cache_ops_naive.max(1)) as f64;
        coalesce.row(vec![
            mode.label().to_owned(),
            format!("{}", r.db_stats.commits),
            format!("{}", r.db_stats.rollbacks),
            format!("{:.2}", g.commit_cache_ops as f64 / commits as f64),
            format!("{:.2}", g.commit_cache_ops_naive as f64 / commits as f64),
            format!("{saved:.1}"),
        ]);
    }
    println!("{}", coalesce.render());
    println!("(committed transactions publish one coalesced cache op per touched key;");
    println!(" rolled-back transactions publish nothing)");
    write_result("exp5_effect_coalescing.csv", &coalesce.to_csv());
}
