//! Experiment 5: the cost of cache consistency. Replays the workload
//! with triggers disabled — the "ideal" system whose cache is updated for
//! free — and compares against the real systems.
//!
//! Expected shape (paper): Update 75 → 104 req/s ideal, Invalidate
//! 62 → 80, i.e. triggers cost 22–28% of throughput on a loaded system.

use genie_bench::{scale_from_args, write_result, TextTable};
use genie_workload::{run, CacheMode, WorkloadConfig};

fn main() {
    let base = scale_from_args();
    println!("Experiment 5: trigger (cache-consistency) overhead");
    println!("(reproduces §5.4 Experiment 5)\n");
    let mut table = TextTable::new(&["mode", "with_triggers", "ideal_no_triggers", "overhead_pct"]);
    for mode in [CacheMode::Update, CacheMode::Invalidate] {
        let real = run(&WorkloadConfig {
            mode,
            ..base.clone()
        })
        .expect("run");
        let ideal = run(&WorkloadConfig {
            mode,
            triggers_enabled: false,
            ..base.clone()
        })
        .expect("run");
        let overhead = 100.0 * (ideal.throughput_pages_per_sec - real.throughput_pages_per_sec)
            / ideal.throughput_pages_per_sec.max(f64::EPSILON);
        table.row(vec![
            mode.label().to_owned(),
            format!("{:.1}", real.throughput_pages_per_sec),
            format!("{:.1}", ideal.throughput_pages_per_sec),
            format!("{:.1}", overhead),
        ]);
    }
    println!("{}", table.render());
    println!("(paper: triggers reduce throughput by 22-28% on a loaded database)");
    write_result("exp5_trigger_overhead.csv", &table.to_csv());
}
