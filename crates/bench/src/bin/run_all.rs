//! Runs every experiment in sequence (the data behind EXPERIMENTS.md).
//!
//! `cargo run --release -p genie-bench --bin run_all [-- --quick]`
//!
//! Builds all experiment binaries first (`cargo run --bin run_all` alone
//! would only rebuild this one, and stale siblings would silently run an
//! older calibration).

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Ensure every sibling binary is up to date with the current sources.
    let status = Command::new("cargo")
        .args(["build", "--release", "-p", "genie-bench", "--bins"])
        .status();
    match status {
        Ok(s) if s.success() => {}
        other => {
            eprintln!("warning: could not rebuild experiment binaries ({other:?}); running as-is")
        }
    }
    let bins = [
        "microbench",
        "effort_table",
        "exp1_clients",
        "table2_page_latency",
        "exp2_mix",
        "exp3_zipf",
        "exp4_cache_size",
        "exp5_trigger_overhead",
        "ablations",
    ];
    for bin in bins {
        println!("\n=== {bin} ===\n");
        let exe = std::env::current_exe().expect("current exe");
        let dir = exe.parent().expect("bin dir");
        let mut cmd = Command::new(dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e} (build with --release first)"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nAll experiments complete; outputs in results/.");
}
