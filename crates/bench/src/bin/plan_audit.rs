//! Prints the access-path plan and measured cost for each social-app
//! page query — the EXPLAIN audit for the storage planner.
//!
//! For every query-set a page load issues, shows the plan the cost-based
//! planner picks (path kind, index, estimated rows/cost) next to the
//! measured `CostReport` of actually running it (rows scanned, index
//! probes, sorts). Run with:
//!
//! ```text
//! cargo run --release -p genie-bench --bin plan_audit
//! ```

use genie_social::{build_app, AppConfig, SeedConfig};
use genie_storage::{QueryResult, Select, Value};

fn main() {
    let env = build_app(&AppConfig {
        seed: SeedConfig {
            users: 200,
            rng_seed: 7,
            ..Default::default()
        },
        // NoCache: audit raw database access paths without interception.
        strategy: None,
        ..Default::default()
    })
    .expect("build social app");

    println!(
        "plan audit over {} users / {} rows total",
        env.seeded.users,
        env.db
            .table_names()
            .iter()
            .map(|t| env.db.row_count(t).unwrap_or(0))
            .sum::<usize>()
    );
    println!();
    println!(
        "{:<28} {:<58} {:>6} {:>7} {:>6} {:>5}",
        "page query", "chosen plan", "rows", "scanned", "probes", "sorts"
    );

    let app = &env.app;
    let user = 3i64;
    let queries: Vec<(&str, (Select, Vec<Value>))> = vec![
        ("login: user by pk", app.user_qs(user).unwrap().compile()),
        ("login: profile", app.profile_qs(user).unwrap().compile()),
        (
            "lookup_bm: friends",
            app.friends_qs(user).unwrap().compile(),
        ),
        (
            "accept_fr: pending invites",
            app.pending_invitations_qs(user).unwrap().compile(),
        ),
        (
            "lookup_bm: own bookmarks",
            app.user_bookmarks_qs(user).unwrap().compile(),
        ),
        (
            "view_wall: top-20 posts",
            app.wall_qs(user).unwrap().compile(),
        ),
        (
            "view_groups: memberships",
            app.user_groups_qs(user).unwrap().compile(),
        ),
    ];

    for (name, (select, params)) in queries {
        let plan = env.db.explain(&select, &params).expect("explain");
        let out = env.db.select(&select, &params).expect("execute");
        report(name, &plan, &out.result, &out.cost);
    }

    println!();
    println!("range / IN shapes the ORM emits for feeds and digests:");
    let ranged = [
        (
            "wall since timestamp",
            "SELECT * FROM wall_posts WHERE user_id = $1 AND date_posted > TS(500) \
             ORDER BY date_posted DESC",
            vec![Value::Int(user)],
        ),
        (
            "invites by status IN",
            "SELECT * FROM friendship_invitations WHERE to_user_id = $1 AND status IN (0, 2)",
            vec![Value::Int(user)],
        ),
        (
            "bookmark id batch",
            "SELECT * FROM bookmarks WHERE id IN (1, 2, 3, 5, 8, 13)",
            vec![],
        ),
        (
            "recent saves BETWEEN",
            "SELECT * FROM bookmark_instances WHERE saved BETWEEN TS(100) AND TS(400)",
            vec![],
        ),
    ];
    for (name, sql, params) in ranged {
        let plan = env.db.explain_sql(sql, &params).expect("explain");
        let out = env.db.execute_sql(sql, &params).expect("execute");
        report(name, &plan, &out.result, &out.cost);
    }
}

fn report(
    name: &str,
    plan: &genie_storage::Plan,
    result: &QueryResult,
    cost: &genie_storage::CostReport,
) {
    println!(
        "{:<28} {:<58} {:>6} {:>7} {:>6} {:>5}",
        name,
        plan.to_string(),
        result.rows.len(),
        cost.rows_scanned,
        cost.index_probes,
        cost.sorts,
    );
}
