//! Prints the whole-query plan and measured cost for each social-app
//! page query — the EXPLAIN audit for the storage planner — and, in
//! `--check` mode, fails when a plan regresses against the committed
//! baseline.
//!
//! For every query-set a page load issues, shows the plan the cost-based
//! planner picks (access path, join order and probe methods, order/limit
//! handling) next to the measured `CostReport` of actually running it
//! (rows scanned, index probes, sorts). Run with:
//!
//! ```text
//! cargo run --release -p genie-bench --bin plan_audit              # report
//! cargo run --release -p genie-bench --bin plan_audit -- --check   # CI gate
//! cargo run --release -p genie-bench --bin plan_audit -- --write-baseline
//! ```
//!
//! The baseline (`crates/bench/plan_audit.baseline`) records each
//! query's plan *shape* (structure only, no cost estimates) and its
//! measured counters. `--check` fails when a shape changes or a counter
//! worsens — the definition of a plan regression for the social-app
//! page queries.

use genie_social::{build_app, AppConfig, SeedConfig};
use genie_storage::{QueryResult, Select, Value};

// Committed next to the bench crate (results/ is gitignored, and the
// baseline must travel with the source so `--check` works on a fresh
// clone).
const BASELINE_PATH: &str = "crates/bench/plan_audit.baseline";

struct Audit {
    name: &'static str,
    shape: String,
    rows_scanned: u64,
    index_probes: u64,
    sorts: u64,
    rows: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let write = args.iter().any(|a| a == "--write-baseline");

    let env = build_app(&AppConfig {
        seed: SeedConfig {
            users: 200,
            rng_seed: 7,
            ..Default::default()
        },
        // NoCache: audit raw database access paths without interception.
        strategy: None,
        ..Default::default()
    })
    .expect("build social app");

    println!(
        "plan audit over {} users / {} rows total",
        env.seeded.users,
        env.db
            .table_names()
            .iter()
            .map(|t| env.db.row_count(t).unwrap_or(0))
            .sum::<usize>()
    );
    println!();
    println!(
        "{:<28} {:<72} {:>6} {:>7} {:>6} {:>5}",
        "page query", "chosen plan", "rows", "scanned", "probes", "sorts"
    );

    let app = &env.app;
    let user = 3i64;
    let mut audits: Vec<Audit> = Vec::new();
    let queries: Vec<(&'static str, (Select, Vec<Value>))> = vec![
        ("login: user by pk", app.user_qs(user).unwrap().compile()),
        ("login: profile", app.profile_qs(user).unwrap().compile()),
        (
            "lookup_bm: friends",
            app.friends_qs(user).unwrap().compile(),
        ),
        (
            "accept_fr: pending invites",
            app.pending_invitations_qs(user).unwrap().compile(),
        ),
        (
            "lookup_bm: own bookmarks",
            app.user_bookmarks_qs(user).unwrap().compile(),
        ),
        (
            "view_fbm: friend bookmarks",
            app.friend_bookmarks_qs(user).unwrap().compile(),
        ),
        (
            "view_wall: top-20 posts",
            app.wall_qs(user).unwrap().compile(),
        ),
        (
            "view_groups: memberships",
            app.user_groups_qs(user).unwrap().compile(),
        ),
        // COUNT(*) pushdown coverage: page-chrome badge counts answered
        // from posting-list sizes (plan shape carries the count-only
        // marker; rows_scanned must be zero).
        (
            "badge: friend count",
            app.friends_qs(user).unwrap().compile_count(),
        ),
        (
            "badge: pending-invite count",
            app.pending_invitations_qs(user).unwrap().compile_count(),
        ),
    ];

    for (name, (select, params)) in queries {
        let plan = env.db.explain(&select, &params).expect("explain");
        let out = env.db.select(&select, &params).expect("execute");
        audits.push(report(name, &plan, &out.result, &out.cost));
    }

    println!();
    println!("range / IN shapes the ORM emits for feeds and digests:");
    let ranged: [(&'static str, &str, Vec<Value>); 9] = [
        (
            "wall since timestamp",
            "SELECT * FROM wall_posts WHERE user_id = $1 AND date_posted > TS(500) \
             ORDER BY date_posted DESC",
            vec![Value::Int(user)],
        ),
        (
            "invites by status IN",
            "SELECT * FROM friendship_invitations WHERE to_user_id = $1 AND status IN (0, 2)",
            vec![Value::Int(user)],
        ),
        (
            "bookmark id batch",
            "SELECT * FROM bookmarks WHERE id IN (1, 2, 3, 5, 8, 13)",
            vec![],
        ),
        (
            "recent saves BETWEEN",
            "SELECT * FROM bookmark_instances WHERE saved BETWEEN TS(100) AND TS(400)",
            vec![],
        ),
        (
            "wall top-5 early stop",
            "SELECT * FROM wall_posts WHERE user_id = $1 ORDER BY date_posted DESC LIMIT 5",
            vec![Value::Int(user)],
        ),
        // COUNT(*) pushdown breadth: range and IN-list predicates whose
        // every conjunct the path absorbs are answered by summing posting
        // blocks — count-only plan shape, zero rows scanned.
        (
            "count: wall since timestamp",
            "SELECT COUNT(*) FROM wall_posts WHERE user_id = $1 AND date_posted > TS(500)",
            vec![Value::Int(user)],
        ),
        (
            "count: invites by status IN",
            "SELECT COUNT(*) FROM friendship_invitations WHERE to_user_id = $1 AND status IN (0, 2)",
            vec![Value::Int(user)],
        ),
        (
            "count: bookmark pk batch",
            "SELECT COUNT(*) FROM bookmarks WHERE id IN (1, 2, 3, 5, 8, 13)",
            vec![],
        ),
        (
            "count: pk range",
            "SELECT COUNT(*) FROM users WHERE id BETWEEN 10 AND 40",
            vec![],
        ),
    ];
    for (name, sql, params) in ranged {
        let plan = env.db.explain_sql(sql, &params).expect("explain");
        let out = env.db.execute_sql(sql, &params).expect("execute");
        audits.push(report(name, &plan, &out.result, &out.cost));
    }

    if write {
        let body = render_baseline(&audits);
        std::fs::write(BASELINE_PATH, body).expect("write baseline");
        println!("\nwrote {BASELINE_PATH}");
        return;
    }
    if check {
        match std::fs::read_to_string(BASELINE_PATH) {
            Ok(baseline) => {
                let failures = check_against(&audits, &baseline);
                if failures.is_empty() {
                    println!("\nplan_audit --check: all plans match the baseline");
                } else {
                    eprintln!("\nplan_audit --check: {} regression(s):", failures.len());
                    for f in &failures {
                        eprintln!("  {f}");
                    }
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("plan_audit --check: cannot read {BASELINE_PATH}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn report(
    name: &'static str,
    plan: &genie_storage::QueryPlan,
    result: &QueryResult,
    cost: &genie_storage::CostReport,
) -> Audit {
    println!(
        "{:<28} {:<72} {:>6} {:>7} {:>6} {:>5}",
        name,
        plan.to_string(),
        result.rows.len(),
        cost.rows_scanned,
        cost.index_probes,
        cost.sorts,
    );
    Audit {
        name,
        shape: plan.shape(),
        rows_scanned: cost.rows_scanned,
        index_probes: cost.index_probes,
        sorts: cost.sorts,
        rows: result.rows.len(),
    }
}

fn render_baseline(audits: &[Audit]) -> String {
    let mut out = String::from(
        "# plan_audit baseline: name|plan shape|rows_scanned|index_probes|sorts|rows_returned\n\
         # Regenerate with: cargo run --release -p genie-bench --bin plan_audit -- --write-baseline\n",
    );
    for a in audits {
        out.push_str(&format!(
            "{}|{}|{}|{}|{}|{}\n",
            a.name, a.shape, a.rows_scanned, a.index_probes, a.sorts, a.rows
        ));
    }
    out
}

/// A regression is a changed plan shape, or any measured cost counter
/// (rows scanned / index probes / sorts) getting *worse* for the same
/// query against the same seeded data.
fn check_against(audits: &[Audit], baseline: &str) -> Vec<String> {
    let mut failures = Vec::new();
    let mut seen = 0usize;
    for line in baseline.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split('|').collect();
        if parts.len() != 6 {
            failures.push(format!("malformed baseline line: {line}"));
            continue;
        }
        let (name, shape) = (parts[0], parts[1]);
        // A corrupt counter must fail the gate, not silently disable it.
        let (scanned, probes, sorts, rows) = match (
            parts[2].parse::<u64>(),
            parts[3].parse::<u64>(),
            parts[4].parse::<u64>(),
            parts[5].parse::<usize>(),
        ) {
            (Ok(a), Ok(b), Ok(c), Ok(d)) => (a, b, c, d),
            _ => {
                failures.push(format!("{name}: non-numeric baseline counters: {line}"));
                continue;
            }
        };
        let Some(a) = audits.iter().find(|a| a.name == name) else {
            failures.push(format!("{name}: query disappeared from the audit"));
            continue;
        };
        seen += 1;
        if a.shape != shape {
            failures.push(format!(
                "{name}: plan shape changed\n    baseline: {shape}\n    current:  {}",
                a.shape
            ));
        }
        if a.rows != rows {
            failures.push(format!(
                "{name}: result size changed ({rows} -> {})",
                a.rows
            ));
        }
        if a.rows_scanned > scanned {
            failures.push(format!(
                "{name}: rows_scanned regressed ({scanned} -> {})",
                a.rows_scanned
            ));
        }
        if a.index_probes > probes {
            failures.push(format!(
                "{name}: index_probes regressed ({probes} -> {})",
                a.index_probes
            ));
        }
        if a.sorts > sorts {
            failures.push(format!("{name}: sorts regressed ({sorts} -> {})", a.sorts));
        }
    }
    if seen < audits.len() {
        failures.push(format!(
            "baseline covers {seen} of {} audited queries — regenerate with --write-baseline",
            audits.len()
        ));
    }
    failures
}
