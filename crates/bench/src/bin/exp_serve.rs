//! Serving-path experiment: the loopback-TCP front-end under the
//! closed-loop Zipf client fleet, measured end-to-end (frame encode,
//! kernel round trip, middleware, page execution, response decode).
//!
//! Two legs, each a CI gate under `--check`:
//!
//! 1. **Paced capacity leg**: the client fleet is paced to an aggregate
//!    target QPS with admission control wide open. The server must keep
//!    up (achieved >= [`QPS_FLOOR_FRACTION`] of target), shed *nothing*
//!    (below the admission threshold every request must be served), and
//!    hold every page kind's end-to-end p99 under [`P99_CEILING_S`].
//!    The drain at the end must drop no in-flight request and leak no
//!    pooled session, and the post-drain cache/database sweep must find
//!    zero coherence violations and zero snapshot violations.
//! 2. **Overload leg**: the same fleet unpaced against `max_inflight =
//!    1`. Load shedding must *engage* (`requests_shed > 0`), every
//!    refusal must be retryable (`requests_failed == 0`), and the
//!    correctness gates above must still all hold — overload degrades
//!    throughput, never consistency.
//!
//! ```text
//! cargo run --release -p genie-bench --bin exp_serve
//! cargo run --release -p genie-bench --bin exp_serve -- --check --quick
//! ```

use genie_bench::{write_result, BenchJson, TextTable};
use genie_server::ServerConfig;
use genie_social::SeedConfig;
use genie_workload::{run_serve, ServeConfig, ServeResult};

/// End-to-end p99 ceiling per page kind on the paced leg, seconds.
/// Generous for noisy CI hosts: steady-state loopback pages sit around
/// a millisecond; a p99 past this means queueing, not noise.
const P99_CEILING_S: f64 = 0.25;

/// The paced leg must achieve at least this fraction of its target QPS
/// (the pacing budget per request dwarfs a page's service time, so
/// falling further behind means the serving path is stalling).
const QPS_FLOOR_FRACTION: f64 = 0.5;

/// Correctness gates shared by both legs: nothing fatal, nothing torn,
/// nothing leaked — overload may slow the server down, never corrupt it.
fn gate_correctness(leg: &str, r: &ServeResult, failures: &mut Vec<String>) {
    if r.requests_ok == 0 {
        failures.push(format!("{leg}: no request succeeded"));
    }
    if r.requests_failed != 0 {
        failures.push(format!(
            "{leg}: {} non-retryable request failures",
            r.requests_failed
        ));
    }
    if r.snapshot_violations != 0 {
        failures.push(format!(
            "{leg}: {} snapshot probes saw a torn repeat read",
            r.snapshot_violations
        ));
    }
    if r.coherence_violations != 0 {
        failures.push(format!(
            "{leg}: {} of {} swept objects incoherent after the drain",
            r.coherence_violations, r.checked_objects
        ));
    }
    match &r.shutdown {
        Some(rep) => {
            if rep.dropped_in_flight != 0 {
                failures.push(format!(
                    "{leg}: drain dropped {} in-flight requests",
                    rep.dropped_in_flight
                ));
            }
            if rep.leaked_sessions != 0 {
                failures.push(format!(
                    "{leg}: {} pooled sessions leaked through the drain",
                    rep.leaked_sessions
                ));
            }
        }
        None => failures.push(format!("{leg}: run produced no shutdown report")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let quick = args.iter().any(|a| a == "--quick");
    // Targets are sized for a single busy CI core. The full scale runs
    // a longer, heavier mix (more users, 4x the requests, growing
    // tables), so it paces *lower* than quick: the gate is bounded p99
    // at a sustained-for-longer rate, not peak throughput.
    let (clients, per_client, target_qps, users) = if quick {
        (6usize, 120usize, 300.0f64, 20usize)
    } else {
        (8, 250, 150.0, 40)
    };
    let mut failures: Vec<String> = Vec::new();

    // Leg 1: paced capacity run, admission wide open. One worker per
    // client: thread-per-connection serving must never park a client
    // behind another's connection.
    println!("Serving path: paced closed-loop fleet over loopback TCP");
    println!("({clients} clients x {per_client} requests, target {target_qps:.0} req/s)\n");
    let paced_cfg = ServeConfig {
        clients,
        requests_per_client: per_client,
        target_qps,
        seed: SeedConfig {
            users,
            ..SeedConfig::tiny()
        },
        server: ServerConfig {
            workers: clients,
            backlog: clients.max(16),
            ..ServerConfig::default()
        },
        ..ServeConfig::default()
    };
    let paced = run_serve(&paced_cfg).expect("paced serve run failed");
    let mut table = TextTable::new(&[
        "page", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms", "p999 ms", "max ms",
    ]);
    for p in &paced.per_page {
        table.row(vec![
            p.page.to_owned(),
            p.count.to_string(),
            format!("{:.3}", p.mean_s * 1e3),
            format!("{:.3}", p.p50_s * 1e3),
            format!("{:.3}", p.p95_s * 1e3),
            format!("{:.3}", p.p99_s * 1e3),
            format!("{:.3}", p.p999_s * 1e3),
            format!("{:.3}", p.max_s * 1e3),
        ]);
    }
    println!("{}", table.render());
    println!(
        "achieved {:.0} req/s of {:.0} target | ok {} retryable {} shed {} \
         snapshot_violations {} coherence {}/{}\n",
        paced.achieved_qps,
        paced.target_qps,
        paced.requests_ok,
        paced.requests_retryable,
        paced.requests_shed,
        paced.snapshot_violations,
        paced.coherence_violations,
        paced.checked_objects,
    );
    gate_correctness("paced leg", &paced, &mut failures);
    if paced.requests_shed != 0 {
        failures.push(format!(
            "paced leg: {} requests shed below the admission threshold",
            paced.requests_shed
        ));
    }
    if paced.achieved_qps < QPS_FLOOR_FRACTION * target_qps {
        failures.push(format!(
            "paced leg: achieved {:.0} req/s, under {:.0}% of the {target_qps:.0} target",
            paced.achieved_qps,
            QPS_FLOOR_FRACTION * 100.0
        ));
    }
    for p in &paced.per_page {
        if p.p99_s > P99_CEILING_S {
            failures.push(format!(
                "paced leg: {} p99 {:.1} ms over the {:.0} ms ceiling",
                p.page,
                p.p99_s * 1e3,
                P99_CEILING_S * 1e3
            ));
        }
    }

    // Leg 2: overload. One admission slot for eight unpaced clients —
    // shedding must engage, and must stay retryable and coherent.
    let overload_cfg = ServeConfig {
        clients: 8,
        requests_per_client: if quick { 60 } else { 150 },
        target_qps: 0.0,
        snapshot_every: 5,
        seed: SeedConfig::tiny(),
        server: ServerConfig {
            workers: 8,
            max_inflight: 1,
            ..ServerConfig::default()
        },
        ..ServeConfig::default()
    };
    let overload = run_serve(&overload_cfg).expect("overload serve run failed");
    println!(
        "overload (8 clients, 1 admission slot): ok {} shed {} retryable {} failed {} \
         coherence {}/{}\n",
        overload.requests_ok,
        overload.requests_shed,
        overload.requests_retryable,
        overload.requests_failed,
        overload.coherence_violations,
        overload.checked_objects,
    );
    gate_correctness("overload leg", &overload, &mut failures);
    if overload.requests_shed == 0 {
        failures
            .push("overload leg: admission control never shed with 8 clients on 1 slot".to_owned());
    }

    write_result("exp_serve.csv", &table.to_csv());
    let pages: Vec<&str> = paced.per_page.iter().map(|p| p.page).collect();
    BenchJson::new("exp_serve")
        .int("clients", clients as u64)
        .int("requests_per_client", per_client as u64)
        .num("target_qps", paced.target_qps)
        .num("achieved_qps", paced.achieved_qps)
        .int("requests_ok", paced.requests_ok)
        .int("requests_retryable", paced.requests_retryable)
        .int("requests_shed", paced.requests_shed)
        .int("snapshot_violations", paced.snapshot_violations)
        .int("checked_objects", paced.checked_objects)
        .int("coherence_violations", paced.coherence_violations)
        .str_field("pages", &pages.join(","))
        .ints(
            "page_counts",
            &paced.per_page.iter().map(|p| p.count).collect::<Vec<_>>(),
        )
        .nums(
            "page_p50_s",
            &paced.per_page.iter().map(|p| p.p50_s).collect::<Vec<_>>(),
        )
        .nums(
            "page_p95_s",
            &paced.per_page.iter().map(|p| p.p95_s).collect::<Vec<_>>(),
        )
        .nums(
            "page_p99_s",
            &paced.per_page.iter().map(|p| p.p99_s).collect::<Vec<_>>(),
        )
        .nums(
            "page_p999_s",
            &paced.per_page.iter().map(|p| p.p999_s).collect::<Vec<_>>(),
        )
        .int("overload_requests_ok", overload.requests_ok)
        .int("overload_requests_shed", overload.requests_shed)
        .int("overload_requests_retryable", overload.requests_retryable)
        .int(
            "overload_coherence_violations",
            overload.coherence_violations,
        )
        .write();

    if check {
        if failures.is_empty() {
            println!("exp_serve: all checks passed");
        } else {
            eprintln!("exp_serve: {} failure(s):", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
