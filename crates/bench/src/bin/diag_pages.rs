//! Diagnostic: per-page and per-query physical cost breakdown for the
//! social app's page loads (used to verify index selection and to
//! calibrate the cost model; not part of the paper's experiment set).

use genie_social::{build_app, AppConfig, SeedConfig};
use genie_storage::DbConfig;

fn main() {
    let env = build_app(&AppConfig {
        seed: SeedConfig {
            users: 120,
            unique_bookmarks: 150,
            ..SeedConfig::default()
        },
        db: DbConfig {
            buffer_pool_bytes: 640 * 1024,
            ..Default::default()
        },
        strategy: None,
        ..Default::default()
    })
    .unwrap();
    let s = env.app.session();
    let u = 1i64;
    let queries: Vec<(&str, genie_orm::QuerySet)> = vec![
        ("user_by_id", env.app.user_qs(u).unwrap()),
        ("profile", env.app.profile_qs(u).unwrap()),
        ("friends", env.app.friends_qs(u).unwrap()),
        ("pending_inv", env.app.pending_invitations_qs(u).unwrap()),
        ("user_bookmarks", env.app.user_bookmarks_qs(u).unwrap()),
        ("friend_bookmarks", env.app.friend_bookmarks_qs(u).unwrap()),
        ("wall", env.app.wall_qs(u).unwrap()),
        (
            "sent_inv",
            s.objects("FriendshipInvitation")
                .unwrap()
                .filter_eq("from_user_id", u),
        ),
        (
            "wall_by_sender",
            s.objects("WallPost").unwrap().filter_eq("sender_id", u),
        ),
        (
            "friend_rev",
            s.objects("Friendship").unwrap().filter_eq("friend_id", u),
        ),
        (
            "bmi_recent",
            s.objects("BookmarkInstance")
                .unwrap()
                .filter_eq("user_id", u)
                .order_by("-id")
                .limit(3),
        ),
        (
            "user_values",
            s.objects("User")
                .unwrap()
                .filter_eq("id", u)
                .values(&[("users", "username"), ("users", "last_login")]),
        ),
    ];
    for (name, qs) in queries {
        let out = s.all(&qs).unwrap();
        println!(
            "{name:<18} rows_scanned={:<6} probes={:<3} rows={:<4}",
            out.db_cost.rows_scanned,
            out.db_cost.index_probes,
            out.rows.len()
        );
        let (sel, _) = qs.compile();
        if out.db_cost.index_probes == 0 {
            println!("   FULL SCAN: {sel}");
        }
    }
    // counts
    for (name, qs) in [
        ("cnt_pending", env.app.pending_invitations_qs(u).unwrap()),
        (
            "cnt_gm",
            s.objects("GroupMembership")
                .unwrap()
                .filter_eq("user_id", u)
                .filter_eq("group_id", 2i64),
        ),
        (
            "cnt_wall_sender",
            s.objects("WallPost").unwrap().filter_eq("sender_id", u),
        ),
    ] {
        let (_, out) = s.count(&qs).unwrap();
        println!(
            "{name:<18} rows_scanned={:<6} probes={:<3}",
            out.db_cost.rows_scanned, out.db_cost.index_probes
        );
    }
}
