//! Concurrency experiment: real multi-writer throughput scaling.
//!
//! Sweeps writer thread counts over the BatchPost transactional mix
//! (plus a two-row "poke" share that manufactures deadlock cycles) and
//! compares the row-lock engine against the single-global-lock baseline
//! (every transaction serialized on one mutex — the engine's pre-lock
//! behaviour). For each cell it reports wall-clock transaction
//! throughput, the deadlock-abort rate, and the post-run cache/database
//! coherence cross-check, which must find **zero** violations.
//!
//! ```text
//! cargo run --release -p genie-bench --bin exp_concurrency
//! cargo run --release -p genie-bench --bin exp_concurrency -- --threads 1,2,4,8 --txns 300
//! ```

use genie_bench::{write_result, TextTable};
use genie_social::SeedConfig;
use genie_workload::{run_concurrent, ConcurrencyConfig};

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: Vec<usize> = arg_after(&args, "--threads")
        .unwrap_or_else(|| "1,2,4,8".to_owned())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let txns: usize = arg_after(&args, "--txns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);

    println!("Concurrency experiment: multi-writer BatchPost mix");
    println!("(row/table 2PL + wait-for-graph deadlock detection vs one global lock)\n");

    let base = ConcurrencyConfig {
        txns_per_thread: txns,
        posts_per_txn: 4,
        abort_pct: 10,
        poke_pct: 25,
        read_every: 5,
        // ~100us of application-server time between a transaction's
        // statements (the realistic web-stack shape): a global lock
        // serializes that window across every client, row locks overlap
        // it — this is where multi-writer scaling comes from.
        think_us: 100,
        seed: SeedConfig {
            users: 50,
            ..SeedConfig::tiny()
        },
        ..Default::default()
    };

    let mut table = TextTable::new(&[
        "threads",
        "row_lock_txn/s",
        "single_lock_txn/s",
        "speedup",
        "deadlock_aborts",
        "abort_rate_pct",
        "lock_waits",
        "checked",
        "violations",
    ]);
    let mut total_violations = 0u64;
    for &t in &threads {
        let locked = run_concurrent(&ConcurrencyConfig {
            threads: t,
            ..base.clone()
        })
        .expect("row-lock run");
        let serial = run_concurrent(&ConcurrencyConfig {
            threads: t,
            single_lock: true,
            ..base.clone()
        })
        .expect("single-lock run");
        assert_eq!(locked.errors, 0, "row-lock run errored: {locked:?}");
        assert_eq!(serial.errors, 0, "baseline run errored: {serial:?}");
        total_violations += locked.coherence_violations + serial.coherence_violations;
        table.row(vec![
            t.to_string(),
            format!("{:.0}", locked.throughput_txns_per_sec),
            format!("{:.0}", serial.throughput_txns_per_sec),
            format!(
                "{:.2}x",
                locked.throughput_txns_per_sec / serial.throughput_txns_per_sec.max(f64::EPSILON)
            ),
            locked.deadlock_aborts.to_string(),
            format!("{:.1}", 100.0 * locked.abort_rate()),
            locked.lock_waits.to_string(),
            locked.checked_objects.to_string(),
            (locked.coherence_violations + serial.coherence_violations).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(post-run cross-check re-evaluates every touched cached object against the \
         database; violations must be 0)"
    );
    assert_eq!(total_violations, 0, "coherence violations detected");
    write_result("exp_concurrency.csv", &table.to_csv());
}
