//! Concurrency experiment: real multi-writer throughput scaling.
//!
//! Sweeps writer thread counts over the BatchPost transactional mix
//! (plus a two-row "poke" share that manufactures deadlock cycles) and
//! compares the row-lock engine against the single-global-lock baseline
//! (every transaction serialized on one mutex — the engine's pre-lock
//! behaviour). For each cell it reports wall-clock transaction
//! throughput, the deadlock-abort rate, and the post-run cache/database
//! coherence cross-check, which must find **zero** violations.
//!
//! ```text
//! cargo run --release -p genie-bench --bin exp_concurrency
//! cargo run --release -p genie-bench --bin exp_concurrency -- --threads 1,2,4,8 --txns 300
//! ```

use genie_bench::{write_result, BenchJson, TextTable};
use genie_social::SeedConfig;
use genie_workload::{run_concurrent, ConcurrencyConfig};

/// Required disjoint-table speedup over the pre-sharding engine
/// (single statement latch + whole-transaction serialization) at the
/// widest swept thread count when that count reaches 8. Writers on
/// disjoint tables share nothing above the catalog read latch, so the
/// sharded engine overlaps their whole transactions — think time
/// included — while the old engine ran them strictly one at a time.
const DISJOINT_SPEEDUP_TARGET: f64 = 5.0;

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: Vec<usize> = arg_after(&args, "--threads")
        .unwrap_or_else(|| "1,2,4,8".to_owned())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let txns: usize = arg_after(&args, "--txns")
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);

    println!("Concurrency experiment: multi-writer BatchPost mix");
    println!("(row/table 2PL + wait-for-graph deadlock detection vs one global lock)\n");

    let base = ConcurrencyConfig {
        txns_per_thread: txns,
        posts_per_txn: 4,
        abort_pct: 10,
        poke_pct: 25,
        read_every: 5,
        // ~100us of application-server time between a transaction's
        // statements (the realistic web-stack shape): a global lock
        // serializes that window across every client, row locks overlap
        // it — this is where multi-writer scaling comes from.
        think_us: 100,
        seed: SeedConfig {
            users: 50,
            ..SeedConfig::tiny()
        },
        ..Default::default()
    };

    let mut table = TextTable::new(&[
        "threads",
        "row_lock_txn/s",
        "single_lock_txn/s",
        "speedup",
        "deadlock_aborts",
        "abort_rate_pct",
        "lock_waits",
        "checked",
        "violations",
    ]);
    let mut total_violations = 0u64;
    let mut row_lock_tps = Vec::new();
    let mut single_lock_tps = Vec::new();
    for &t in &threads {
        let locked = run_concurrent(&ConcurrencyConfig {
            threads: t,
            ..base.clone()
        })
        .expect("row-lock run");
        let serial = run_concurrent(&ConcurrencyConfig {
            threads: t,
            single_lock: true,
            ..base.clone()
        })
        .expect("single-lock run");
        assert_eq!(locked.errors, 0, "row-lock run errored: {locked:?}");
        assert_eq!(serial.errors, 0, "baseline run errored: {serial:?}");
        total_violations += locked.coherence_violations + serial.coherence_violations;
        row_lock_tps.push(locked.throughput_txns_per_sec);
        single_lock_tps.push(serial.throughput_txns_per_sec);
        table.row(vec![
            t.to_string(),
            format!("{:.0}", locked.throughput_txns_per_sec),
            format!("{:.0}", serial.throughput_txns_per_sec),
            format!(
                "{:.2}x",
                locked.throughput_txns_per_sec / serial.throughput_txns_per_sec.max(f64::EPSILON)
            ),
            locked.deadlock_aborts.to_string(),
            format!("{:.1}", 100.0 * locked.abort_rate()),
            locked.lock_waits.to_string(),
            locked.checked_objects.to_string(),
            (locked.coherence_violations + serial.coherence_violations).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(post-run cross-check re-evaluates every touched cached object against the \
         database; violations must be 0)\n"
    );
    assert_eq!(total_violations, 0, "coherence violations detected");
    write_result("exp_concurrency.csv", &table.to_csv());

    // Disjoint-table mix: each writer owns its own table, so per-table
    // latching lets whole transactions (think time included) overlap.
    // The baseline is the pre-sharding engine shape — one statement
    // latch plus whole-transaction serialization — which serializes
    // every think window across all clients.
    println!("Disjoint-table mix: per-table latching vs the pre-shard single latch");
    let disjoint_base = ConcurrencyConfig {
        txns_per_thread: txns.min(100),
        posts_per_txn: 4,
        think_us: 500,
        disjoint_tables: true,
        seed: SeedConfig {
            users: 20,
            ..SeedConfig::tiny()
        },
        ..Default::default()
    };
    let mut dtable = TextTable::new(&[
        "threads",
        "sharded_txn/s",
        "single_latch_txn/s",
        "speedup",
        "table_latch_waits",
    ]);
    let mut sharded_tps = Vec::new();
    let mut baseline_tps = Vec::new();
    let mut last_speedup = 0.0;
    let mut last_threads = 0usize;
    for &t in &threads {
        let sharded = run_concurrent(&ConcurrencyConfig {
            threads: t,
            ..disjoint_base.clone()
        })
        .expect("sharded disjoint run");
        let serial = run_concurrent(&ConcurrencyConfig {
            threads: t,
            serial_latch: true,
            single_lock: true,
            ..disjoint_base.clone()
        })
        .expect("single-latch disjoint run");
        assert_eq!(sharded.errors, 0, "sharded run errored: {sharded:?}");
        assert_eq!(serial.errors, 0, "single-latch run errored: {serial:?}");
        assert_eq!(
            sharded.latch_table_waits, 0,
            "disjoint writers hit a table latch: {sharded:?}"
        );
        let speedup =
            sharded.throughput_txns_per_sec / serial.throughput_txns_per_sec.max(f64::EPSILON);
        dtable.row(vec![
            t.to_string(),
            format!("{:.0}", sharded.throughput_txns_per_sec),
            format!("{:.0}", serial.throughput_txns_per_sec),
            format!("{speedup:.2}x"),
            sharded.latch_table_waits.to_string(),
        ]);
        sharded_tps.push(sharded.throughput_txns_per_sec);
        baseline_tps.push(serial.throughput_txns_per_sec);
        last_speedup = speedup;
        last_threads = t;
    }
    println!("{}", dtable.render());
    write_result("exp_concurrency_disjoint.csv", &dtable.to_csv());
    if last_threads >= 8 {
        assert!(
            last_speedup >= DISJOINT_SPEEDUP_TARGET,
            "disjoint-table speedup {last_speedup:.2}x at {last_threads} threads below \
             {DISJOINT_SPEEDUP_TARGET:.1}x target"
        );
        println!(
            "disjoint speedup at {last_threads} threads: {last_speedup:.2}x \
             (target {DISJOINT_SPEEDUP_TARGET:.1}x)"
        );
    } else {
        println!(
            "disjoint speedup at {last_threads} threads: {last_speedup:.2}x \
             (gate applies from 8 threads)"
        );
    }

    BenchJson::new("exp_concurrency")
        .ints(
            "threads",
            &threads.iter().map(|&t| t as u64).collect::<Vec<_>>(),
        )
        .int("txns_per_thread", txns as u64)
        .nums("row_lock_txns_per_sec", &row_lock_tps)
        .nums("single_lock_txns_per_sec", &single_lock_tps)
        .nums("disjoint_sharded_txns_per_sec", &sharded_tps)
        .nums("disjoint_single_latch_txns_per_sec", &baseline_tps)
        .num("disjoint_speedup_at_max_threads", last_speedup)
        .write();
}
