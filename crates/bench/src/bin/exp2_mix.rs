//! Experiment 2 (Figure 3a): throughput as the read/write page mix varies.
//!
//! Expected shape (paper): at 0% reads caching is slightly *worse* than
//! NoCache (trigger overhead with nothing to hit); the cached systems'
//! advantage grows with the read fraction, reaching ~8× at 100% reads,
//! where Update and Invalidate converge (nothing gets invalidated).

use genie_bench::{scale_from_args, write_result, BenchJson, TextTable, MODES};
use genie_workload::{run, PageMix, WorkloadConfig};

fn main() {
    let base = scale_from_args();
    println!("Experiment 2: throughput vs percentage of read pages");
    println!("(reproduces Figure 3a)\n");
    let read_pcts = [0u32, 20, 40, 60, 80, 100];
    let mut table = TextTable::new(&["read_pct", "NoCache", "Invalidate", "Update"]);
    let mut tp_by_mode: Vec<Vec<f64>> = vec![Vec::new(); MODES.len()];
    for &read_pct in &read_pcts {
        let mut row = vec![read_pct.to_string()];
        for (m, mode) in MODES.into_iter().enumerate() {
            let r = run(&WorkloadConfig {
                mode,
                mix: PageMix::with_read_percent(read_pct),
                ..base.clone()
            })
            .expect("run");
            row.push(format!("{:.1}", r.throughput_pages_per_sec));
            tp_by_mode[m].push(r.throughput_pages_per_sec);
        }
        table.row(row);
    }
    println!("{}", table.render());
    write_result("fig3a_mix.csv", &table.to_csv());
    let mut json = BenchJson::new("exp2_mix").ints(
        "read_pct",
        &read_pcts.iter().map(|&p| p as u64).collect::<Vec<_>>(),
    );
    for (m, mode) in MODES.into_iter().enumerate() {
        json = json.nums(
            &format!("{}_pages_per_sec", mode.label().to_lowercase()),
            &tp_by_mode[m],
        );
    }
    json.write();
}
