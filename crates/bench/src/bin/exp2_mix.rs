//! Experiment 2 (Figure 3a): throughput as the read/write page mix varies.
//!
//! Expected shape (paper): at 0% reads caching is slightly *worse* than
//! NoCache (trigger overhead with nothing to hit); the cached systems'
//! advantage grows with the read fraction, reaching ~8× at 100% reads,
//! where Update and Invalidate converge (nothing gets invalidated).

use genie_bench::{scale_from_args, write_result, TextTable, MODES};
use genie_workload::{run, PageMix, WorkloadConfig};

fn main() {
    let base = scale_from_args();
    println!("Experiment 2: throughput vs percentage of read pages");
    println!("(reproduces Figure 3a)\n");
    let mut table = TextTable::new(&["read_pct", "NoCache", "Invalidate", "Update"]);
    for read_pct in [0u32, 20, 40, 60, 80, 100] {
        let mut row = vec![read_pct.to_string()];
        for mode in MODES {
            let r = run(&WorkloadConfig {
                mode,
                mix: PageMix::with_read_percent(read_pct),
                ..base.clone()
            })
            .expect("run");
            row.push(format!("{:.1}", r.throughput_pages_per_sec));
        }
        table.row(row);
    }
    println!("{}", table.render());
    write_result("fig3a_mix.csv", &table.to_csv());
}
