//! Ablations of design choices called out in the paper's prose:
//!
//! 1. **Connection reuse in triggers** (§5.3/§5.5 future work): the paper
//!    identifies opening a memcached connection per trigger as the main
//!    write overhead and proposes reusing connections. We model both.
//! 2. **LRU bump on trigger touches** (§4): unmodified memcached
//!    refreshes recency when triggers touch keys, "even though they are
//!    not really being used"; the paper suggests an opt-out policy. We
//!    run both under a small cache where recency decisions matter.
//! 3. **Per-key vs whole-class invalidation** (§2/§3.2): CacheGenie
//!    invalidates only the affected keys; template-based systems
//!    (GlobeCBC-style) invalidate every entry matching the query
//!    template. We approximate the latter by flushing the whole cache on
//!    every write page, and compare hit ratios.

use genie_bench::{scale_from_args, write_result, TextTable};
use genie_workload::{run, CacheMode, WorkloadConfig};

fn main() {
    let base = scale_from_args();
    println!("Ablations of CacheGenie design choices\n");
    let mut table = TextTable::new(&["configuration", "pages/s", "hit_%"]);

    let update = run(&WorkloadConfig {
        mode: CacheMode::Update,
        ..base.clone()
    })
    .expect("run");
    table.row(vec![
        "Update (default)".into(),
        format!("{:.1}", update.throughput_pages_per_sec),
        format!("{:.1}", update.genie_stats.hit_ratio() * 100.0),
    ]);

    let reuse = run(&WorkloadConfig {
        mode: CacheMode::Update,
        reuse_trigger_connections: true,
        ..base.clone()
    })
    .expect("run");
    table.row(vec![
        "Update + reused trigger connections".into(),
        format!("{:.1}", reuse.throughput_pages_per_sec),
        format!("{:.1}", reuse.genie_stats.hit_ratio() * 100.0),
    ]);

    // Small cache: LRU policy for trigger touches matters.
    let small = 24 * 1024;
    let bump = run(&WorkloadConfig {
        mode: CacheMode::Update,
        cache_bytes: small,
        bump_lru_on_trigger: true,
        ..base.clone()
    })
    .expect("run");
    let no_bump = run(&WorkloadConfig {
        mode: CacheMode::Update,
        cache_bytes: small,
        bump_lru_on_trigger: false,
        ..base.clone()
    })
    .expect("run");
    table.row(vec![
        format!("Update, {}KiB cache, triggers bump LRU", small / 1024),
        format!("{:.1}", bump.throughput_pages_per_sec),
        format!("{:.1}", bump.genie_stats.hit_ratio() * 100.0),
    ]);
    table.row(vec![
        format!("Update, {}KiB cache, no trigger bump", small / 1024),
        format!("{:.1}", no_bump.throughput_pages_per_sec),
        format!("{:.1}", no_bump.genie_stats.hit_ratio() * 100.0),
    ]);

    let invalidate = run(&WorkloadConfig {
        mode: CacheMode::Invalidate,
        ..base.clone()
    })
    .expect("run");
    table.row(vec![
        "Invalidate (per-key, CacheGenie)".into(),
        format!("{:.1}", invalidate.throughput_pages_per_sec),
        format!("{:.1}", invalidate.genie_stats.hit_ratio() * 100.0),
    ]);

    println!("{}", table.render());
    println!(
        "connection reuse gain: {:+.1}%  |  no-bump hit delta: {:+.2} pts",
        100.0 * (reuse.throughput_pages_per_sec - update.throughput_pages_per_sec)
            / update.throughput_pages_per_sec,
        100.0 * (no_bump.genie_stats.hit_ratio() - bump.genie_stats.hit_ratio()),
    );
    write_result("ablations.csv", &table.to_csv());
}
