//! Criterion micro-bench: raw engine speed of database point lookups vs
//! cache gets (the real-time counterpart of the §5.3 modelled numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use genie_cache::{CacheCluster, CacheOrigin, ClusterConfig, Payload};
use genie_storage::{Database, Value};
use std::hint::black_box;

fn bench_lookups(c: &mut Criterion) {
    let db = Database::default();
    db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)", &[])
        .unwrap();
    for i in 0..10_000i64 {
        db.execute_sql("INSERT INTO t VALUES ($1, 'value')", &[Value::Int(i)])
            .unwrap();
    }
    let cluster = CacheCluster::new(ClusterConfig::default());
    let cache = cluster.handle(CacheOrigin::Application);
    for i in 0..10_000i64 {
        cache
            .set_payload(
                &format!("t:{i}"),
                &Payload::Rows(vec![genie_storage::row![i, "value"]]),
                None,
            )
            .unwrap();
    }

    let mut group = c.benchmark_group("point_lookup");
    group.bench_function("db_pk_select", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            let out = db
                .execute_sql("SELECT * FROM t WHERE id = $1", &[Value::Int(i)])
                .unwrap();
            black_box(out.result.rows.len())
        })
    });
    group.bench_function("cache_get", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            black_box(cache.get_payload(&format!("t:{i}")).unwrap().is_some())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lookups);
criterion_main!(benches);
