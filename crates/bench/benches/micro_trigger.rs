//! Criterion micro-bench: INSERT cost with 0, 1 no-op, and CacheGenie
//! triggers attached (the engine-level counterpart of §5.3's trigger
//! overhead measurement).

use cachegenie::{CacheGenie, CacheableDef, SortOrder};
use criterion::{criterion_group, criterion_main, Criterion};
use genie_cache::{CacheCluster, ClusterConfig};
use genie_orm::{FieldDef, ModelDef, ModelRegistry};
use genie_storage::{Database, Trigger, TriggerCtx, TriggerEvent, Value};
use std::hint::black_box;
use std::sync::Arc;

fn registry() -> Arc<ModelRegistry> {
    let mut reg = ModelRegistry::new();
    reg.register(
        ModelDef::builder("WallPost", "wall")
            .field(FieldDef::new("user_id", genie_storage::ValueType::Int).indexed())
            .field(FieldDef::new("date_posted", genie_storage::ValueType::Timestamp).indexed())
            .build(),
    )
    .unwrap();
    Arc::new(reg)
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");

    // Plain insert.
    {
        let reg = registry();
        let db = Database::default();
        reg.sync(&db).unwrap();
        let mut i = 0i64;
        group.bench_function("plain", |b| {
            b.iter(|| {
                i += 1;
                black_box(
                    db.execute_sql("INSERT INTO wall VALUES ($1, 1, TS(1))", &[Value::Int(i)])
                        .unwrap()
                        .result
                        .rows_affected,
                )
            })
        });
    }

    // No-op trigger.
    {
        let reg = registry();
        let db = Database::default();
        reg.sync(&db).unwrap();
        db.create_trigger(Trigger::new(
            "noop",
            "wall",
            TriggerEvent::Insert,
            |_: &mut TriggerCtx<'_>| Ok(()),
        ))
        .unwrap();
        let mut i = 0i64;
        group.bench_function("noop_trigger", |b| {
            b.iter(|| {
                i += 1;
                black_box(
                    db.execute_sql("INSERT INTO wall VALUES ($1, 1, TS(1))", &[Value::Int(i)])
                        .unwrap()
                        .result
                        .rows_affected,
                )
            })
        });
    }

    // A real CacheGenie Top-K maintenance trigger with a warm cached list.
    {
        let reg = registry();
        let db = Database::default();
        reg.sync(&db).unwrap();
        let genie = CacheGenie::new(
            db.clone(),
            CacheCluster::new(ClusterConfig::default()),
            Arc::clone(&reg),
            Default::default(),
        );
        genie
            .cacheable(
                CacheableDef::top_k(
                    "latest",
                    "WallPost",
                    "date_posted",
                    SortOrder::Descending,
                    20,
                )
                .where_fields(&["user_id"]),
            )
            .unwrap();
        genie.evaluate("latest", &[Value::Int(1)]).unwrap(); // warm key
        let mut i = 0i64;
        group.bench_function("cachegenie_topk_trigger", |b| {
            b.iter(|| {
                i += 1;
                black_box(
                    db.execute_sql(
                        "INSERT INTO wall VALUES ($1, 1, $2)",
                        &[Value::Int(i), Value::Timestamp(i)],
                    )
                    .unwrap()
                    .result
                    .rows_affected,
                )
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
