//! Criterion micro-bench: cache-layer primitives (get / set / gets+cas /
//! codec round-trip) across cluster sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genie_cache::{CacheCluster, CacheOrigin, ClusterConfig, Payload};
use genie_storage::row;
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let payload = Payload::Rows(vec![
        row![1i64, "user1", "some bio text", 123i64],
        row![2i64, "user2", "another bio", 456i64],
    ]);

    let mut group = c.benchmark_group("cache_ops");
    for servers in [1usize, 4] {
        let cluster = CacheCluster::new(ClusterConfig {
            servers,
            ..Default::default()
        });
        let h = cluster.handle(CacheOrigin::Application);
        for i in 0..1000 {
            h.set_payload(&format!("k{i}"), &payload, None).unwrap();
        }
        group.bench_with_input(BenchmarkId::new("get", servers), &servers, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 13) % 1000;
                black_box(h.get(&format!("k{i}")).is_some())
            })
        });
        group.bench_with_input(BenchmarkId::new("set", servers), &servers, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 13) % 1000;
                h.set_payload(&format!("k{i}"), &payload, None).unwrap();
            })
        });
        group.bench_with_input(BenchmarkId::new("gets_cas", servers), &servers, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 13) % 1000;
                let key = format!("k{i}");
                let (p, token) = h.gets_payload(&key).unwrap().unwrap();
                h.cas_payload(&key, &p, token, None).unwrap();
            })
        });
    }
    group.bench_function("codec_roundtrip", |b| {
        b.iter(|| {
            let enc = payload.encode();
            black_box(Payload::decode(&enc).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
