//! Seed-data generator.
//!
//! Mirrors the paper's §5.1 initial state at a configurable scale: N users
//! with profiles, a pool of unique bookmarks with 1–`max_instances` saves
//! per user, 1–`max_friends` (symmetric) friendships, 1–`max_pending`
//! pending invitations per user, groups with memberships, and a few wall
//! posts. The paper seeds 1 M users / 10 GB; the reproduction defaults to
//! a laptop-scale slice and shrinks the DB buffer pool proportionally so
//! the disk-vs-CPU dynamics survive the scaling (see DESIGN.md).

use crate::app::SocialApp;
use crate::models::invitation_status;
use genie_storage::{Result, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale knobs for the generated dataset.
#[derive(Debug, Clone)]
pub struct SeedConfig {
    /// Number of users (the paper: 1,000,000).
    pub users: usize,
    /// Unique bookmark URLs (the paper: 1,000).
    pub unique_bookmarks: usize,
    /// Saved instances per user, uniform in `1..=max` (paper: 1–20).
    pub max_instances_per_user: usize,
    /// Friends per user, uniform in `1..=max` (paper: 1–50).
    pub max_friends: usize,
    /// Pending invitations per user, uniform in `1..=max` (paper: 1–100).
    pub max_pending_invitations: usize,
    /// Number of interest groups.
    pub groups: usize,
    /// Groups joined per user, uniform in `0..=max`.
    pub max_groups_per_user: usize,
    /// Wall posts per user, uniform in `0..=max`.
    pub max_wall_posts_per_user: usize,
    /// RNG seed for reproducibility.
    pub rng_seed: u64,
}

impl Default for SeedConfig {
    fn default() -> Self {
        SeedConfig {
            users: 300,
            unique_bookmarks: 100,
            max_instances_per_user: 6,
            max_friends: 8,
            max_pending_invitations: 5,
            groups: 20,
            max_groups_per_user: 3,
            max_wall_posts_per_user: 5,
            rng_seed: 42,
        }
    }
}

impl SeedConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        SeedConfig {
            users: 20,
            unique_bookmarks: 10,
            max_instances_per_user: 3,
            max_friends: 4,
            max_pending_invitations: 3,
            groups: 4,
            max_groups_per_user: 2,
            max_wall_posts_per_user: 3,
            rng_seed: 7,
        }
    }
}

/// What the seeder created.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedStats {
    /// Users created.
    pub users: usize,
    /// Total rows inserted across all tables.
    pub rows: usize,
}

/// Populates the database through the ORM. Run *before* declaring cached
/// objects so seeding does not pay trigger costs (as the paper seeds
/// before measuring).
///
/// # Errors
///
/// Database errors (the generator itself never produces constraint
/// violations).
pub fn seed(app: &SocialApp, config: &SeedConfig) -> Result<SeedStats> {
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let session = app.session();
    let mut rows = 0usize;

    // Users + profiles.
    for i in 1..=config.users {
        let ts = app.next_ts();
        session.create(
            "User",
            &[
                ("username", format!("user{i}").into()),
                ("date_joined", Value::Timestamp(ts)),
                ("last_login", Value::Timestamp(ts)),
            ],
        )?;
        session.create(
            "Profile",
            &[
                ("user_id", (i as i64).into()),
                ("name", format!("User {i}").into()),
                ("about", format!("bio of user {i}").into()),
                ("location", format!("city{}", i % 50).into()),
                ("website", format!("https://example.org/u/{i}").into()),
            ],
        )?;
        rows += 2;
    }

    // Unique bookmarks.
    for b in 1..=config.unique_bookmarks {
        let ts = app.next_ts();
        session.create(
            "Bookmark",
            &[
                ("url", format!("http://bookmark.example/{b}").into()),
                ("description", format!("bookmark {b}").into()),
                ("added", Value::Timestamp(ts)),
            ],
        )?;
        rows += 1;
    }

    // Per-user saves.
    for u in 1..=config.users as i64 {
        let n = rng.gen_range(1..=config.max_instances_per_user.max(1));
        for _ in 0..n {
            let b = rng.gen_range(1..=config.unique_bookmarks.max(1)) as i64;
            let ts = app.next_ts();
            session.create(
                "BookmarkInstance",
                &[
                    ("bookmark_id", b.into()),
                    ("user_id", u.into()),
                    ("description", "seeded".into()),
                    ("saved", Value::Timestamp(ts)),
                ],
            )?;
            rows += 1;
        }
    }

    // Symmetric friendships (sampled without self-loops; duplicates are
    // harmless for the workload and mirror follow-style data).
    for u in 1..=config.users as i64 {
        let n = rng.gen_range(1..=config.max_friends.max(1));
        for _ in 0..n {
            let f = rng.gen_range(1..=config.users as i64);
            if f == u {
                continue;
            }
            let ts = app.next_ts();
            session.create(
                "Friendship",
                &[
                    ("user_id", u.into()),
                    ("friend_id", f.into()),
                    ("added", Value::Timestamp(ts)),
                ],
            )?;
            session.create(
                "Friendship",
                &[
                    ("user_id", f.into()),
                    ("friend_id", u.into()),
                    ("added", Value::Timestamp(ts)),
                ],
            )?;
            rows += 2;
        }
    }

    // Pending invitations.
    for u in 1..=config.users as i64 {
        let n = rng.gen_range(1..=config.max_pending_invitations.max(1));
        for _ in 0..n {
            let from = rng.gen_range(1..=config.users as i64);
            if from == u {
                continue;
            }
            let ts = app.next_ts();
            session.create(
                "FriendshipInvitation",
                &[
                    ("from_user_id", from.into()),
                    ("to_user_id", u.into()),
                    ("status", invitation_status::PENDING.into()),
                    ("sent", Value::Timestamp(ts)),
                ],
            )?;
            rows += 1;
        }
    }

    // Groups + memberships.
    for g in 1..=config.groups {
        let ts = app.next_ts();
        session.create(
            "Group",
            &[
                ("title", format!("group {g}").into()),
                ("created", Value::Timestamp(ts)),
            ],
        )?;
        rows += 1;
    }
    if config.groups > 0 {
        for u in 1..=config.users as i64 {
            let n = rng.gen_range(0..=config.max_groups_per_user);
            for _ in 0..n {
                let g = rng.gen_range(1..=config.groups as i64);
                let ts = app.next_ts();
                session.create(
                    "GroupMembership",
                    &[
                        ("user_id", u.into()),
                        ("group_id", g.into()),
                        ("joined", Value::Timestamp(ts)),
                    ],
                )?;
                rows += 1;
            }
        }
    }

    // Wall posts.
    for u in 1..=config.users as i64 {
        let n = rng.gen_range(0..=config.max_wall_posts_per_user);
        for _ in 0..n {
            let sender = rng.gen_range(1..=config.users as i64);
            let ts = app.next_ts();
            session.create(
                "WallPost",
                &[
                    ("user_id", u.into()),
                    ("sender_id", sender.into()),
                    ("content", format!("hello from {sender}").into()),
                    ("date_posted", Value::Timestamp(ts)),
                ],
            )?;
            rows += 1;
        }
    }

    Ok(SeedStats {
        users: config.users,
        rows,
    })
}
