//! Page-load actions of the social application.
//!
//! The paper's workload exercises four user actions — **LookupBM** (own
//! bookmarks), **LookupFBM** (friends' bookmarks), **CreateBM** (save a
//! bookmark), **AcceptFR** (accept a friend invitation) — plus Login and
//! Logout pages. Each action issues the realistic mix of queries a real
//! page render does (page chrome: profile, friend count, pending
//! invitations; then action-specific queries), so read pages still issue
//! many queries and write pages issue several reads around their writes.
//!
//! Every query goes through the ORM session, where CacheGenie's
//! interceptor (when installed) serves the cacheable ones.

use crate::models::invitation_status;
use genie_orm::{OrmSession, QuerySet, ReadOutcome, WriteOutcome};
use genie_storage::{CostReport, Result, Value};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Aggregated effects of rendering one page.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageStats {
    /// Queries issued (reads + writes).
    pub queries: u64,
    /// Reads answered by the cache.
    pub cache_hit_queries: u64,
    /// Reads that consulted the cache at all (cacheable queries).
    pub intercepted_queries: u64,
    /// Cache operations performed by the read path.
    pub cache_ops: u64,
    /// Write statements executed.
    pub writes: u64,
    /// Total physical database cost (including trigger work).
    pub db_cost: CostReport,
}

impl PageStats {
    fn read(&mut self, out: &ReadOutcome) {
        self.queries += 1;
        self.cache_ops += out.cache_ops;
        if out.cache_ops > 0 {
            self.intercepted_queries += 1;
        }
        if out.from_cache {
            self.cache_hit_queries += 1;
        }
        self.db_cost += out.db_cost;
    }

    fn write(&mut self, out: &WriteOutcome) {
        self.queries += 1;
        self.writes += 1;
        self.db_cost += out.db_cost;
    }

    /// Merges another page's stats (used by session aggregation).
    pub fn merge(&mut self, other: &PageStats) {
        self.queries += other.queries;
        self.cache_hit_queries += other.cache_hit_queries;
        self.intercepted_queries += other.intercepted_queries;
        self.cache_ops += other.cache_ops;
        self.writes += other.writes;
        self.db_cost += other.db_cost;
    }
}

/// The application facade: one instance per deployment, cheap to clone.
#[derive(Clone)]
pub struct SocialApp {
    session: OrmSession,
    /// Logical timestamp source for writes when the caller does not
    /// provide one (monotone; no wall clock).
    clock: Arc<AtomicI64>,
}

impl std::fmt::Debug for SocialApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocialApp").finish()
    }
}

impl SocialApp {
    /// Wraps an ORM session whose registry came from
    /// [`crate::models::build_registry`].
    pub fn new(session: OrmSession) -> Self {
        SocialApp {
            session,
            clock: Arc::new(AtomicI64::new(1_000_000)),
        }
    }

    /// The underlying session.
    pub fn session(&self) -> &OrmSession {
        &self.session
    }

    /// Next logical timestamp.
    pub fn next_ts(&self) -> i64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    // ---- query-set builders (shapes must match the cached objects) ----

    fn qs(&self, model: &str) -> Result<QuerySet> {
        self.session.objects(model)
    }

    /// `user_by_id` feature shape.
    pub fn user_qs(&self, user: i64) -> Result<QuerySet> {
        Ok(self.qs("User")?.filter_eq("id", user))
    }

    /// `profile_by_user` feature shape.
    pub fn profile_qs(&self, user: i64) -> Result<QuerySet> {
        Ok(self.qs("Profile")?.filter_eq("user_id", user))
    }

    /// `friends_of_user` feature shape.
    pub fn friends_qs(&self, user: i64) -> Result<QuerySet> {
        Ok(self.qs("Friendship")?.filter_eq("user_id", user))
    }

    /// `pending_invitations` feature shape.
    pub fn pending_invitations_qs(&self, user: i64) -> Result<QuerySet> {
        Ok(self
            .qs("FriendshipInvitation")?
            .filter_eq("to_user_id", user)
            .filter_eq("status", invitation_status::PENDING))
    }

    /// `user_bookmarks` link shape.
    pub fn user_bookmarks_qs(&self, user: i64) -> Result<QuerySet> {
        let bookmark = self.session.registry().model("Bookmark")?.clone();
        Ok(self
            .qs("BookmarkInstance")?
            .join_on(&bookmark, "bookmark_id", "id")
            .filter_eq("user_id", user))
    }

    /// `friend_bookmarks` link shape (join on a non-PK column pair).
    pub fn friend_bookmarks_qs(&self, user: i64) -> Result<QuerySet> {
        let bmi = self.session.registry().model("BookmarkInstance")?.clone();
        Ok(self
            .qs("Friendship")?
            .join_on(&bmi, "friend_id", "user_id")
            .filter_eq("user_id", user))
    }

    /// `latest_wall_posts` top-K shape.
    pub fn wall_qs(&self, user: i64) -> Result<QuerySet> {
        Ok(self
            .qs("WallPost")?
            .filter_eq("user_id", user)
            .order_by("-date_posted")
            .limit(20))
    }

    /// `user_groups` link shape.
    pub fn user_groups_qs(&self, user: i64) -> Result<QuerySet> {
        let group = self.session.registry().model("Group")?.clone();
        Ok(self
            .qs("GroupMembership")?
            .join_on(&group, "group_id", "id")
            .filter_eq("user_id", user))
    }

    // ---- page chrome shared by every page ----

    /// The queries every rendered page issues (current user, profile,
    /// friend count, pending-invitation badge), plus the page's share of
    /// queries CacheGenie does *not* cache. The paper stresses that such
    /// uncached queries (framework internals, one-off shapes) still hit
    /// the database and keep it the bottleneck — they are why the cached
    /// systems win by 2–2.5×, not by the raw memcached-vs-DB factor.
    fn chrome(&self, user: i64, stats: &mut PageStats) -> Result<()> {
        stats.read(&self.session.all(&self.user_qs(user)?)?);
        stats.read(&self.session.all(&self.profile_qs(user)?)?);
        let (_, out) = self.session.count(&self.friends_qs(user)?)?;
        stats.read(&out);
        let (_, out) = self.session.count(&self.pending_invitations_qs(user)?)?;
        stats.read(&out);
        self.uncached_chrome(user, stats)
    }

    /// Framework-style queries with shapes no cached object matches:
    /// sent invitations, outgoing wall posts, a per-(user, group)
    /// membership check, and a recent-activity lookup.
    fn uncached_chrome(&self, user: i64, stats: &mut PageStats) -> Result<()> {
        stats.read(
            &self.session.all(
                &self
                    .qs("FriendshipInvitation")?
                    .filter_eq("from_user_id", user),
            )?,
        );
        stats.read(
            &self
                .session
                .all(&self.qs("WallPost")?.filter_eq("sender_id", user))?,
        );
        let (_, out) = self.session.count(
            &self
                .qs("GroupMembership")?
                .filter_eq("user_id", user)
                .filter_eq("group_id", 1 + user % 3),
        )?;
        stats.read(&out);
        stats.read(
            &self.session.all(
                &self
                    .qs("BookmarkInstance")?
                    .filter_eq("user_id", user)
                    .order_by("-id")
                    .limit(3),
            )?,
        );
        // Reverse-direction friendship check (keyed on friend_id, which no
        // cached object covers).
        stats.read(
            &self
                .session
                .all(&self.qs("Friendship")?.filter_eq("friend_id", user))?,
        );
        // "People you may know" sidebar: a suggested peer's outgoing posts
        // and activity volume.
        let peer = user % 17 + 1;
        stats.read(
            &self
                .session
                .all(&self.qs("WallPost")?.filter_eq("sender_id", peer))?,
        );
        let (_, out) = self
            .session
            .count(&self.qs("WallPost")?.filter_eq("sender_id", peer))?;
        stats.read(&out);
        // Django-middleware-style per-request queries whose projections
        // differ from any cached template (projection changes the shape).
        stats.read(
            &self.session.all(
                &self
                    .qs("User")?
                    .filter_eq("id", user)
                    .values(&[("users", "username"), ("users", "last_login")]),
            )?,
        );
        stats.read(
            &self.session.all(
                &self
                    .qs("Profile")?
                    .filter_eq("user_id", user)
                    .values(&[("profiles", "location"), ("profiles", "website")]),
            )?,
        );
        Ok(())
    }

    // ---- page loads ----

    /// Login page: chrome, a `last_login` write, and dashboard queries.
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn login(&self, user: i64) -> Result<PageStats> {
        let mut stats = PageStats::default();
        self.chrome(user, &mut stats)?;
        let ts = self.next_ts();
        stats.write(&self.session.update_by_id(
            "User",
            user,
            &[("last_login", Value::Timestamp(ts))],
        )?);
        let (_, out) = self
            .session
            .count(&self.qs("BookmarkInstance")?.filter_eq("user_id", user))?;
        stats.read(&out);
        let (_, out) = self
            .session
            .count(&self.qs("WallPost")?.filter_eq("user_id", user))?;
        stats.read(&out);
        Ok(stats)
    }

    /// Logout page: lightweight.
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn logout(&self, user: i64) -> Result<PageStats> {
        let mut stats = PageStats::default();
        stats.read(&self.session.all(&self.user_qs(user)?)?);
        let (_, out) = self.session.count(&self.pending_invitations_qs(user)?)?;
        stats.read(&out);
        Ok(stats)
    }

    /// LookupBM: the user's own bookmarks plus per-bookmark save counts.
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn lookup_bm(&self, user: i64) -> Result<PageStats> {
        let mut stats = PageStats::default();
        self.chrome(user, &mut stats)?;
        let list = self.session.all(&self.user_bookmarks_qs(user)?)?;
        let bookmark_ids: Vec<i64> = list
            .rows
            .iter()
            .filter_map(|r| r.get("bookmark_id").as_int())
            .take(5)
            .collect();
        stats.read(&list);
        let (_, out) = self
            .session
            .count(&self.qs("BookmarkInstance")?.filter_eq("user_id", user))?;
        stats.read(&out);
        for b in bookmark_ids {
            let (_, out) = self
                .session
                .count(&self.qs("BookmarkInstance")?.filter_eq("bookmark_id", b))?;
            stats.read(&out);
        }
        Ok(stats)
    }

    /// LookupFBM: bookmarks created by the user's friends — the paper's
    /// most expensive read page (a join).
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn lookup_fbm(&self, user: i64) -> Result<PageStats> {
        let mut stats = PageStats::default();
        self.chrome(user, &mut stats)?;
        let friends = self.session.all(&self.friends_qs(user)?)?;
        let friend_ids: Vec<i64> = friends
            .rows
            .iter()
            .filter_map(|r| r.get("friend_id").as_int())
            .take(5)
            .collect();
        stats.read(&friends);
        let fbm = self.session.all(&self.friend_bookmarks_qs(user)?)?;
        stats.read(&fbm);
        for f in friend_ids {
            stats.read(&self.session.all(&self.profile_qs(f)?)?);
            let (_, out) = self
                .session
                .count(&self.qs("BookmarkInstance")?.filter_eq("user_id", f))?;
            stats.read(&out);
        }
        Ok(stats)
    }

    /// CreateBM: save a bookmark (creating the unique [`crate::models`]
    /// `Bookmark` row if this URL is new), then re-render the list.
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn create_bm(&self, user: i64, url: &str) -> Result<PageStats> {
        let mut stats = PageStats::default();
        self.chrome(user, &mut stats)?;
        // Find-or-create the unique bookmark (not a cached pattern;
        // passes through).
        let existing = self
            .session
            .all(&self.qs("Bookmark")?.filter_eq("url", url))?;
        let bookmark_id = match existing.rows.first() {
            Some(row) => {
                stats.read(&existing);
                row.id()
            }
            None => {
                stats.read(&existing);
                let ts = self.next_ts();
                let w = self.session.create(
                    "Bookmark",
                    &[
                        ("url", url.into()),
                        ("description", format!("about {url}").into()),
                        ("added", Value::Timestamp(ts)),
                    ],
                )?;
                let id = w.new_id.expect("create returns id");
                stats.write(&w);
                id
            }
        };
        let ts = self.next_ts();
        let w = self.session.create(
            "BookmarkInstance",
            &[
                ("bookmark_id", bookmark_id.into()),
                ("user_id", user.into()),
                ("description", "saved".into()),
                ("saved", Value::Timestamp(ts)),
            ],
        )?;
        stats.write(&w);
        // Re-render: the user must see her own write immediately.
        stats.read(&self.session.all(&self.user_bookmarks_qs(user)?)?);
        let (_, out) = self
            .session
            .count(&self.qs("BookmarkInstance")?.filter_eq("user_id", user))?;
        stats.read(&out);
        Ok(stats)
    }

    /// AcceptFR: accept the oldest pending invitation (or, with none
    /// pending, send one to `fallback_peer` — the page stays a write).
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn accept_fr(&self, user: i64, fallback_peer: i64) -> Result<PageStats> {
        let mut stats = PageStats::default();
        self.chrome(user, &mut stats)?;
        let pending = self.session.all(&self.pending_invitations_qs(user)?)?;
        let first = pending
            .rows
            .first()
            .map(|r| (r.id(), r.get("from_user_id").as_int().expect("fk is int")));
        stats.read(&pending);
        match first {
            Some((invitation_id, from_user)) => {
                stats.write(&self.session.update_by_id(
                    "FriendshipInvitation",
                    invitation_id,
                    &[("status", invitation_status::ACCEPTED.into())],
                )?);
                let ts = self.next_ts();
                // Pinax stores friendships symmetrically.
                stats.write(&self.session.create(
                    "Friendship",
                    &[
                        ("user_id", user.into()),
                        ("friend_id", from_user.into()),
                        ("added", Value::Timestamp(ts)),
                    ],
                )?);
                stats.write(&self.session.create(
                    "Friendship",
                    &[
                        ("user_id", from_user.into()),
                        ("friend_id", user.into()),
                        ("added", Value::Timestamp(ts)),
                    ],
                )?);
            }
            None => {
                let to = if fallback_peer == user {
                    fallback_peer % 7 + 1
                } else {
                    fallback_peer
                };
                let ts = self.next_ts();
                stats.write(&self.session.create(
                    "FriendshipInvitation",
                    &[
                        ("from_user_id", user.into()),
                        ("to_user_id", to.into()),
                        ("status", invitation_status::PENDING.into()),
                        ("sent", Value::Timestamp(ts)),
                    ],
                )?);
            }
        }
        // Re-render the friends box.
        stats.read(&self.session.all(&self.friends_qs(user)?)?);
        let (_, out) = self.session.count(&self.friends_qs(user)?)?;
        stats.read(&out);
        Ok(stats)
    }

    /// Wall page: the paper's §3.2 Top-K example (latest 20 posts).
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn view_wall(&self, user: i64) -> Result<PageStats> {
        let mut stats = PageStats::default();
        self.chrome(user, &mut stats)?;
        stats.read(&self.session.all(&self.wall_qs(user)?)?);
        let (_, out) = self
            .session
            .count(&self.qs("WallPost")?.filter_eq("user_id", user))?;
        stats.read(&out);
        Ok(stats)
    }

    /// Posting on a wall.
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn post_wall(&self, wall_owner: i64, sender: i64, content: &str) -> Result<PageStats> {
        let mut stats = PageStats::default();
        let ts = self.next_ts();
        stats.write(&self.session.create(
            "WallPost",
            &[
                ("user_id", wall_owner.into()),
                ("sender_id", sender.into()),
                ("content", content.into()),
                ("date_posted", Value::Timestamp(ts)),
            ],
        )?);
        stats.read(&self.session.all(&self.wall_qs(wall_owner)?)?);
        Ok(stats)
    }

    /// Posting a burst of wall messages inside ONE database transaction
    /// (BEGIN … COMMIT / ROLLBACK). The posts' cache effects buffer in
    /// the commit-time effect pipeline: a commit publishes them as one
    /// coalesced batch (same wall key → one cache op), a rollback
    /// publishes nothing at all — CacheGenie's transactional guarantee.
    ///
    /// # Errors
    ///
    /// Database errors (the transaction is rolled back first).
    pub fn post_wall_batch(
        &self,
        wall_owner: i64,
        sender: i64,
        posts: usize,
        abort: bool,
    ) -> Result<PageStats> {
        self.post_wall_batch_paced(wall_owner, sender, posts, abort, &|| {})
    }

    /// [`SocialApp::post_wall_batch`] with a pacing callback invoked
    /// before each statement inside the transaction — the concurrency
    /// driver uses it to model the application-server round-trip time a
    /// real web stack spends between a transaction's statements (the
    /// window row-level locking overlaps and a global lock serializes).
    ///
    /// # Errors
    ///
    /// Same as [`SocialApp::post_wall_batch`].
    pub fn post_wall_batch_paced(
        &self,
        wall_owner: i64,
        sender: i64,
        posts: usize,
        abort: bool,
        pace: &dyn Fn(),
    ) -> Result<PageStats> {
        let mut stats = PageStats::default();
        let db = self.session.database();
        db.execute_sql("BEGIN", &[])?;
        for i in 0..posts.max(1) {
            pace();
            let ts = self.next_ts();
            let created = self.session.create(
                "WallPost",
                &[
                    ("user_id", wall_owner.into()),
                    ("sender_id", sender.into()),
                    ("content", format!("batch {i} from {sender}").into()),
                    ("date_posted", Value::Timestamp(ts)),
                ],
            );
            match created {
                Ok(w) => stats.write(&w),
                Err(e) => {
                    db.execute_sql("ROLLBACK", &[])?;
                    return Err(e);
                }
            }
        }
        if abort {
            db.execute_sql("ROLLBACK", &[])?;
        } else {
            // Commit-time work (coalesced trigger firing, the group WAL
            // append) is real page cost. A commit-time abort (strict-mode
            // lock timeout, failed trigger) already rolled back.
            let out = db.execute_sql("COMMIT", &[])?;
            stats.db_cost += out.cost;
        }
        // Re-render the wall: after COMMIT the burst is visible, after
        // ROLLBACK the pre-transaction wall is.
        stats.read(&self.session.all(&self.wall_qs(wall_owner)?)?);
        Ok(stats)
    }

    /// Group directory page.
    ///
    /// # Errors
    ///
    /// Database errors.
    pub fn view_groups(&self, user: i64) -> Result<PageStats> {
        let mut stats = PageStats::default();
        self.chrome(user, &mut stats)?;
        let memberships = self.session.all(&self.user_groups_qs(user)?)?;
        let group_ids: Vec<i64> = memberships
            .rows
            .iter()
            .filter_map(|r| r.get("group_id").as_int())
            .take(5)
            .collect();
        stats.read(&memberships);
        for g in group_ids {
            let (_, out) = self
                .session
                .count(&self.qs("GroupMembership")?.filter_eq("group_id", g))?;
            stats.read(&out);
        }
        Ok(stats)
    }
}
