//! The cached-object definitions for the social app — the reproduction of
//! the paper's §5.2: porting Pinax to CacheGenie took *14 cached object
//! declarations* (and nothing else), from which CacheGenie generated all
//! triggers.

use cachegenie::{CacheGenie, CacheableDef, ConsistencyStrategy, SortOrder};
use genie_storage::Result;

/// Declares all 14 cached objects with the given consistency strategy,
/// returning how many were declared.
///
/// # Errors
///
/// Propagates definition/compilation errors.
pub fn define_cached_objects(genie: &CacheGenie, strategy: ConsistencyStrategy) -> Result<usize> {
    let defs = cached_object_defs(strategy);
    let n = defs.len();
    for def in defs {
        genie.cacheable(def)?;
    }
    Ok(n)
}

/// The 14 definitions (see the module docs). Exposed so benches can count
/// and inspect them.
pub fn cached_object_defs(strategy: ConsistencyStrategy) -> Vec<CacheableDef> {
    let s = strategy;
    vec![
        // --- profiles app ---
        CacheableDef::feature("user_by_id", "User")
            .where_fields(&["id"])
            .strategy(s),
        CacheableDef::feature("profile_by_user", "Profile")
            .where_fields(&["user_id"])
            .strategy(s),
        // --- friends app ---
        CacheableDef::feature("friends_of_user", "Friendship")
            .where_fields(&["user_id"])
            .strategy(s),
        CacheableDef::count("friend_count", "Friendship")
            .where_fields(&["user_id"])
            .strategy(s),
        CacheableDef::feature("pending_invitations", "FriendshipInvitation")
            .where_fields(&["to_user_id", "status"])
            .strategy(s),
        CacheableDef::count("pending_invitation_count", "FriendshipInvitation")
            .where_fields(&["to_user_id", "status"])
            .strategy(s),
        // --- bookmarks app ---
        CacheableDef::link(
            "user_bookmarks",
            "BookmarkInstance",
            "Bookmark",
            "bookmark_id",
            "id",
        )
        .where_fields(&["user_id"])
        .strategy(s),
        CacheableDef::count("user_bookmark_count", "BookmarkInstance")
            .where_fields(&["user_id"])
            .strategy(s),
        CacheableDef::count("bookmark_save_count", "BookmarkInstance")
            .where_fields(&["bookmark_id"])
            .strategy(s),
        CacheableDef::link(
            "friend_bookmarks",
            "Friendship",
            "BookmarkInstance",
            "friend_id",
            "user_id",
        )
        .where_fields(&["user_id"])
        .strategy(s),
        // --- wall (the paper's §3.2 running example) ---
        CacheableDef::top_k(
            "latest_wall_posts",
            "WallPost",
            "date_posted",
            SortOrder::Descending,
            20,
        )
        .where_fields(&["user_id"])
        .strategy(s),
        CacheableDef::count("wall_post_count", "WallPost")
            .where_fields(&["user_id"])
            .strategy(s),
        // --- groups ---
        CacheableDef::link("user_groups", "GroupMembership", "Group", "group_id", "id")
            .where_fields(&["user_id"])
            .strategy(s),
        CacheableDef::count("group_member_count", "GroupMembership")
            .where_fields(&["group_id"])
            .strategy(s),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::build_registry;
    use genie_cache::{CacheCluster, ClusterConfig};
    use genie_storage::Database;
    use std::sync::Arc;

    #[test]
    fn fourteen_objects_as_in_the_paper() {
        assert_eq!(
            cached_object_defs(ConsistencyStrategy::UpdateInPlace).len(),
            14
        );
    }

    #[test]
    fn all_definitions_compile_and_install() {
        let reg = Arc::new(build_registry().unwrap());
        let db = Database::default();
        reg.sync(&db).unwrap();
        let genie = CacheGenie::new(
            db,
            CacheCluster::new(ClusterConfig::default()),
            reg,
            Default::default(),
        );
        let n = define_cached_objects(&genie, ConsistencyStrategy::UpdateInPlace).unwrap();
        assert_eq!(n, 14);
        assert_eq!(genie.object_count(), 14);
        // 11 single-table objects x 3 triggers + 3 link objects x 6 = 51
        // (the paper's port produced 48 for its object set).
        assert_eq!(genie.trigger_count(), 11 * 3 + 3 * 6);
        // The paper reports ~1720 generated lines for its 48 triggers.
        let lines = genie.generated_trigger_lines();
        assert!(
            (800..6000).contains(&lines),
            "generated trigger code should be in the paper's ballpark, got {lines}"
        );
    }
}
