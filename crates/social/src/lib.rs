//! # genie-social
//!
//! The evaluation application of the CacheGenie reproduction: a
//! Pinax-style social network (profiles, friends, bookmarks, wall,
//! groups) built on [`genie_orm`], with the paper's four workload actions
//! (LookupBM / LookupFBM / CreateBM / AcceptFR) as realistic multi-query
//! page loads, the §5.2 set of **14 cached-object definitions**, and a
//! scale-configurable seed-data generator.
//!
//! # Example
//!
//! ```
//! use genie_social::{build_app, AppConfig};
//! use cachegenie::ConsistencyStrategy;
//!
//! # fn main() -> Result<(), genie_storage::StorageError> {
//! let env = build_app(&AppConfig {
//!     seed: genie_social::SeedConfig::tiny(),
//!     strategy: Some(ConsistencyStrategy::UpdateInPlace),
//!     ..Default::default()
//! })?;
//! let stats = env.app.lookup_bm(1)?;
//! assert!(stats.queries >= 5);
//! # Ok(())
//! # }
//! ```

pub mod app;
pub mod cached_objects;
pub mod models;
pub mod seed;

pub use app::{PageStats, SocialApp};
pub use cached_objects::{cached_object_defs, define_cached_objects};
pub use models::{build_registry, invitation_status};
pub use seed::{seed, SeedConfig, SeedStats};

use cachegenie::{CacheGenie, ConsistencyStrategy, GenieConfig};
use genie_cache::{CacheCluster, ClusterConfig};
use genie_orm::OrmSession;
use genie_storage::{Database, DbConfig, Result};
use std::sync::Arc;

/// Everything a deployment of the social app consists of.
#[derive(Debug, Clone)]
pub struct AppEnv {
    /// The application facade.
    pub app: SocialApp,
    /// The underlying database.
    pub db: Database,
    /// The cache cluster.
    pub cluster: CacheCluster,
    /// The middleware (present even in NoCache mode, with no objects).
    pub genie: CacheGenie,
    /// How many cached objects were declared.
    pub cached_objects: usize,
    /// What the seeder created.
    pub seeded: SeedStats,
}

/// One-call deployment configuration.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Database tuning (buffer pool size drives the disk/CPU dynamics).
    pub db: DbConfig,
    /// Cache cluster shape and capacity.
    pub cluster: ClusterConfig,
    /// CacheGenie tuning.
    pub genie: GenieConfig,
    /// Seed-data scale.
    pub seed: SeedConfig,
    /// `None` = NoCache (no cached objects, no interception);
    /// `Some(strategy)` = declare the 14 objects with that strategy.
    pub strategy: Option<ConsistencyStrategy>,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            db: DbConfig::default(),
            cluster: ClusterConfig::default(),
            genie: GenieConfig::default(),
            seed: SeedConfig::default(),
            strategy: Some(ConsistencyStrategy::UpdateInPlace),
        }
    }
}

/// Builds, seeds, and wires a complete deployment: database + registry
/// sync, seed data, cache cluster, CacheGenie with the 14 cached objects
/// (unless NoCache), interceptor installation.
///
/// # Errors
///
/// Propagates schema, seeding, and declaration errors.
pub fn build_app(config: &AppConfig) -> Result<AppEnv> {
    build_app_on(Database::new(config.db.clone()), config)
}

/// Like [`build_app`], but wires the deployment around an existing
/// database — in particular one reopened with
/// [`Database::open_with_recovery`] after a crash. Schema sync is
/// idempotent over the recovered catalog, and seeding runs only when the
/// `users` table is empty: recovered data is never re-seeded on top of
/// itself.
///
/// # Errors
///
/// Propagates schema, seeding, and declaration errors.
pub fn build_app_on(db: Database, config: &AppConfig) -> Result<AppEnv> {
    let registry = Arc::new(models::build_registry()?);
    registry.sync(&db)?;
    let session = OrmSession::new(db.clone(), Arc::clone(&registry));
    let app = SocialApp::new(session.clone());
    // Seed before declaring cached objects so the bulk load pays no
    // trigger costs (the paper seeds offline, then measures). A database
    // that already carries data (a recovered one) keeps what it has.
    let seeded = if db.row_count("users")? == 0 {
        seed::seed(&app, &config.seed)?
    } else {
        SeedStats {
            users: db.row_count("users")?,
            rows: 0,
        }
    };
    let cluster = CacheCluster::new(config.cluster.clone());
    let genie = CacheGenie::new(
        db.clone(),
        cluster.clone(),
        Arc::clone(&registry),
        config.genie.clone(),
    );
    let cached_objects = match config.strategy {
        Some(strategy) => {
            let n = cached_objects::define_cached_objects(&genie, strategy)?;
            genie.install(&session);
            n
        }
        None => 0,
    };
    Ok(AppEnv {
        app,
        db,
        cluster,
        genie,
        cached_objects,
        seeded,
    })
}
