//! The social-networking data model (Pinax stand-in).
//!
//! Mirrors the three Pinax apps the paper ports — profiles, friends,
//! bookmarks — plus the wall and groups used in its running examples:
//! `User`, `Profile`, `Friendship`, `FriendshipInvitation`, `Bookmark` /
//! `BookmarkInstance` (Pinax splits a unique URL from per-user saves),
//! `WallPost`, `Group`, `GroupMembership`.

use genie_orm::{FieldDef, ModelDef, ModelRegistry};
use genie_storage::{Result, ValueType};

/// Invitation state machine values (Pinax uses single-char codes).
pub mod invitation_status {
    /// Awaiting a response.
    pub const PENDING: i64 = 0;
    /// Accepted; a `Friendship` pair exists.
    pub const ACCEPTED: i64 = 1;
    /// Declined.
    pub const DECLINED: i64 = 2;
}

/// Builds the full model registry for the social app.
///
/// # Errors
///
/// Propagates registration errors (duplicate model names).
pub fn build_registry() -> Result<ModelRegistry> {
    let mut reg = ModelRegistry::new();
    reg.register(
        ModelDef::builder("User", "users")
            .field(
                FieldDef::new("username", ValueType::Text)
                    .not_null()
                    .unique(),
            )
            .field(FieldDef::new("date_joined", ValueType::Timestamp).not_null())
            .field(FieldDef::new("last_login", ValueType::Timestamp))
            .build(),
    )?;
    reg.register(
        ModelDef::builder("Profile", "profiles")
            .foreign_key("user_id", "User")
            .field(FieldDef::new("name", ValueType::Text))
            .field(FieldDef::new("about", ValueType::Text))
            .field(FieldDef::new("location", ValueType::Text))
            .field(FieldDef::new("website", ValueType::Text))
            .build(),
    )?;
    reg.register(
        ModelDef::builder("Friendship", "friendships")
            .foreign_key("user_id", "User")
            .foreign_key("friend_id", "User")
            .field(FieldDef::new("added", ValueType::Timestamp).not_null())
            .build(),
    )?;
    reg.register(
        ModelDef::builder("FriendshipInvitation", "friendship_invitations")
            .foreign_key("from_user_id", "User")
            .foreign_key("to_user_id", "User")
            .field(FieldDef::new("status", ValueType::Int).not_null().indexed())
            .field(FieldDef::new("sent", ValueType::Timestamp).not_null())
            // The pending-invitations page filters on both columns; the
            // composite index answers it without touching accepted or
            // declined invitations.
            .index_together(["to_user_id", "status"])
            .build(),
    )?;
    reg.register(
        ModelDef::builder("Bookmark", "bookmarks")
            .field(FieldDef::new("url", ValueType::Text).not_null().unique())
            .field(FieldDef::new("description", ValueType::Text))
            .field(FieldDef::new("added", ValueType::Timestamp).not_null())
            .build(),
    )?;
    reg.register(
        ModelDef::builder("BookmarkInstance", "bookmark_instances")
            .foreign_key("bookmark_id", "Bookmark")
            .foreign_key("user_id", "User")
            .field(FieldDef::new("description", ValueType::Text))
            .field(
                FieldDef::new("saved", ValueType::Timestamp)
                    .not_null()
                    .indexed(),
            )
            .build(),
    )?;
    reg.register(
        ModelDef::builder("WallPost", "wall_posts")
            .foreign_key("user_id", "User")
            .foreign_key("sender_id", "User")
            .field(FieldDef::new("content", ValueType::Text))
            .field(
                FieldDef::new("date_posted", ValueType::Timestamp)
                    .not_null()
                    .indexed(),
            )
            // The wall page is `user_id = ? ORDER BY date_posted DESC
            // LIMIT k`: a reverse scan of this index yields the top-k
            // without sorting.
            .index_together(["user_id", "date_posted"])
            .build(),
    )?;
    reg.register(
        ModelDef::builder("Group", "groups")
            .field(FieldDef::new("title", ValueType::Text).not_null())
            .field(FieldDef::new("created", ValueType::Timestamp).not_null())
            .build(),
    )?;
    reg.register(
        ModelDef::builder("GroupMembership", "group_memberships")
            .foreign_key("user_id", "User")
            .foreign_key("group_id", "Group")
            .field(FieldDef::new("joined", ValueType::Timestamp).not_null())
            .build(),
    )?;
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_storage::Database;

    #[test]
    fn registry_builds_and_syncs() {
        let reg = build_registry().unwrap();
        assert_eq!(reg.models().count(), 9);
        let db = Database::default();
        reg.sync(&db).unwrap();
        assert!(db.table_names().contains(&"bookmark_instances".to_string()));
        assert!(db
            .table_names()
            .contains(&"friendship_invitations".to_string()));
    }

    #[test]
    fn unique_bookmark_url_enforced() {
        let reg = build_registry().unwrap();
        let db = Database::default();
        reg.sync(&db).unwrap();
        db.execute_sql(
            "INSERT INTO bookmarks VALUES (1, 'http://a', 'd', TS(0))",
            &[],
        )
        .unwrap();
        assert!(db
            .execute_sql(
                "INSERT INTO bookmarks VALUES (2, 'http://a', 'd', TS(0))",
                &[],
            )
            .is_err());
    }
}
