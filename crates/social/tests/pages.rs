//! Integration tests of the social app's page loads, with and without
//! CacheGenie — the core check is that caching never changes page
//! behaviour, only where answers come from.

use cachegenie::ConsistencyStrategy;
use genie_social::{build_app, AppConfig, SeedConfig};

fn cfg(strategy: Option<ConsistencyStrategy>) -> AppConfig {
    AppConfig {
        seed: SeedConfig::tiny(),
        strategy,
        ..Default::default()
    }
}

#[test]
fn build_seeds_and_declares() {
    let env = build_app(&cfg(Some(ConsistencyStrategy::UpdateInPlace))).unwrap();
    assert_eq!(env.cached_objects, 14);
    assert_eq!(env.seeded.users, 20);
    assert!(env.seeded.rows > 100);
    assert_eq!(env.db.row_count("users").unwrap(), 20);
    assert!(env.genie.trigger_count() > 30);
}

#[test]
fn nocache_mode_declares_nothing() {
    let env = build_app(&cfg(None)).unwrap();
    assert_eq!(env.cached_objects, 0);
    assert_eq!(env.genie.trigger_count(), 0);
    let stats = env.app.lookup_bm(1).unwrap();
    assert_eq!(stats.cache_ops, 0);
    assert_eq!(stats.cache_hit_queries, 0);
    assert!(stats.queries >= 6);
}

#[test]
fn all_pages_run_and_report_queries() {
    let env = build_app(&cfg(Some(ConsistencyStrategy::UpdateInPlace))).unwrap();
    let a = &env.app;
    for (name, stats) in [
        ("login", a.login(1).unwrap()),
        ("lookup_bm", a.lookup_bm(1).unwrap()),
        ("lookup_fbm", a.lookup_fbm(1).unwrap()),
        (
            "create_bm",
            a.create_bm(1, "http://bookmark.example/1").unwrap(),
        ),
        ("accept_fr", a.accept_fr(1, 2).unwrap()),
        ("view_wall", a.view_wall(1).unwrap()),
        ("post_wall", a.post_wall(1, 2, "hi").unwrap()),
        ("view_groups", a.view_groups(1).unwrap()),
        ("logout", a.logout(1).unwrap()),
    ] {
        assert!(stats.queries > 0, "{name} issued no queries");
    }
}

#[test]
fn write_pages_actually_write() {
    let env = build_app(&cfg(Some(ConsistencyStrategy::UpdateInPlace))).unwrap();
    assert!(
        env.app.login(1).unwrap().writes >= 1,
        "login updates last_login"
    );
    assert!(env.app.create_bm(1, "http://new.example/x").unwrap().writes >= 1);
    assert!(env.app.accept_fr(1, 3).unwrap().writes >= 1);
    assert!(env.app.lookup_bm(1).unwrap().writes == 0);
    assert!(env.app.lookup_fbm(1).unwrap().writes == 0);
}

#[test]
fn second_render_hits_cache() {
    let env = build_app(&cfg(Some(ConsistencyStrategy::UpdateInPlace))).unwrap();
    env.app.lookup_bm(1).unwrap();
    let again = env.app.lookup_bm(1).unwrap();
    assert!(
        again.cache_hit_queries >= again.intercepted_queries / 2,
        "warm page should mostly hit: {again:?}"
    );
    assert!(again.cache_hit_queries > 0);
}

#[test]
fn create_bm_visible_immediately_from_cache() {
    let env = build_app(&cfg(Some(ConsistencyStrategy::UpdateInPlace))).unwrap();
    let before = env.app.lookup_bm(1).unwrap();
    let _ = before;
    env.app.create_bm(1, "http://bookmark.example/3").unwrap();
    // The re-render inside create_bm already checked itself; verify an
    // independent page also sees it, served from cache.
    let sess = env.app.session();
    let qs = env.app.user_bookmarks_qs(1).unwrap();
    let out = sess.all(&qs).unwrap();
    assert!(out.from_cache);
    assert!(out
        .rows
        .iter()
        .any(|r| r.get("url").as_text() == Some("http://bookmark.example/3")));
}

#[test]
fn accept_fr_consumes_pending_invitation() {
    let env = build_app(&cfg(Some(ConsistencyStrategy::UpdateInPlace))).unwrap();
    let sess = env.app.session();
    let (before, _) = sess
        .count(&env.app.pending_invitations_qs(1).unwrap())
        .unwrap();
    if before == 0 {
        return; // tiny seed may leave user 1 without invitations
    }
    let (friends_before, _) = sess.count(&env.app.friends_qs(1).unwrap()).unwrap();
    env.app.accept_fr(1, 2).unwrap();
    let (after, out) = sess
        .count(&env.app.pending_invitations_qs(1).unwrap())
        .unwrap();
    assert_eq!(after, before - 1);
    assert!(out.from_cache, "pending count maintained in place");
    let (friends_after, _) = sess.count(&env.app.friends_qs(1).unwrap()).unwrap();
    assert_eq!(friends_after, friends_before + 1);
}

#[test]
fn caching_never_changes_page_results() {
    // Render the same read pages in NoCache and Update deployments built
    // from the same seed: row counts must agree.
    let plain = build_app(&cfg(None)).unwrap();
    let cached = build_app(&cfg(Some(ConsistencyStrategy::UpdateInPlace))).unwrap();
    for user in 1..=10i64 {
        for (a, b) in [
            (
                plain.app.lookup_bm(user).unwrap(),
                cached.app.lookup_bm(user).unwrap(),
            ),
            (
                plain.app.lookup_fbm(user).unwrap(),
                cached.app.lookup_fbm(user).unwrap(),
            ),
            (
                plain.app.view_wall(user).unwrap(),
                cached.app.view_wall(user).unwrap(),
            ),
        ] {
            assert_eq!(a.queries, b.queries, "user {user}");
        }
        // Independent data-level check on the bookmark list itself.
        let pa = plain
            .app
            .session()
            .all(&plain.app.user_bookmarks_qs(user).unwrap())
            .unwrap();
        let pb = cached
            .app
            .session()
            .all(&cached.app.user_bookmarks_qs(user).unwrap())
            .unwrap();
        let urls = |rows: &[genie_orm::OrmRow]| {
            let mut v: Vec<String> = rows
                .iter()
                .map(|r| r.get("url").as_text().unwrap_or_default().to_owned())
                .collect();
            v.sort();
            v
        };
        assert_eq!(urls(&pa.rows), urls(&pb.rows), "user {user}");
    }
}

#[test]
fn trigger_overhead_shows_up_on_write_pages() {
    let env = build_app(&cfg(Some(ConsistencyStrategy::UpdateInPlace))).unwrap();
    // Warm the caches so triggers have entries to maintain.
    env.app.lookup_bm(1).unwrap();
    env.app.view_wall(1).unwrap();
    let w = env.app.post_wall(1, 2, "x").unwrap();
    assert!(w.db_cost.triggers_fired >= 1, "{:?}", w.db_cost);
    assert!(w.db_cost.trigger_connections >= 1);
}
