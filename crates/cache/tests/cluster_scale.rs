//! Scale-out cache tier tests: capacity split, lease-token audit,
//! consistent-hash stability properties, hot-key replication, and node
//! failure/rejoin.

use bytes::Bytes;
use genie_cache::{CacheCluster, CacheOrigin, ClusterConfig, Payload};
use proptest::prelude::*;

fn cluster(servers: usize) -> CacheCluster {
    CacheCluster::new(ClusterConfig {
        servers,
        capacity_bytes: 16 * 1024 * 1024,
        ..Default::default()
    })
}

/// A cluster with hot-key replication armed at a low threshold.
fn hot_cluster(servers: usize, replicas: usize, threshold: u64) -> CacheCluster {
    CacheCluster::new(ClusterConfig {
        servers,
        capacity_bytes: 16 * 1024 * 1024,
        hot_key_replicas: replicas,
        hot_key_threshold: threshold,
        ..Default::default()
    })
}

// ----- satellite: capacity split loses no remainder bytes -----

#[test]
fn capacity_split_preserves_every_byte() {
    // 1000 over 3 servers used to become 333*3 = 999; the remainder
    // byte must survive the split (and the per-shard split below it).
    for (total, servers) in [(1000, 3), (1_000_003, 7), (64 * 1024 * 1024 + 5, 6)] {
        let c = CacheCluster::new(ClusterConfig {
            servers,
            capacity_bytes: total,
            ..Default::default()
        });
        assert_eq!(
            c.capacity_bytes(),
            total,
            "{total} bytes over {servers} servers"
        );
    }
}

// ----- satellite: lease-token uniqueness and monotonicity -----

#[test]
fn lease_tokens_unique_and_monotonic_across_shards() {
    // Keys spread over all 16 lease shards; tokens must come from one
    // strictly increasing sequence, never colliding across shards.
    let c = cluster(4);
    let mut last = 0u64;
    for i in 0..2000 {
        let token = c.lease(&format!("key:{i}"));
        assert!(
            token > last,
            "token {token} after {last}: not strictly increasing"
        );
        last = token;
    }
}

#[test]
fn lease_token_never_validates_another_key() {
    // A token minted for key A (one lease shard) must not complete a
    // fill for key B (any shard), even though both are outstanding.
    let c = cluster(2);
    let h = c.handle(CacheOrigin::Application);
    for i in 0..64 {
        let a = format!("aa:{i}");
        let b = format!("bb:{i}");
        let tok_a = c.lease(&a);
        let tok_b = c.lease(&b);
        assert!(
            !h.fill(&b, Bytes::from_static(b"x"), None, tok_a).unwrap(),
            "key {b} accepted key {a}'s token"
        );
        assert!(h.fill(&b, Bytes::from_static(b"x"), None, tok_b).unwrap());
        assert!(h.fill(&a, Bytes::from_static(b"y"), None, tok_a).unwrap());
    }
}

// ----- satellite: consistent-hash stability properties -----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding one server to N only ever moves a key TO the new server:
    /// a key whose arc is untouched keeps its placement exactly.
    #[test]
    fn grow_moves_keys_only_to_the_new_server(
        servers in 2usize..8,
        keys in prop::collection::vec("[a-z0-9:]{1,16}", 20..150),
    ) {
        let before = cluster(servers);
        let after = cluster(servers + 1);
        let mut moved = 0usize;
        for k in &keys {
            let old = before.server_for(k);
            let new = after.server_for(k);
            if old != new {
                prop_assert_eq!(
                    new, servers,
                    "key {} moved {} -> {}, not to the new server", k, old, new
                );
                moved += 1;
            }
        }
        // ~K/(N+1) expected; anything at or past half signals rehashing.
        prop_assert!(
            moved < keys.len().div_ceil(2),
            "moved {}/{} keys on grow", moved, keys.len()
        );
    }

    /// Killing one of N servers only remaps keys the victim owned;
    /// every other key keeps its placement through the kill.
    #[test]
    fn kill_remaps_only_the_victims_keys(
        servers in 3usize..8,
        victim_seed in any::<usize>(),
        keys in prop::collection::vec("[a-z0-9:]{1,16}", 20..150),
    ) {
        let c = cluster(servers);
        let victim = victim_seed % servers;
        let before: Vec<usize> = keys.iter().map(|k| c.server_for(k)).collect();
        assert!(c.kill_node(victim));
        let mut moved = 0usize;
        for (k, &old) in keys.iter().zip(&before) {
            let new = c.server_for(k);
            if old == victim {
                prop_assert_ne!(new, victim, "key {} still routed to dead node", k);
                moved += 1;
            } else {
                prop_assert_eq!(new, old, "untouched key {} moved {} -> {}", k, old, new);
            }
        }
        // Revive restores the exact original placement.
        assert!(c.revive_node(victim));
        for (k, &old) in keys.iter().zip(&before) {
            prop_assert_eq!(c.server_for(k), old, "placement changed after rejoin for {}", k);
        }
        prop_assert!(moved <= keys.len());
    }
}

// ----- hot-key replication -----

#[test]
fn hot_key_promotes_and_replicates() {
    let c = hot_cluster(4, 3, 8);
    let h = c.handle(CacheOrigin::Application);
    h.set_payload("celebrity", &Payload::Count(1), None)
        .unwrap();
    assert!(c.replica_set("celebrity").is_none());
    for _ in 0..20 {
        assert_eq!(
            h.get_payload("celebrity").unwrap().unwrap().as_count(),
            Some(1)
        );
    }
    let set = c.replica_set("celebrity").expect("promoted after 20 reads");
    assert_eq!(set.len(), 3, "three copies requested");
    assert_eq!(set[0], c.server_for("celebrity"), "primary leads the set");
    assert!(c.replicas_coherent("celebrity"));
    assert_eq!(c.stats().hot_key_promotions, 1);
    assert_eq!(c.stats().replicated_keys, 1);

    // Reads now spread over replicas (round-robin => non-primary serves).
    for _ in 0..12 {
        h.get("celebrity");
    }
    assert!(
        c.stats().replica_reads > 0,
        "no read was served by a non-primary replica"
    );
}

#[test]
fn writes_update_every_replica_atomically() {
    let c = hot_cluster(4, 3, 4);
    let h = c.handle(CacheOrigin::Application);
    h.set_payload("hot", &Payload::Count(0), None).unwrap();
    for _ in 0..10 {
        h.get("hot");
    }
    assert!(c.replica_set("hot").is_some());
    // Plain set, CAS, incr, fill, delete: every mutation must leave all
    // copies identical, and every replica read must see the new value.
    h.set_payload("hot", &Payload::Count(10), None).unwrap();
    assert!(c.replicas_coherent("hot"));
    for _ in 0..8 {
        assert_eq!(h.get_payload("hot").unwrap().unwrap().as_count(), Some(10));
    }
    let (_, tok) = h.gets_payload("hot").unwrap().unwrap();
    h.cas_payload("hot", &Payload::Count(11), tok, None)
        .unwrap();
    assert!(c.replicas_coherent("hot"));
    assert_eq!(h.incr("hot", 4).unwrap(), Some(15));
    assert!(c.replicas_coherent("hot"));
    for _ in 0..8 {
        assert_eq!(h.get_payload("hot").unwrap().unwrap().as_count(), Some(15));
    }
    let lease = c.lease("hot2");
    h.fill_payload("hot2", &Payload::Count(1), None, lease)
        .unwrap();
    assert!(h.delete("hot"));
    for _ in 0..8 {
        assert!(
            h.get("hot").is_none(),
            "a replica resurrected a deleted key"
        );
    }
}

#[test]
fn trigger_batch_publish_reaches_every_replica() {
    let c = hot_cluster(4, 3, 4);
    let app = c.handle(CacheOrigin::Application);
    let trig = c.handle(CacheOrigin::Trigger);
    app.set_payload("wall", &Payload::Count(0), None).unwrap();
    for _ in 0..10 {
        app.get("wall");
    }
    assert!(c.replica_set("wall").is_some());
    // A commit-pipeline batch: buffered trigger increment, then publish.
    c.begin_effect_batch();
    assert_eq!(trig.incr("wall", 5).unwrap(), Some(5));
    c.commit_effect_batch();
    assert!(c.replicas_coherent("wall"));
    for _ in 0..8 {
        assert_eq!(
            app.get_payload("wall").unwrap().unwrap().as_count(),
            Some(5),
            "a replica served the pre-publish value"
        );
    }
}

// ----- node failure / rejoin -----

#[test]
fn kill_node_fails_over_hot_keys_and_misses_cold_ones() {
    let c = hot_cluster(4, 3, 4);
    let h = c.handle(CacheOrigin::Application);
    h.set_payload("hot", &Payload::Count(42), None).unwrap();
    for _ in 0..10 {
        h.get("hot");
    }
    let primary = c.server_for("hot");
    // Cold keys living on the hot key's primary.
    let mut cold_on_primary = Vec::new();
    for i in 0..200 {
        let k = format!("cold:{i}");
        if c.server_for(&k) == primary {
            h.set_payload(&k, &Payload::Count(i), None).unwrap();
            cold_on_primary.push(k);
        }
    }
    assert!(!cold_on_primary.is_empty());

    assert!(c.kill_node(primary));
    assert!(!c.is_alive(primary));
    assert_eq!(c.alive_count(), 3);
    assert_eq!(c.stats().dead_nodes, 1);

    // Hot key survives via replica promotion...
    assert_eq!(
        h.get_payload("hot").unwrap().unwrap().as_count(),
        Some(42),
        "hot key lost through node kill despite replicas"
    );
    let set = c.replica_set("hot").unwrap();
    assert!(!set.contains(&primary), "dead node still in replica set");
    assert!(c.replicas_coherent("hot"));
    // ...cold keys rehash as misses (their only copy died with the node).
    for k in &cold_on_primary {
        assert_ne!(c.server_for(k), primary);
        assert!(h.get(k).is_none(), "cold key {k} survived a node wipe?");
    }

    // Rejoin: the node comes back cold and rejoins the ring.
    assert!(c.revive_node(primary));
    assert!(c.is_alive(primary));
    assert_eq!(c.alive_count(), 4);
    assert!(c.replicas_coherent("hot"));
    assert_eq!(h.get_payload("hot").unwrap().unwrap().as_count(), Some(42));
}

#[test]
fn rejoin_never_resurrects_stale_values() {
    // The adversarial cycle: write v1, kill the owner, write v2 (lands
    // on the successor), revive the owner (rehash => miss), then kill
    // the owner AGAIN. If the successor kept its v2 copy after rejoin
    // that would now be correct — but if the *owner's* pre-kill v1 or
    // the successor's orphaned copy survived wrongly, a failover read
    // would serve stale data. The rejoin sweep must prevent that.
    let c = cluster(4);
    let h = c.handle(CacheOrigin::Application);
    let key = "k:stale";
    let owner = c.server_for(key);

    h.set_payload(key, &Payload::Count(1), None).unwrap();
    assert!(c.kill_node(owner));
    // The write during the outage lands on the ring successor.
    h.set_payload(key, &Payload::Count(2), None).unwrap();
    let successor = c.server_for(key);
    assert_ne!(successor, owner);

    assert!(c.revive_node(owner));
    // Rehash-as-miss: the revived owner is cold, and the successor's
    // orphaned copy was dropped by the rejoin sweep.
    assert!(
        h.get(key).is_none(),
        "rejoined node served a value it cannot have"
    );

    // Second failover: the successor must NOT serve the orphaned v2
    // (let alone v1) — the key was swept at rejoin.
    assert!(c.kill_node(owner));
    assert!(
        h.get(key).is_none(),
        "failover served a stale orphaned copy after rejoin cycle"
    );
    assert!(c.revive_node(owner));
}

#[test]
fn kill_refuses_last_alive_node_and_double_kill() {
    let c = cluster(2);
    assert!(c.kill_node(0));
    assert!(!c.kill_node(0), "double kill");
    assert!(!c.kill_node(1), "killing the last alive node");
    assert!(c.alive_count() == 1);
    assert!(!c.revive_node(1), "reviving an alive node");
    assert!(c.revive_node(0));
    assert!(!c.kill_node(7), "out of range");
}

#[test]
fn cluster_works_through_kill_revive_churn() {
    let c = hot_cluster(3, 2, 6);
    let h = c.handle(CacheOrigin::Application);
    for round in 0..3 {
        for i in 0..60 {
            h.set_payload(&format!("r{round}:k{i}"), &Payload::Count(i), None)
                .unwrap();
        }
        let victim = round % 3;
        assert!(c.kill_node(victim));
        // Everything still readable-or-miss, never wrong.
        for i in 0..60 {
            let k = format!("r{round}:k{i}");
            if let Some(p) = h.get_payload(&k).unwrap() {
                assert_eq!(p.as_count(), Some(i), "stale value for {k}");
            }
        }
        assert!(c.revive_node(victim));
    }
}
