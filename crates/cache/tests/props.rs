//! Property-based tests for the cache crate.

use bytes::Bytes;
use genie_cache::{CacheCluster, CacheOrigin, CacheStore, ClusterConfig, Payload, StoreConfig};
use genie_storage::{Row, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 '%_]{0,24}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Timestamp),
    ]
}

fn row_strategy() -> impl Strategy<Value = Row> {
    prop::collection::vec(value_strategy(), 0..8).prop_map(Row::new)
}

fn payload_strategy() -> impl Strategy<Value = Payload> {
    prop_oneof![
        prop::collection::vec(row_strategy(), 0..10).prop_map(Payload::Rows),
        any::<i64>().prop_map(Payload::Count),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Payload::Raw),
        (prop::collection::vec(row_strategy(), 0..10), any::<bool>())
            .prop_map(|(rows, complete)| Payload::TopK { rows, complete }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → decode is the identity for every payload. (Float NaN
    /// compares equal under the storage ordering `Row` uses.)
    #[test]
    fn codec_roundtrip(p in payload_strategy()) {
        let enc = p.encode();
        let dec = Payload::decode(&enc).unwrap();
        prop_assert_eq!(dec, p);
    }

    /// Single-bit corruption anywhere in the buffer is always detected.
    #[test]
    fn codec_detects_bitflips(p in payload_strategy(), byte in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut enc = p.encode().to_vec();
        let idx = byte.index(enc.len());
        enc[idx] ^= 1 << bit;
        match Payload::decode(&enc) {
            Err(_) => {}
            // A flip in padding-free formats must change the decoded value
            // OR be caught; if it decodes, it must not silently equal the
            // original (checksum would have caught identity flips).
            Ok(dec) => prop_assert_ne!(dec, p),
        }
    }

    /// The LRU store never exceeds its configured byte budget, whatever
    /// the operation mix.
    #[test]
    fn store_memory_bound_holds(
        ops in prop::collection::vec(
            ("[a-d]{1,3}", 0usize..200, any::<bool>()),
            1..150,
        )
    ) {
        let mut s = CacheStore::new(StoreConfig {
            capacity_bytes: 700,
            item_limit_bytes: 400,
            ..Default::default()
        });
        for (key, size, del) in &ops {
            if *del {
                s.delete(key);
            } else {
                let _ = s.set(key, Bytes::from(vec![0u8; *size]), None, 0);
            }
            prop_assert!(s.bytes_used() <= 700, "{} > 700", s.bytes_used());
        }
    }

    /// A cluster behaves exactly like one big hash map for get/set/delete:
    /// sharding must never change observable contents.
    #[test]
    fn cluster_matches_reference_map(
        servers in 1usize..6,
        ops in prop::collection::vec(("[a-z]{1,4}", any::<i64>(), any::<bool>()), 1..120),
    ) {
        use std::collections::HashMap;
        let cluster = CacheCluster::new(ClusterConfig {
            servers,
            capacity_bytes: 16 * 1024 * 1024, // ample: no evictions
            ..Default::default()
        });
        let h = cluster.handle(CacheOrigin::Application);
        let mut reference: HashMap<String, i64> = HashMap::new();
        for (key, val, del) in &ops {
            if *del {
                h.delete(key);
                reference.remove(key);
            } else {
                h.set_payload(key, &Payload::Count(*val), None).unwrap();
                reference.insert(key.clone(), *val);
            }
        }
        for (key, expect) in &reference {
            let got = h.get_payload(key).unwrap().and_then(|p| p.as_count());
            prop_assert_eq!(got, Some(*expect), "key {}", key);
        }
        prop_assert_eq!(cluster.stats().items, reference.len());
    }

    /// CAS loops converge: concurrent-style interleaved read-modify-write
    /// retried on conflict never loses increments.
    #[test]
    fn cas_retry_preserves_all_increments(n in 1usize..60) {
        let cluster = CacheCluster::new(ClusterConfig::default());
        let h = cluster.handle(CacheOrigin::Application);
        h.set_payload("ctr", &Payload::Count(0), None).unwrap();
        for i in 0..n {
            // Simulate a stale-token retry every third increment.
            let (p, token) = h.gets_payload("ctr").unwrap().unwrap();
            let v = p.as_count().unwrap();
            if i % 3 == 0 {
                // Interfering writer bumps the value (and the CAS token).
                h.set_payload("ctr", &Payload::Count(v), None).unwrap();
                // Our stale CAS must fail...
                prop_assert!(h.cas_payload("ctr", &Payload::Count(v + 1), token, None).is_err());
                // ...and the retry with a fresh token must succeed.
                let (p2, t2) = h.gets_payload("ctr").unwrap().unwrap();
                h.cas_payload("ctr", &Payload::Count(p2.as_count().unwrap() + 1), t2, None)
                    .unwrap();
            } else {
                h.cas_payload("ctr", &Payload::Count(v + 1), token, None).unwrap();
            }
        }
        let final_v = h.get_payload("ctr").unwrap().unwrap().as_count().unwrap();
        prop_assert_eq!(final_v, n as i64);
    }
}
