//! Key-granularity read/write lock table — the §3.3 strict-consistency
//! extension.
//!
//! The paper *designs* (but does not implement) full transactional
//! consistency: memcached tracks `readers_k` and `writer_k` per key, blocks
//! conflicting transactions per two-phase locking, and relies on
//! timeout-based deadlock detection. This module implements that lock
//! table. Blocking is cooperative: `try_read`/`try_write` return
//! [`LockOutcome::Blocked`] and the caller (CacheGenie's strict mode)
//! retries, times out, and aborts — exactly the protocol sketched in the
//! paper.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// Transaction identifier agreed between application and database (§3.3).
pub type TxnId = u64;

/// Outcome of a lock attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock is held; proceed.
    Granted,
    /// A conflicting transaction holds the key; retry or abort.
    Blocked,
}

#[derive(Debug, Default)]
struct KeyLock {
    readers: HashSet<TxnId>,
    writer: Option<TxnId>,
}

impl KeyLock {
    fn is_free(&self) -> bool {
        self.readers.is_empty() && self.writer.is_none()
    }
}

/// A shared lock table over cache keys.
///
/// Lock state exists independently of the cached data: the paper notes
/// readers/writers must be tracked "even if the key has been removed from
/// the cache" (invalidated) or never added.
#[derive(Debug, Default)]
pub struct KeyLockTable {
    locks: Mutex<HashMap<String, KeyLock>>,
}

impl KeyLockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        KeyLockTable::default()
    }

    /// Attempts a read lock: blocked iff another transaction holds the
    /// write lock (`writer_k != None ∧ writer_k != T`).
    pub fn try_read(&self, tid: TxnId, key: &str) -> LockOutcome {
        let mut locks = self.locks.lock();
        let entry = locks.entry(key.to_owned()).or_default();
        match entry.writer {
            Some(w) if w != tid => LockOutcome::Blocked,
            _ => {
                entry.readers.insert(tid);
                LockOutcome::Granted
            }
        }
    }

    /// Attempts a write lock: blocked iff another transaction writes, or
    /// any *other* transaction reads
    /// (`writer_k ∉ {None, T} ∨ readers_k − {T} ≠ ∅`).
    pub fn try_write(&self, tid: TxnId, key: &str) -> LockOutcome {
        let mut locks = self.locks.lock();
        let entry = locks.entry(key.to_owned()).or_default();
        let other_writer = matches!(entry.writer, Some(w) if w != tid);
        let other_readers = entry.readers.iter().any(|&r| r != tid);
        if other_writer || other_readers {
            return LockOutcome::Blocked;
        }
        entry.writer = Some(tid);
        LockOutcome::Granted
    }

    /// Releases every lock held by `tid` (commit or abort), returning the
    /// keys it had *written* — on abort the caller must drop those keys
    /// from the cache so subsequent reads go to the database.
    pub fn release_all(&self, tid: TxnId) -> Vec<String> {
        let mut locks = self.locks.lock();
        let mut written = Vec::new();
        locks.retain(|key, l| {
            if l.writer == Some(tid) {
                l.writer = None;
                written.push(key.clone());
            }
            l.readers.remove(&tid);
            !l.is_free()
        });
        written
    }

    /// Keys currently locked (for diagnostics and tests).
    pub fn locked_keys(&self) -> usize {
        self.locks.lock().len()
    }

    /// Whether `tid` holds any lock on `key`.
    pub fn holds(&self, tid: TxnId, key: &str) -> bool {
        let locks = self.locks.lock();
        locks
            .get(key)
            .map(|l| l.writer == Some(tid) || l.readers.contains(&tid))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_share() {
        let t = KeyLockTable::new();
        assert_eq!(t.try_read(1, "k"), LockOutcome::Granted);
        assert_eq!(t.try_read(2, "k"), LockOutcome::Granted);
        assert!(t.holds(1, "k") && t.holds(2, "k"));
    }

    #[test]
    fn writer_blocks_readers_and_writers() {
        let t = KeyLockTable::new();
        assert_eq!(t.try_write(1, "k"), LockOutcome::Granted);
        assert_eq!(t.try_read(2, "k"), LockOutcome::Blocked);
        assert_eq!(t.try_write(2, "k"), LockOutcome::Blocked);
        // The owner itself is never blocked.
        assert_eq!(t.try_read(1, "k"), LockOutcome::Granted);
        assert_eq!(t.try_write(1, "k"), LockOutcome::Granted);
    }

    #[test]
    fn readers_block_writers_but_not_self_upgrade() {
        let t = KeyLockTable::new();
        assert_eq!(t.try_read(1, "k"), LockOutcome::Granted);
        assert_eq!(t.try_write(2, "k"), LockOutcome::Blocked);
        // Sole reader may upgrade.
        assert_eq!(t.try_write(1, "k"), LockOutcome::Granted);
    }

    #[test]
    fn upgrade_blocked_with_other_readers() {
        let t = KeyLockTable::new();
        t.try_read(1, "k");
        t.try_read(2, "k");
        assert_eq!(t.try_write(1, "k"), LockOutcome::Blocked);
    }

    #[test]
    fn release_returns_written_keys_and_unblocks() {
        let t = KeyLockTable::new();
        t.try_read(1, "a");
        t.try_write(1, "b");
        t.try_write(1, "c");
        assert_eq!(t.try_write(2, "b"), LockOutcome::Blocked);
        let mut written = t.release_all(1);
        written.sort();
        assert_eq!(written, vec!["b".to_string(), "c".to_string()]);
        assert_eq!(t.try_write(2, "b"), LockOutcome::Granted);
        assert_eq!(t.locked_keys(), 1, "only b remains locked (by 2)");
    }

    #[test]
    fn release_of_unknown_tid_is_noop() {
        let t = KeyLockTable::new();
        t.try_read(1, "a");
        assert!(t.release_all(99).is_empty());
        assert!(t.holds(1, "a"));
    }

    #[test]
    fn lock_state_outlives_cache_entries() {
        // Locks are pure metadata: locking a key that was never cached
        // works, per the paper's invalidation discussion.
        let t = KeyLockTable::new();
        assert_eq!(t.try_read(7, "never-cached-key"), LockOutcome::Granted);
        assert_eq!(t.locked_keys(), 1);
    }

    #[test]
    fn deadlock_shape_is_detectable_by_caller() {
        // T1 reads a then wants b; T2 reads b then wants a. Both block —
        // the caller's timeout policy must abort one.
        let t = KeyLockTable::new();
        t.try_read(1, "a");
        t.try_read(2, "b");
        assert_eq!(t.try_write(1, "b"), LockOutcome::Blocked);
        assert_eq!(t.try_write(2, "a"), LockOutcome::Blocked);
        // Abort T2: its locks release, T1 can proceed.
        t.release_all(2);
        assert_eq!(t.try_write(1, "b"), LockOutcome::Granted);
    }
}
