//! # genie-cache
//!
//! A memcached-like distributed in-memory cache, the caching layer of the
//! CacheGenie reproduction. Feature-parity targets what the paper uses
//! from memcached 1.4.5:
//!
//! * per-server LRU stores with byte-accurate memory accounting and TTL
//!   expiry ([`CacheStore`]);
//! * `get`/`gets`/`set`/`add`/`cas`/`delete`/`incr` — including the CAS
//!   loop the paper's generated Top-K trigger relies on;
//! * a consistent-hash **cluster** presenting one logical cache across
//!   servers ([`CacheCluster`]), with distinct application/trigger origins
//!   so the "triggers bump LRU" behaviour called out in §4 of the paper
//!   can be toggled;
//! * a typed, checksummed payload codec ([`Payload`]) so trigger bodies do
//!   real decode–modify–encode work, as the Python triggers do;
//! * the §3.3 strict-consistency **key lock table** ([`KeyLockTable`]) —
//!   designed but not built in the paper; implemented here as an extension.

pub mod cluster;
pub mod codec;
pub mod error;
pub mod hotkey;
pub mod lock;
pub mod replica;
pub mod shard;
pub mod store;

pub use cluster::{
    CacheCluster, CacheHandle, ClusterConfig, ClusterStats, EffectBatchSummary,
    PreparedEffectBatch, ServerStats,
};
pub use codec::{hash_key, Payload};
pub use error::{CacheError, Result};
pub use hotkey::{HotKeyConfig, HotKeyDetector};
pub use lock::{KeyLockTable, LockOutcome, TxnId};
pub use replica::ReplicaTable;
pub use shard::{split_capacity, ShardedStore};
pub use store::{CacheOrigin, CacheStore, EvictionPolicy, StoreConfig, StoreStats, ValueWithCas};
