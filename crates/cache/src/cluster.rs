//! A cluster of cache servers behind consistent hashing.
//!
//! The paper stresses that CacheGenie maintains "a single logical cache
//! across many cache servers" (vs. SI-cache's per-app-server caches), with
//! clients and database triggers all addressing the same key space. This
//! module provides that: keys are placed on servers via a consistent-hash
//! ring with virtual nodes, and every handle — application or trigger —
//! sees the same data.

use crate::codec::{hash_key, Payload};
use crate::error::Result;
use crate::hotkey::{HotKeyConfig, HotKeyDetector};
use crate::replica::ReplicaTable;
use crate::shard::{split_capacity, ShardedStore};
use crate::store::{CacheOrigin, CacheStore, EvictionPolicy, StoreStats, ValueWithCas};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of cache servers.
    pub servers: usize,
    /// Total memory budget in bytes, split across servers with the
    /// remainder distributed over the first servers so no byte is lost
    /// (the paper's Experiment 4 sweeps this from 64 MB to 512 MB).
    pub capacity_bytes: usize,
    /// Per-item size limit.
    pub item_limit_bytes: usize,
    /// Virtual nodes per server on the hash ring.
    pub vnodes: usize,
    /// Whether trigger-originated reads refresh LRU recency. Unmodified
    /// memcached bumps on every touch (`true`); §4 of the paper proposes a
    /// modified policy (`false`) which we expose for the ablation bench.
    pub bump_lru_on_trigger: bool,
    /// Lock stripes per server (rounded up to a power of two). With 1,
    /// a server degenerates to the pre-shard single-mutex store.
    pub shards_per_server: usize,
    /// Eviction policy for every shard ([`EvictionPolicy::Clock`] keeps
    /// GETs off the eviction structure; `LruStamp` is the exact-order
    /// legacy baseline).
    pub eviction: EvictionPolicy,
    /// Copies of each hot key, counting the primary. `1` disables
    /// hot-key replication entirely.
    pub hot_key_replicas: usize,
    /// Estimated access count at which a key is promoted to replicated
    /// (fed to the count-min [`HotKeyDetector`]).
    pub hot_key_threshold: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            servers: 1,
            capacity_bytes: 512 * 1024 * 1024,
            item_limit_bytes: 1024 * 1024,
            vnodes: 64,
            bump_lru_on_trigger: true,
            shards_per_server: 8,
            eviction: EvictionPolicy::Clock,
            hot_key_replicas: 1,
            hot_key_threshold: 64,
        }
    }
}

/// Aggregated statistics across all servers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Summed per-server counters.
    pub store: StoreStats,
    /// Total bytes used across servers.
    pub bytes_used: usize,
    /// Total live items.
    pub items: usize,
    /// Reads of replicated keys served by a non-primary copy.
    pub replica_reads: u64,
    /// Keys promoted to replicated by the hot-key detector.
    pub hot_key_promotions: u64,
    /// Keys currently holding a replica set.
    pub replicated_keys: usize,
    /// Servers currently marked dead.
    pub dead_nodes: usize,
}

/// Per-server statistics (for the per-node exp3 report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Server index.
    pub index: usize,
    /// Whether the node is alive.
    pub alive: bool,
    /// The node's store counters (all shards summed).
    pub store: StoreStats,
    /// Bytes accounted on the node.
    pub bytes_used: usize,
    /// Live items on the node.
    pub items: usize,
}

impl ClusterStats {
    /// Hit ratio of get operations, or 1.0 with no traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.store.hits + self.store.misses;
        if total == 0 {
            1.0
        } else {
            self.store.hits as f64 / total as f64
        }
    }
}

/// One cache server: a lock-striped store plus liveness.
struct ServerNode {
    store: ShardedStore,
    alive: AtomicBool,
}

struct ClusterInner {
    servers: Vec<ServerNode>,
    /// (ring position, server index), sorted by position.
    ring: Vec<(u64, usize)>,
    /// Logical "now" for TTL expiry; the benchmark driver advances this
    /// with simulated time. Zero means "no clock" (entries never expire
    /// unless a TTL of 0 is used).
    now: AtomicU64,
    bump_on_trigger: bool,
    /// The active transactional effect batch, if any. While present,
    /// trigger-origin operations buffer here instead of hitting the
    /// stores; [`CacheCluster::commit_effect_batch`] publishes one final
    /// operation per touched key. Buffering is serialized by the engine
    /// latch (triggers fire one commit at a time), but *publication* may
    /// run concurrently with the next commit's buffering — which is why
    /// [`CacheCluster::take_effect_batch`] hands ownership out.
    batch: Mutex<Option<EffectBatch>>,
    /// Last *sealed but not yet published* pending op per key (see
    /// [`CacheCluster::take_effect_batch`]): batches are sealed under the
    /// engine latch in commit order, and published after it. A later
    /// commit's trigger reads must see the previous commit's sealed
    /// value — reading the store alone would lose updates (read-modify-
    /// write counts and lists computed from a stale base). Entries are
    /// removed after the store write they describe lands.
    in_flight: Mutex<HashMap<String, (u64, PendingOp)>>,
    /// Seal sequence source for `in_flight` entries.
    next_seal: AtomicU64,
    /// Outstanding read-through fill leases, sharded by key hash so
    /// fills on distinct keys never serialize on one mutex: key -> lease
    /// token. Any mutation of the key through a handle or a batch flush
    /// revokes the lease, so a racing fill computed from pre-commit
    /// database state is dropped instead of caching a stale value.
    leases: Vec<Mutex<LeaseTable>>,
    /// Global lease-token mint: tokens are unique and monotonic across
    /// every lease shard, so a token minted for one key can never
    /// validate a fill routed through another shard.
    next_lease: AtomicU64,
    /// Copies of each hot key, counting the primary (1 = off).
    replica_count: usize,
    /// Hot-key frequency sketch feeding promotion.
    hot: HotKeyDetector,
    /// key -> replica server set, primary first.
    replicas: ReplicaTable,
    /// Reads of replicated keys served by a non-primary copy.
    replica_reads: AtomicU64,
    /// Keys promoted to replicated.
    promotions: AtomicU64,
}

/// Number of lease-table shards (keys hash to one; ordering arguments
/// are per-key, so per-shard mutual exclusion suffices).
const LEASE_SHARDS: usize = 16;

#[derive(Debug, Default)]
struct LeaseTable {
    outstanding: HashMap<String, u64>,
}

/// CAS tokens handed out for buffered (not yet published) values. Kept in
/// a range real stores never reach so a stale store token can't
/// accidentally match a buffered entry.
const BATCH_TOKEN_BASE: u64 = 1 << 62;

/// CAS token for reads served from a *sealed* (in-flight) pending op.
/// Batch-context CAS against a first-touch key is accepted blindly (the
/// engine latch serializes commit-time writers), so the value only needs
/// to stay out of the real stores' range.
const SEALED_TOKEN: u64 = BATCH_TOKEN_BASE - 1;

#[derive(Debug, Clone)]
enum PendingOp {
    /// Publish these bytes at flush.
    Set { data: Bytes, ttl: Option<u64> },
    /// Remove the key at flush.
    Delete,
}

/// Per-transaction overlay over the cluster: trigger effects buffer here
/// during commit-time firing, reads see buffered state first, and the
/// flush publishes exactly one physical operation per touched key —
/// that's the per-cache-key coalescing of the commit pipeline, and the
/// reason an aborted transaction can publish nothing at all.
#[derive(Debug, Default)]
struct EffectBatch {
    /// Key -> pending final op, in first-touch order.
    entries: Vec<(String, PendingOp, u64)>,
    /// Reads that had to fall through to a real store.
    backend_reads: u64,
    /// Logical mutations buffered (what a per-statement pipeline would
    /// have sent to the cache one by one — the "naive" op count).
    buffered_mutations: u64,
    next_token: u64,
}

impl EffectBatch {
    fn entry(&self, key: &str) -> Option<(&PendingOp, u64)> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, op, t)| (op, *t))
    }

    fn put(&mut self, key: &str, op: PendingOp) -> u64 {
        self.buffered_mutations += 1;
        let token = BATCH_TOKEN_BASE + self.next_token;
        self.next_token += 1;
        match self.entries.iter_mut().find(|(k, _, _)| k == key) {
            Some(slot) => {
                slot.1 = op;
                slot.2 = token;
            }
            None => self.entries.push((key.to_owned(), op, token)),
        }
        token
    }
}

/// What publishing (or discarding) an effect batch amounted to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectBatchSummary {
    /// Distinct keys published — one physical cache op each.
    pub keys_flushed: u64,
    /// Reads served by a real store during the buffered phase.
    pub backend_reads: u64,
    /// Logical mutations buffered (the per-statement "naive" op count the
    /// coalescing saved against).
    pub buffered_mutations: u64,
}

impl EffectBatchSummary {
    /// Physical cache operations the transaction actually performed.
    pub fn physical_ops(&self) -> u64 {
        self.keys_flushed + self.backend_reads
    }

    /// What the same effects would have cost applied one by one.
    pub fn naive_ops(&self) -> u64 {
        self.buffered_mutations + self.backend_reads
    }
}

/// A shared cache cluster handleable from any thread.
///
/// # Example
///
/// ```
/// use genie_cache::{CacheCluster, ClusterConfig, CacheOrigin, Payload};
///
/// # fn main() -> Result<(), genie_cache::CacheError> {
/// let cluster = CacheCluster::new(ClusterConfig { servers: 3, ..Default::default() });
/// let cache = cluster.handle(CacheOrigin::Application);
/// cache.set_payload("profile:42", &Payload::Count(7), None)?;
/// assert_eq!(cache.get_payload("profile:42")?.unwrap().as_count(), Some(7));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct CacheCluster {
    inner: Arc<ClusterInner>,
}

impl std::fmt::Debug for CacheCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheCluster")
            .field("servers", &self.inner.servers.len())
            .finish()
    }
}

impl CacheCluster {
    /// Builds a cluster per `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.servers` or `config.vnodes` is zero — a cluster
    /// with no placement targets cannot exist.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.servers > 0, "cluster needs at least one server");
        assert!(config.vnodes > 0, "cluster needs at least one vnode");
        // Remainder-preserving split: per-server budgets sum to exactly
        // the configured total.
        let caps = split_capacity(config.capacity_bytes, config.servers);
        let servers: Vec<ServerNode> = caps
            .into_iter()
            .map(|cap| ServerNode {
                store: ShardedStore::new(
                    cap,
                    config.item_limit_bytes,
                    config.shards_per_server,
                    config.eviction,
                ),
                alive: AtomicBool::new(true),
            })
            .collect();
        let mut ring = Vec::with_capacity(config.servers * config.vnodes);
        for s in 0..config.servers {
            for v in 0..config.vnodes {
                ring.push((hash_key(&format!("server{s}#vnode{v}")), s));
            }
        }
        ring.sort_unstable();
        CacheCluster {
            inner: Arc::new(ClusterInner {
                servers,
                ring,
                now: AtomicU64::new(0),
                bump_on_trigger: config.bump_lru_on_trigger,
                batch: Mutex::new(None),
                in_flight: Mutex::new(HashMap::new()),
                next_seal: AtomicU64::new(0),
                leases: (0..LEASE_SHARDS)
                    .map(|_| Mutex::new(LeaseTable::default()))
                    .collect(),
                next_lease: AtomicU64::new(0),
                replica_count: config.hot_key_replicas.max(1),
                hot: HotKeyDetector::new(&HotKeyConfig {
                    threshold: config.hot_key_threshold,
                    ..HotKeyConfig::default()
                }),
                replicas: ReplicaTable::new(),
                replica_reads: AtomicU64::new(0),
                promotions: AtomicU64::new(0),
            }),
        }
    }

    /// A handle for issuing operations as `origin`.
    pub fn handle(&self, origin: CacheOrigin) -> CacheHandle {
        let bump = match origin {
            CacheOrigin::Application => true,
            CacheOrigin::Trigger => self.inner.bump_on_trigger,
        };
        CacheHandle {
            inner: Arc::clone(&self.inner),
            bump,
            origin,
        }
    }

    /// Opens a transactional effect batch: until the matching
    /// [`CacheCluster::commit_effect_batch`] or
    /// [`CacheCluster::discard_effect_batch`], trigger-origin operations
    /// buffer in an overlay instead of touching the stores. Replaces any
    /// batch left open (callers bracket it under the engine's commit
    /// lock, so nesting cannot arise).
    pub fn begin_effect_batch(&self) {
        *self.inner.batch.lock() = Some(EffectBatch::default());
    }

    /// Keys the active batch would publish, in first-touch order (the
    /// strict-consistency extension write-locks these before the flush).
    pub fn effect_batch_keys(&self) -> Vec<String> {
        self.inner
            .batch
            .lock()
            .as_ref()
            .map(|b| b.entries.iter().map(|(k, _, _)| k.clone()).collect())
            .unwrap_or_default()
    }

    /// Publishes the active batch immediately: one physical set/delete
    /// per touched key, in first-touch order. A no-op (zero summary)
    /// without an open batch. Equivalent to
    /// [`CacheCluster::take_effect_batch`] + [`PreparedEffectBatch::publish`].
    pub fn commit_effect_batch(&self) -> EffectBatchSummary {
        match self.take_effect_batch() {
            Some(prepared) => prepared.publish(),
            None => EffectBatchSummary::default(),
        }
    }

    /// Seals and removes the active batch, handing ownership of its
    /// pending operations out — the commit pipeline takes the batch under
    /// the engine latch (fixing its contents and summary) and publishes
    /// it after the latch is released, so slow publication never blocks
    /// the next transaction's trigger firing.
    pub fn take_effect_batch(&self) -> Option<PreparedEffectBatch> {
        let batch = self.inner.batch.lock().take()?;
        // Seal: expose the pending ops to later commits' trigger reads
        // until the physical store writes land (publication may overlap
        // the next transaction's firing).
        let seal = self.inner.next_seal.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut in_flight = self.inner.in_flight.lock();
            for (key, op, _) in &batch.entries {
                in_flight.insert(key.clone(), (seal, op.clone()));
            }
        }
        Some(PreparedEffectBatch {
            inner: Arc::clone(&self.inner),
            seal,
            entries: batch.entries,
            backend_reads: batch.backend_reads,
            buffered_mutations: batch.buffered_mutations,
        })
    }

    /// Drops the active batch without publishing anything — the aborted
    /// transaction leaves the cache byte-identical. Returns what was
    /// discarded.
    pub fn discard_effect_batch(&self) -> EffectBatchSummary {
        let Some(batch) = self.inner.batch.lock().take() else {
            return EffectBatchSummary::default();
        };
        EffectBatchSummary {
            keys_flushed: 0,
            backend_reads: batch.backend_reads,
            buffered_mutations: batch.buffered_mutations,
        }
    }

    /// Issues a read-through fill lease for `key`: the caller is about to
    /// compute the key's value from the database and cache it with
    /// [`CacheHandle::fill`]. Any mutation of the key before the fill
    /// lands revokes the lease, so a fill computed from pre-mutation
    /// state can never overwrite fresher data (the classic stale-fill
    /// race under concurrent writers).
    pub fn lease(&self, key: &str) -> u64 {
        // Tokens come from one cluster-global monotonic counter, not a
        // per-shard one: they are unique across all lease shards, so a
        // token minted for a key in one shard can never accidentally
        // validate a fill for a key in another.
        let token = self.inner.next_lease.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner
            .lease_shard(key)
            .lock()
            .outstanding
            .insert(key.to_owned(), token);
        token
    }

    /// Cancels a lease this caller took but can no longer complete (its
    /// database read failed) — only if `token` is still the outstanding
    /// one, so a newer reader's lease survives.
    pub fn cancel_lease(&self, key: &str, token: u64) {
        let mut leases = self.inner.lease_shard(key).lock();
        if leases.outstanding.get(key) == Some(&token) {
            leases.outstanding.remove(key);
        }
    }

    /// Outstanding (not yet revoked or consumed) fill leases.
    pub fn outstanding_leases(&self) -> usize {
        self.inner
            .leases
            .iter()
            .map(|s| s.lock().outstanding.len())
            .sum()
    }

    /// Advances the logical clock used for TTL expiry.
    pub fn set_now(&self, now: u64) {
        self.inner.now.store(now, Ordering::Relaxed);
    }

    /// Which server a key lands on (diagnostics and tests).
    pub fn server_for(&self, key: &str) -> usize {
        self.inner.server_for(key)
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.inner.servers.len()
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> ClusterStats {
        let mut agg = ClusterStats::default();
        for node in &self.inner.servers {
            agg.store.merge(&node.store.stats());
            agg.bytes_used += node.store.bytes_used();
            agg.items += node.store.len();
            if !node.alive.load(Ordering::Relaxed) {
                agg.dead_nodes += 1;
            }
        }
        agg.replica_reads = self.inner.replica_reads.load(Ordering::Relaxed);
        agg.hot_key_promotions = self.inner.promotions.load(Ordering::Relaxed);
        agg.replicated_keys = self.inner.replicas.len();
        agg
    }

    /// Per-node statistics, in server-index order.
    pub fn per_server_stats(&self) -> Vec<ServerStats> {
        self.inner
            .servers
            .iter()
            .enumerate()
            .map(|(index, node)| ServerStats {
                index,
                alive: node.alive.load(Ordering::Relaxed),
                store: node.store.stats(),
                bytes_used: node.store.bytes_used(),
                items: node.store.len(),
            })
            .collect()
    }

    /// Zeroes all server counters (between warm-up and measurement).
    /// Keeps stored data, the replica table, and the hot-key sketch:
    /// hotness learned during warm-up stays learned.
    pub fn reset_stats(&self) {
        for node in &self.inner.servers {
            node.store.reset_stats();
        }
        self.inner.replica_reads.store(0, Ordering::Relaxed);
        self.inner.promotions.store(0, Ordering::Relaxed);
    }

    /// Empties every server.
    pub fn flush_all(&self) {
        for node in &self.inner.servers {
            node.store.flush_all();
        }
    }

    /// Total configured capacity across servers (sums to the exact
    /// [`ClusterConfig::capacity_bytes`] budget — no remainder lost).
    pub fn capacity_bytes(&self) -> usize {
        self.inner
            .servers
            .iter()
            .map(|n| n.store.capacity_bytes())
            .sum()
    }

    /// Marks a node dead: its memory is wiped (a real node crash loses
    /// RAM), keys it owned rehash to ring successors as misses, and hot
    /// keys it carried are re-replicated from surviving copies. Returns
    /// false if the node is already dead or is the last one alive.
    pub fn kill_node(&self, idx: usize) -> bool {
        let inner = &self.inner;
        if idx >= inner.servers.len() {
            return false;
        }
        let alive_elsewhere = inner
            .servers
            .iter()
            .enumerate()
            .any(|(i, n)| i != idx && n.alive.load(Ordering::Relaxed));
        if !alive_elsewhere {
            return false;
        }
        if !inner.servers[idx].alive.swap(false, Ordering::SeqCst) {
            return false;
        }
        inner.servers[idx].store.flush_all();
        inner.rebalance_replicas();
        true
    }

    /// Brings a dead node back: it rejoins the ring *cold* (its store is
    /// flushed — anything it held predates the failure), keys whose arc
    /// it owns rehash back to it as misses, and entries those keys left
    /// on interim successors are dropped so a later failover can never
    /// resurrect them stale. Returns false if the node was already alive.
    pub fn revive_node(&self, idx: usize) -> bool {
        let inner = &self.inner;
        if idx >= inner.servers.len() {
            return false;
        }
        if inner.servers[idx].alive.load(Ordering::Relaxed) {
            return false;
        }
        inner.servers[idx].store.flush_all();
        inner.servers[idx].alive.store(true, Ordering::SeqCst);
        inner.drop_rehashed_keys(idx);
        inner.rebalance_replicas();
        true
    }

    /// Whether a node is alive.
    pub fn is_alive(&self, idx: usize) -> bool {
        self.inner.alive(idx)
    }

    /// How many nodes are alive.
    pub fn alive_count(&self) -> usize {
        self.inner
            .servers
            .iter()
            .filter(|n| n.alive.load(Ordering::Relaxed))
            .count()
    }

    /// The replica set for `key` (primary first), if it was promoted.
    pub fn replica_set(&self, key: &str) -> Option<Vec<usize>> {
        self.inner.replicas.get(key).map(|s| s.to_vec())
    }

    /// True when every *present* copy of `key` across its replica set
    /// holds byte-identical data (an evicted/missing copy is coherent:
    /// it refills on next read). Keys without a replica set are
    /// trivially coherent.
    pub fn replicas_coherent(&self, key: &str) -> bool {
        let Some(set) = self.inner.replicas.get(key) else {
            return true;
        };
        let now = self.inner.now.load(Ordering::Relaxed);
        let mut first: Option<Bytes> = None;
        for &m in set.iter() {
            if !self.inner.alive(m) {
                continue;
            }
            let copy = self.inner.servers[m]
                .store
                .with(key, |s| s.peek(key, now).map(|(d, _)| d));
            if let Some(d) = copy {
                match &first {
                    None => first = Some(d),
                    Some(f) if *f != d => return false,
                    Some(_) => {}
                }
            }
        }
        true
    }
}

/// A sealed effect batch removed from the cluster by
/// [`CacheCluster::take_effect_batch`], ready to publish. The summary is
/// fixed at take time, so accounting can settle under the engine latch
/// while the physical stores are touched after it drops.
pub struct PreparedEffectBatch {
    inner: Arc<ClusterInner>,
    /// This batch's `in_flight` seal sequence (entries are cleared after
    /// their store writes, unless a later seal already replaced them).
    seal: u64,
    entries: Vec<(String, PendingOp, u64)>,
    backend_reads: u64,
    buffered_mutations: u64,
}

impl std::fmt::Debug for PreparedEffectBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedEffectBatch")
            .field("keys", &self.entries.len())
            .finish()
    }
}

impl PreparedEffectBatch {
    /// The keys this batch will publish, in first-touch order. The
    /// commit pipeline locks these (sorted canonically) before the flush.
    pub fn keys(&self) -> Vec<String> {
        self.entries.iter().map(|(k, _, _)| k.clone()).collect()
    }

    /// True when nothing was buffered (read-only or trigger-less commit).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.backend_reads == 0 && self.buffered_mutations == 0
    }

    /// What publishing will amount to (known before it happens).
    pub fn summary(&self) -> EffectBatchSummary {
        EffectBatchSummary {
            keys_flushed: self.entries.len() as u64,
            backend_reads: self.backend_reads,
            buffered_mutations: self.buffered_mutations,
        }
    }

    /// Publishes: one physical set/delete per touched key, in first-touch
    /// order. Each key's fill lease is revoked *before* its store write,
    /// so a concurrent read-through fill computed from pre-commit state
    /// loses the race instead of resurrecting stale data.
    ///
    /// Ownership rule: keys a commit pipeline maintains belong to the
    /// pipeline — application code must reach them only through
    /// lease-checked fills ([`CacheHandle::fill`]) or CAS. A plain
    /// application `set`/`delete` landing in the seal-to-publish window
    /// would be overwritten by the sealed value (the engine's view of
    /// the latest commit); the shipped middleware respects this
    /// everywhere.
    pub fn publish(self) -> EffectBatchSummary {
        let summary = self.summary();
        for (key, op, _) in self.entries {
            // store_set/store_delete revoke the key's fill lease and
            // update *every* replica while holding the key's lease-shard
            // mutex — the publication is atomic per key with respect to
            // fills, other writers, and replica-set changes.
            match op {
                PendingOp::Set { data, ttl } => {
                    if self.inner.store_set(&key, data, ttl).is_err() {
                        // Mirror the trigger fallback: when a value cannot
                        // be stored, invalidate rather than leave staleness.
                        self.inner.store_delete(&key);
                    }
                }
                PendingOp::Delete => {
                    self.inner.store_delete(&key);
                }
            }
            // The store now holds this batch's value; retire the sealed
            // entry unless a later commit already replaced it.
            let mut in_flight = self.inner.in_flight.lock();
            if in_flight.get(&key).map(|(s, _)| *s) == Some(self.seal) {
                in_flight.remove(&key);
            }
        }
        summary
    }
}

impl ClusterInner {
    /// The latest sealed-but-unpublished pending op for `key`, if any —
    /// what commit-time trigger reads must observe instead of the store.
    fn sealed_pending(&self, key: &str) -> Option<PendingOp> {
        self.in_flight.lock().get(key).map(|(_, op)| op.clone())
    }

    /// Runs a trigger-origin fall-through store read; on a miss, revokes
    /// any outstanding fill lease for the key *atomically with the miss
    /// observation* (the read and the revocation share the key's
    /// lease-shard lock, which fills also hold across their
    /// validate-and-write). A trigger that finds the key absent makes no
    /// cache update for it, so a read-through fill computed from the
    /// pre-commit database must not be allowed to land afterwards —
    /// without this, the fill resurrects a stale value no later
    /// publication ever repairs.
    fn read_with_miss_revoke<T>(&self, key: &str, read: impl FnOnce() -> Option<T>) -> Option<T> {
        let mut shard = self.lease_shard(key).lock();
        let v = read();
        if v.is_none() {
            shard.outstanding.remove(key);
        }
        v
    }

    fn lease_shard(&self, key: &str) -> &Mutex<LeaseTable> {
        &self.leases[hash_key(key) as usize % LEASE_SHARDS]
    }

    fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn alive(&self, idx: usize) -> bool {
        self.servers[idx].alive.load(Ordering::Relaxed)
    }

    /// Index of the first ring position at or after `key`'s hash.
    fn ring_start(&self, key: &str) -> usize {
        let h = hash_key(key);
        match self.ring.binary_search_by(|(pos, _)| pos.cmp(&h)) {
            Ok(i) => i,
            Err(i) if i < self.ring.len() => i,
            Err(_) => 0,
        }
    }

    /// The alive server owning `key`'s arc: the ring successor, walking
    /// past dead nodes. With every node dead (prevented by `kill_node`)
    /// it falls back to the raw ring owner.
    fn server_for(&self, key: &str) -> usize {
        // One server owns every arc, and kill_node refuses to take the
        // last alive node down — skip the hash + ring walk entirely.
        if self.servers.len() == 1 {
            return 0;
        }
        let start = self.ring_start(key);
        let n = self.ring.len();
        for off in 0..n {
            let (_, s) = self.ring[(start + off) % n];
            if self.alive(s) {
                return s;
            }
        }
        self.ring[start].1
    }

    /// The first `replica_count` distinct alive servers on `key`'s ring
    /// walk, primary first.
    fn replica_members(&self, key: &str) -> Vec<usize> {
        let start = self.ring_start(key);
        let n = self.ring.len();
        let mut out = Vec::with_capacity(self.replica_count);
        for off in 0..n {
            let (_, s) = self.ring[(start + off) % n];
            if self.alive(s) && !out.contains(&s) {
                out.push(s);
                if out.len() == self.replica_count {
                    break;
                }
            }
        }
        out
    }

    /// Every server a write to `key` must land on: the whole alive
    /// replica set for hot keys, else just the primary.
    fn write_targets(&self, key: &str) -> Vec<usize> {
        if let Some(set) = self.replicas.get(key) {
            let live: Vec<usize> = set.iter().copied().filter(|&s| self.alive(s)).collect();
            if !live.is_empty() {
                return live;
            }
        }
        vec![self.server_for(key)]
    }

    /// Which server serves a read of `key`: round-robin over alive
    /// replicas for hot keys, else the primary.
    fn read_server_for(&self, key: &str) -> usize {
        // With replication off the table is permanently empty; skip the
        // per-read lock + probe entirely (the common fast path).
        if self.replica_count > 1 {
            if let Some(set) = self.replicas.get(key) {
                let pick = self.replicas.pick(&set, |s| self.alive(s));
                if pick != set[0] {
                    self.replica_reads.fetch_add(1, Ordering::Relaxed);
                }
                return pick;
            }
        }
        self.server_for(key)
    }

    /// Runs `f` against `key`'s primary store shard (CAS-token reads and
    /// trigger fall-through reads need the authoritative copy).
    fn with_primary<T>(&self, key: &str, f: impl FnOnce(&mut CacheStore, u64) -> T) -> T {
        let idx = self.server_for(key);
        let now = self.now();
        self.servers[idx].store.with(key, |s| f(s, now))
    }

    /// Runs `f` against whichever store shard serves reads of `key`.
    fn with_read<T>(&self, key: &str, f: impl FnOnce(&mut CacheStore, u64) -> T) -> T {
        let idx = self.read_server_for(key);
        let now = self.now();
        self.servers[idx].store.with(key, |s| f(s, now))
    }

    // ----- multi-replica mutations -----
    //
    // Every mutation of a key holds the key's lease-shard mutex across
    // the lease revocation AND all replica store writes. Fills and the
    // promotion/rebalance copies hold the same mutex, so for any one
    // key, multi-copy updates are atomic with respect to each other:
    // no interleaving can leave two replicas with values from two
    // different writers. Lock order is always lease shard -> one store
    // shard at a time, never the reverse, so no deadlock is possible.

    /// Unconditional store of `data` on every replica of `key`.
    fn store_set(&self, key: &str, data: Bytes, ttl: Option<u64>) -> Result<()> {
        let mut shard = self.lease_shard(key).lock();
        shard.outstanding.remove(key);
        let now = self.now();
        let mut first: Option<Result<()>> = None;
        for idx in self.write_targets(key) {
            let r = self.servers[idx]
                .store
                .with(key, |s| s.set(key, data.clone(), ttl, now));
            if first.is_none() {
                first = Some(r);
            }
        }
        first.unwrap_or(Ok(()))
    }

    /// Deletes `key` from every replica; returns whether the primary
    /// copy existed.
    fn store_delete(&self, key: &str) -> bool {
        let mut shard = self.lease_shard(key).lock();
        shard.outstanding.remove(key);
        let mut first: Option<bool> = None;
        for idx in self.write_targets(key) {
            let r = self.servers[idx].store.with(key, |s| s.delete(key));
            if first.is_none() {
                first = Some(r);
            }
        }
        first.unwrap_or(false)
    }

    /// Add on the primary; on success the value is mirrored to the
    /// other replicas (plain set — add's only-if-absent contract is
    /// decided by the authoritative copy).
    fn store_add(&self, key: &str, data: Bytes, ttl: Option<u64>) -> Result<()> {
        let mut shard = self.lease_shard(key).lock();
        shard.outstanding.remove(key);
        let now = self.now();
        let targets = self.write_targets(key);
        let primary = targets[0];
        self.servers[primary]
            .store
            .with(key, |s| s.add(key, data.clone(), ttl, now))?;
        for &idx in &targets[1..] {
            let _ = self.servers[idx]
                .store
                .with(key, |s| s.set(key, data.clone(), ttl, now));
        }
        Ok(())
    }

    /// CAS on the primary; on success the new value is mirrored to the
    /// other replicas.
    fn store_cas(&self, key: &str, data: Bytes, token: u64, ttl: Option<u64>) -> Result<()> {
        let mut shard = self.lease_shard(key).lock();
        shard.outstanding.remove(key);
        let now = self.now();
        let targets = self.write_targets(key);
        let primary = targets[0];
        self.servers[primary]
            .store
            .with(key, |s| s.cas(key, data.clone(), token, ttl, now))?;
        for &idx in &targets[1..] {
            let _ = self.servers[idx]
                .store
                .with(key, |s| s.set(key, data.clone(), ttl, now));
        }
        Ok(())
    }

    /// Increment on the primary; the resulting count is mirrored to the
    /// other replicas with its remaining TTL.
    fn store_incr(&self, key: &str, delta: i64) -> Result<Option<i64>> {
        let mut shard = self.lease_shard(key).lock();
        shard.outstanding.remove(key);
        let now = self.now();
        let targets = self.write_targets(key);
        let primary = targets[0];
        let new = self.servers[primary]
            .store
            .with(key, |s| s.incr(key, delta, now))?;
        if let Some(n) = new {
            let ttl = self.servers[primary]
                .store
                .with(key, |s| s.peek(key, now).and_then(|(_, ttl)| ttl));
            let data = Payload::Count(n).encode();
            for &idx in &targets[1..] {
                let _ = self.servers[idx]
                    .store
                    .with(key, |s| s.set(key, data.clone(), ttl, now));
            }
        }
        Ok(new)
    }

    // ----- hot-key replication -----

    /// Feeds the hot-key sketch from an application read and promotes
    /// the key once it crosses the threshold.
    fn record_access(&self, key: &str) {
        if self.replica_count <= 1 {
            return;
        }
        if self.hot.record(key) && self.replicas.get(key).is_none() {
            self.promote(key);
        }
    }

    /// Installs a replica set for a newly hot key and copies its
    /// current value to the secondaries, atomically with respect to
    /// writers of the key (same lease-shard mutex).
    fn promote(&self, key: &str) {
        let _shard = self.lease_shard(key).lock();
        if self.replicas.get(key).is_some() {
            return;
        }
        let members = self.replica_members(key);
        if members.len() < 2 {
            return;
        }
        let now = self.now();
        let value = self.servers[members[0]]
            .store
            .with(key, |s| s.peek(key, now));
        if let Some((data, ttl)) = value {
            for &m in &members[1..] {
                let _ = self.servers[m]
                    .store
                    .with(key, |s| s.set(key, data.clone(), ttl, now));
            }
        }
        self.replicas.insert(key, members);
        self.promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Recomputes every hot key's replica set after a membership change,
    /// copying the surviving value onto new members and dropping copies
    /// from members that left the set. Runs per key under that key's
    /// lease-shard mutex, so it serializes with writers and fills.
    fn rebalance_replicas(&self) {
        for key in self.replicas.keys() {
            let _shard = self.lease_shard(&key).lock();
            let Some(old) = self.replicas.get(&key) else {
                continue;
            };
            let members = self.replica_members(&key);
            if members.len() < 2 {
                // Not enough alive nodes to replicate: demote. Stray
                // copies (if any) are on the sole alive node anyway.
                self.replicas.remove(&key);
                continue;
            }
            let now = self.now();
            // Any alive holder has a maintained (fresh) copy: writes go
            // to all alive members, and a revived node rejoins flushed.
            let mut value = None;
            for &m in old.iter().chain(members.iter()) {
                if !self.alive(m) {
                    continue;
                }
                if let Some(v) = self.servers[m].store.with(&key, |s| s.peek(&key, now)) {
                    value = Some(v);
                    break;
                }
            }
            if let Some((data, ttl)) = value {
                for &m in &members {
                    let missing = self.servers[m]
                        .store
                        .with(&key, |s| s.peek(&key, now).is_none());
                    if missing {
                        let _ = self.servers[m]
                            .store
                            .with(&key, |s| s.set(&key, data.clone(), ttl, now));
                    }
                }
            }
            // Members that left the set must not keep a copy a later
            // failover could serve stale.
            for &m in old.iter() {
                if self.alive(m) && !members.contains(&m) {
                    self.servers[m].store.with(&key, |s| {
                        s.delete(&key);
                    });
                }
            }
            self.replicas.insert(&key, members);
        }
    }

    /// After `revived` rejoins: every entry another server holds for a
    /// key whose arc now belongs to `revived` is unreachable via normal
    /// routing — drop it so a later failover cannot resurrect it stale.
    /// (Replica-set members keep their copies; the replica table routes
    /// to them explicitly and `rebalance_replicas` prunes those.)
    fn drop_rehashed_keys(&self, revived: usize) {
        for (i, node) in self.servers.iter().enumerate() {
            if i == revived || !node.alive.load(Ordering::Relaxed) {
                continue;
            }
            for key in node.store.keys() {
                if self.server_for(&key) != revived {
                    continue;
                }
                let kept_by_replica_set =
                    self.replicas.get(&key).is_some_and(|set| set.contains(&i));
                if !kept_by_replica_set {
                    node.store.with(&key, |s| {
                        s.delete(&key);
                    });
                }
            }
        }
    }
}

/// How a batched [`CacheHandle`] operation routed: resolved entirely
/// from the overlay (`Done`), or falling through to a real store with
/// optional carry-over context (`Fallthrough`).
enum Routed<T, F = ()> {
    Done(T),
    Fallthrough(F),
}

/// A client handle bound to an origin (application or trigger).
#[derive(Clone)]
pub struct CacheHandle {
    inner: Arc<ClusterInner>,
    bump: bool,
    origin: CacheOrigin,
}

impl std::fmt::Debug for CacheHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheHandle")
            .field("bump", &self.bump)
            .field("origin", &self.origin)
            .finish()
    }
}

impl CacheHandle {
    /// Runs `f` against the active effect batch when this handle's
    /// operations are subject to buffering (trigger origin, batch open);
    /// otherwise returns `None` and the caller goes to the stores.
    fn with_batch<T>(&self, f: impl FnOnce(&mut EffectBatch) -> T) -> Option<T> {
        if self.origin != CacheOrigin::Trigger {
            return None;
        }
        let mut guard = self.inner.batch.lock();
        guard.as_mut().map(f)
    }

    /// Fetches raw bytes. Application-origin reads feed the hot-key
    /// sketch and may be served by any replica of a hot key;
    /// trigger-origin reads go through [`CacheHandle::gets`] so they
    /// observe batch overlays and sealed in-flight values.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        if self.origin == CacheOrigin::Trigger {
            return self.gets(key).map(|v| v.data);
        }
        self.inner.record_access(key);
        self.inner
            .with_read(key, |s, now| s.get_as(key, now, self.bump, self.origin))
    }

    /// Fetches raw bytes plus the CAS token (memcached `gets`). During a
    /// transactional effect batch, trigger reads see their own buffered
    /// writes first and fall through to a real store otherwise.
    pub fn gets(&self, key: &str) -> Option<ValueWithCas> {
        let routed = self.with_batch(|b| match b.entry(key) {
            Some((PendingOp::Set { data, .. }, token)) => Routed::Done(Some(ValueWithCas {
                data: data.clone(),
                cas: token,
            })),
            Some((PendingOp::Delete, _)) => Routed::Done(None),
            None => {
                b.backend_reads += 1;
                Routed::Fallthrough(())
            }
        });
        match routed {
            Some(Routed::Done(v)) => v,
            Some(Routed::Fallthrough(())) => match self.inner.sealed_pending(key) {
                // A prior commit sealed this key but its store write is
                // still in flight: its value is the one to read.
                Some(PendingOp::Set { data, .. }) => Some(ValueWithCas {
                    data,
                    cas: SEALED_TOKEN,
                }),
                Some(PendingOp::Delete) => None,
                None => self.inner.read_with_miss_revoke(key, || {
                    self.inner
                        .with_primary(key, |s, now| s.gets_as(key, now, self.bump, self.origin))
                }),
            },
            // CAS tokens are per-store: a `gets` outside any batch reads
            // the primary so the token always validates there.
            None => self
                .inner
                .with_primary(key, |s, now| s.gets_as(key, now, self.bump, self.origin)),
        }
    }

    /// Stores raw bytes.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::ValueTooLarge`] for oversized values.
    pub fn set(&self, key: &str, data: Bytes, ttl: Option<u64>) -> Result<()> {
        if self
            .with_batch(|b| {
                b.put(
                    key,
                    PendingOp::Set {
                        data: data.clone(),
                        ttl,
                    },
                );
            })
            .is_some()
        {
            return Ok(());
        }
        self.inner.store_set(key, data, ttl)
    }

    /// Stores only if absent.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::AlreadyStored`] if present.
    pub fn add(&self, key: &str, data: Bytes, ttl: Option<u64>) -> Result<()> {
        let routed: Option<Routed<Result<()>, bool>> = self.with_batch(|b| match b.entry(key) {
            Some((PendingOp::Set { .. }, _)) => Routed::Done(Err(crate::CacheError::AlreadyStored)),
            Some((PendingOp::Delete, _)) => Routed::Fallthrough(true),
            None => {
                b.backend_reads += 1;
                Routed::Fallthrough(false)
            }
        });
        match routed {
            Some(Routed::Done(r)) => r,
            Some(Routed::Fallthrough(deleted)) => {
                let exists = match self.inner.sealed_pending(key) {
                    Some(PendingOp::Set { .. }) => true,
                    Some(PendingOp::Delete) => false,
                    None => self.inner.with_primary(key, |s, now| s.contains(key, now)),
                };
                if !deleted && exists {
                    return Err(crate::CacheError::AlreadyStored);
                }
                self.with_batch(|b| {
                    b.put(key, PendingOp::Set { data, ttl });
                });
                Ok(())
            }
            None => self.inner.store_add(key, data, ttl),
        }
    }

    /// Compare-and-swap store.
    ///
    /// During a transactional effect batch, a CAS against a buffered
    /// entry checks the buffered token; a CAS against a store-read token
    /// is accepted blindly — the engine's commit lock serializes every
    /// writer, so the token a trigger just read cannot have gone stale.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::CasConflict`] when the token is stale.
    pub fn cas(&self, key: &str, data: Bytes, token: u64, ttl: Option<u64>) -> Result<()> {
        let routed = self.with_batch(|b| {
            match b.entry(key) {
                Some((_, buffered_token)) if buffered_token != token => {
                    return Err(crate::CacheError::CasConflict);
                }
                _ => {}
            }
            b.put(
                key,
                PendingOp::Set {
                    data: data.clone(),
                    ttl,
                },
            );
            Ok(())
        });
        match routed {
            Some(r) => r,
            None => self.inner.store_cas(key, data, token, ttl),
        }
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        let routed = self.with_batch(|b| match b.entry(key) {
            Some((PendingOp::Set { .. }, _)) => {
                b.put(key, PendingOp::Delete);
                Routed::Done(true)
            }
            Some((PendingOp::Delete, _)) => Routed::Done(false),
            None => {
                b.backend_reads += 1;
                Routed::Fallthrough(())
            }
        });
        match routed {
            Some(Routed::Done(existed)) => existed,
            Some(Routed::Fallthrough(())) => {
                let existed = match self.inner.sealed_pending(key) {
                    Some(PendingOp::Set { .. }) => true,
                    Some(PendingOp::Delete) => false,
                    None => self.inner.with_primary(key, |s, now| s.contains(key, now)),
                };
                self.with_batch(|b| {
                    b.put(key, PendingOp::Delete);
                });
                existed
            }
            None => self.inner.store_delete(key),
        }
    }

    /// Increments a count payload; `None` on miss.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::Codec`] if the entry is not a count.
    pub fn incr(&self, key: &str, delta: i64) -> Result<Option<i64>> {
        let routed = self.with_batch(|b| match b.entry(key) {
            Some((PendingOp::Set { data, ttl }, _)) => {
                let ttl = *ttl;
                let payload = match Payload::decode(data) {
                    Ok(p) => p,
                    Err(e) => return Routed::Done(Err(e)),
                };
                let Some(n) = payload.as_count() else {
                    return Routed::Done(Err(crate::CacheError::Codec(
                        "incr target is not a count".into(),
                    )));
                };
                let new = n + delta;
                b.put(
                    key,
                    PendingOp::Set {
                        data: Payload::Count(new).encode(),
                        ttl,
                    },
                );
                Routed::Done(Ok(Some(new)))
            }
            Some((PendingOp::Delete, _)) => Routed::Done(Ok(None)),
            None => {
                b.backend_reads += 1;
                Routed::Fallthrough(())
            }
        });
        match routed {
            Some(Routed::Done(r)) => r,
            Some(Routed::Fallthrough(())) => {
                let current = match self.inner.sealed_pending(key) {
                    Some(PendingOp::Set { data, ttl }) => Some((data, ttl)),
                    Some(PendingOp::Delete) => None,
                    None => self.inner.read_with_miss_revoke(key, || {
                        self.inner
                            .with_primary(key, |s, now| s.get_with_ttl(key, now, self.bump))
                    }),
                };
                let Some((data, ttl)) = current else {
                    return Ok(None);
                };
                let n = Payload::decode(&data)?
                    .as_count()
                    .ok_or_else(|| crate::CacheError::Codec("incr target is not a count".into()))?;
                let new = n + delta;
                self.with_batch(|b| {
                    b.put(
                        key,
                        PendingOp::Set {
                            data: Payload::Count(new).encode(),
                            ttl,
                        },
                    );
                });
                Ok(Some(new))
            }
            None => self.inner.store_incr(key, delta),
        }
    }

    /// True if the key currently holds a live entry.
    pub fn contains(&self, key: &str) -> bool {
        let routed = self.with_batch(|b| match b.entry(key) {
            Some((PendingOp::Set { .. }, _)) => Routed::Done(true),
            Some((PendingOp::Delete, _)) => Routed::Done(false),
            None => {
                b.backend_reads += 1;
                Routed::Fallthrough(())
            }
        });
        match routed {
            Some(Routed::Done(v)) => v,
            Some(Routed::Fallthrough(())) => match self.inner.sealed_pending(key) {
                Some(PendingOp::Set { .. }) => true,
                Some(PendingOp::Delete) => false,
                None => self
                    .inner
                    .read_with_miss_revoke(key, || {
                        self.inner
                            .with_primary(key, |s, now| s.contains(key, now))
                            .then_some(())
                    })
                    .is_some(),
            },
            None => self.inner.with_primary(key, |s, now| s.contains(key, now)),
        }
    }

    /// Fetches and decodes a typed payload.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::Codec`] if stored bytes do not decode.
    pub fn get_payload(&self, key: &str) -> Result<Option<Payload>> {
        match self.get(key) {
            Some(b) => Ok(Some(Payload::decode(&b)?)),
            None => Ok(None),
        }
    }

    /// Fetches a typed payload plus CAS token.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::Codec`] if stored bytes do not decode.
    pub fn gets_payload(&self, key: &str) -> Result<Option<(Payload, u64)>> {
        match self.gets(key) {
            Some(v) => Ok(Some((Payload::decode(&v.data)?, v.cas))),
            None => Ok(None),
        }
    }

    /// Encodes and stores a typed payload.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::ValueTooLarge`] for oversized values.
    pub fn set_payload(&self, key: &str, payload: &Payload, ttl: Option<u64>) -> Result<()> {
        self.set(key, payload.encode(), ttl)
    }

    /// Completes a read-through fill under `lease` (from
    /// [`CacheCluster::lease`]): stores `data` only if no mutation of the
    /// key revoked the lease since it was issued. Returns whether the
    /// fill landed — `false` means a concurrent writer published fresher
    /// data and the stale fill was dropped.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::ValueTooLarge`] for oversized values (the
    /// lease is consumed either way).
    pub fn fill(&self, key: &str, data: Bytes, ttl: Option<u64>, lease: u64) -> Result<bool> {
        let mut leases = self.inner.lease_shard(key).lock();
        if leases.outstanding.get(key) != Some(&lease) {
            return Ok(false);
        }
        leases.outstanding.remove(key);
        // The store writes happen under the key's lease-shard lock: a
        // mutation of this key arriving later must first revoke (waiting
        // on the same shard), so its store writes are ordered after this
        // fill and win. Hot keys fill every alive replica, so a replica
        // read after the fill cannot miss what the primary has.
        let now = self.inner.now();
        let mut first: Option<Result<()>> = None;
        for idx in self.inner.write_targets(key) {
            let r = self.inner.servers[idx]
                .store
                .with(key, |s| s.set(key, data.clone(), ttl, now));
            if first.is_none() {
                first = Some(r);
            }
        }
        first.unwrap_or(Ok(()))?;
        Ok(true)
    }

    /// Encodes and [`CacheHandle::fill`]s a typed payload.
    ///
    /// # Errors
    ///
    /// Same as [`CacheHandle::fill`].
    pub fn fill_payload(
        &self,
        key: &str,
        payload: &Payload,
        ttl: Option<u64>,
        lease: u64,
    ) -> Result<bool> {
        self.fill(key, payload.encode(), ttl, lease)
    }

    /// Encodes and CAS-stores a typed payload.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::CasConflict`] when the token is stale.
    pub fn cas_payload(
        &self,
        key: &str,
        payload: &Payload,
        token: u64,
        ttl: Option<u64>,
    ) -> Result<()> {
        self.cas(key, payload.encode(), token, ttl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheError;
    use genie_storage::row;

    fn cluster(servers: usize, capacity: usize) -> CacheCluster {
        CacheCluster::new(ClusterConfig {
            servers,
            capacity_bytes: capacity,
            ..Default::default()
        })
    }

    #[test]
    fn single_logical_cache_across_servers() {
        let c = cluster(4, 1024 * 1024);
        let app = c.handle(CacheOrigin::Application);
        let trig = c.handle(CacheOrigin::Trigger);
        for i in 0..100 {
            app.set_payload(&format!("k{i}"), &Payload::Count(i), None)
                .unwrap();
        }
        // Any handle sees every key, wherever it hashed to.
        for i in 0..100 {
            assert_eq!(
                trig.get_payload(&format!("k{i}"))
                    .unwrap()
                    .unwrap()
                    .as_count(),
                Some(i)
            );
        }
        assert_eq!(c.stats().items, 100);
    }

    #[test]
    fn keys_spread_over_servers() {
        let c = cluster(4, 1024 * 1024);
        let mut seen = [false; 4];
        for i in 0..200 {
            seen[c.server_for(&format!("key:{i}"))] = true;
        }
        assert!(seen.iter().all(|&s| s), "all servers should receive keys");
    }

    #[test]
    fn placement_is_deterministic() {
        let a = cluster(5, 1024 * 1024);
        let b = cluster(5, 1024 * 1024);
        for i in 0..50 {
            let k = format!("key:{i}");
            assert_eq!(a.server_for(&k), b.server_for(&k));
        }
    }

    #[test]
    fn consistent_hash_remaps_few_keys_on_grow() {
        let a = cluster(4, 1024 * 1024);
        let b = cluster(5, 1024 * 1024);
        let n = 1000;
        let moved = (0..n)
            .filter(|i| {
                let k = format!("key:{i}");
                a.server_for(&k) != b.server_for(&k)
            })
            .count();
        // Ideal is 1/5 = 20%; allow generous slack for hash variance but
        // rule out the ~80% a modulo scheme would move.
        assert!(
            moved < n / 2,
            "consistent hashing moved {moved}/{n} keys on server add"
        );
    }

    #[test]
    fn rows_payload_roundtrip_through_cluster() {
        let c = cluster(2, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        let rows = Payload::Rows(vec![row![1i64, "post one"], row![2i64, "post two"]]);
        h.set_payload("wall:1", &rows, None).unwrap();
        assert_eq!(h.get_payload("wall:1").unwrap().unwrap(), rows);
    }

    #[test]
    fn cas_through_cluster() {
        let c = cluster(3, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        h.set_payload("k", &Payload::Count(1), None).unwrap();
        let (_, token) = h.gets_payload("k").unwrap().unwrap();
        h.cas_payload("k", &Payload::Count(2), token, None).unwrap();
        assert!(matches!(
            h.cas_payload("k", &Payload::Count(3), token, None),
            Err(CacheError::CasConflict)
        ));
    }

    #[test]
    fn trigger_origin_respects_bump_config() {
        // bump_lru_on_trigger=false: trigger reads must not rescue keys.
        let c = CacheCluster::new(ClusterConfig {
            servers: 1,
            capacity_bytes: 230,
            item_limit_bytes: 1024,
            vnodes: 8,
            bump_lru_on_trigger: false,
            // One stripe: all three keys share one eviction domain.
            shards_per_server: 1,
            ..Default::default()
        });
        let app = c.handle(CacheOrigin::Application);
        let trig = c.handle(CacheOrigin::Trigger);
        app.set("a", Bytes::from(vec![0u8; 10]), None).unwrap();
        app.set("b", Bytes::from(vec![0u8; 10]), None).unwrap();
        app.set("c", Bytes::from(vec![0u8; 10]), None).unwrap();
        trig.get("a"); // does NOT bump
        app.set("d", Bytes::from(vec![0u8; 10]), None).unwrap();
        assert!(app.get("a").is_none(), "a stayed coldest and was evicted");
    }

    #[test]
    fn ttl_uses_cluster_clock() {
        let c = cluster(1, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        c.set_now(1_000);
        h.set("k", Bytes::from_static(b"v"), Some(500)).unwrap();
        c.set_now(1_400);
        assert!(h.get("k").is_some());
        c.set_now(1_500);
        assert!(h.get("k").is_none());
    }

    #[test]
    fn stats_aggregate_and_reset() {
        let c = cluster(2, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        h.set("a", Bytes::from_static(b"1"), None).unwrap();
        h.get("a");
        h.get("missing");
        let st = c.stats();
        assert_eq!(st.store.hits, 1);
        assert_eq!(st.store.misses, 1);
        assert!((st.hit_ratio() - 0.5).abs() < 1e-9);
        c.reset_stats();
        assert_eq!(c.stats().store.gets, 0);
        // Data survives a stats reset.
        assert!(h.get("a").is_some());
    }

    #[test]
    fn flush_all_empties_every_server() {
        let c = cluster(3, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        for i in 0..30 {
            h.set(&format!("k{i}"), Bytes::from_static(b"v"), None)
                .unwrap();
        }
        c.flush_all();
        assert_eq!(c.stats().items, 0);
    }

    #[test]
    fn incr_and_delete_through_cluster() {
        let c = cluster(2, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        h.set_payload("n", &Payload::Count(0), None).unwrap();
        assert_eq!(h.incr("n", 7).unwrap(), Some(7));
        assert!(h.delete("n"));
        assert_eq!(h.incr("n", 1).unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = CacheCluster::new(ClusterConfig {
            servers: 0,
            ..Default::default()
        });
    }

    #[test]
    fn effect_batch_coalesces_same_key_to_one_store_op() {
        let c = cluster(2, 1024 * 1024);
        let app = c.handle(CacheOrigin::Application);
        let trig = c.handle(CacheOrigin::Trigger);
        app.set_payload("k", &Payload::Count(0), None).unwrap();
        c.reset_stats();
        c.begin_effect_batch();
        // Five buffered mutations of the same key...
        for _ in 0..5 {
            let got = trig.gets("k").unwrap();
            let n = Payload::decode(&got.data).unwrap().as_count().unwrap();
            trig.cas("k", Payload::Count(n + 1).encode(), got.cas, None)
                .unwrap();
        }
        let summary = c.commit_effect_batch();
        // ...publish as ONE physical set; only the first gets hit a store.
        assert_eq!(summary.keys_flushed, 1);
        assert_eq!(summary.backend_reads, 1);
        assert_eq!(summary.buffered_mutations, 5);
        assert!(summary.physical_ops() < summary.naive_ops());
        assert_eq!(c.stats().store.sets, 1);
        assert_eq!(
            app.get_payload("k").unwrap().unwrap().as_count(),
            Some(5),
            "buffered increments all landed"
        );
    }

    #[test]
    fn discarded_batch_publishes_nothing() {
        let c = cluster(1, 1024 * 1024);
        let app = c.handle(CacheOrigin::Application);
        let trig = c.handle(CacheOrigin::Trigger);
        app.set_payload("k", &Payload::Count(7), None).unwrap();
        c.begin_effect_batch();
        let got = trig.gets("k").unwrap();
        trig.cas("k", Payload::Count(99).encode(), got.cas, None)
            .unwrap();
        trig.delete("other");
        let summary = c.discard_effect_batch();
        assert_eq!(summary.keys_flushed, 0);
        assert!(summary.buffered_mutations >= 2);
        assert_eq!(
            app.get_payload("k").unwrap().unwrap().as_count(),
            Some(7),
            "cache byte-identical after discard"
        );
    }

    #[test]
    fn batch_only_intercepts_trigger_origin() {
        let c = cluster(1, 1024 * 1024);
        let app = c.handle(CacheOrigin::Application);
        c.begin_effect_batch();
        app.set_payload("a", &Payload::Count(1), None).unwrap();
        assert_eq!(
            app.get_payload("a").unwrap().unwrap().as_count(),
            Some(1),
            "application writes go straight to the store"
        );
        let summary = c.commit_effect_batch();
        assert_eq!(summary.buffered_mutations, 0);
    }

    #[test]
    fn batch_reads_see_buffered_deletes_and_writes() {
        let c = cluster(1, 1024 * 1024);
        let app = c.handle(CacheOrigin::Application);
        let trig = c.handle(CacheOrigin::Trigger);
        app.set_payload("k", &Payload::Count(1), None).unwrap();
        c.begin_effect_batch();
        assert!(trig.contains("k"));
        trig.delete("k");
        assert!(!trig.contains("k"), "buffered delete visible to triggers");
        assert!(trig.gets("k").is_none());
        assert!(
            app.contains("k"),
            "unpublished delete invisible to the application"
        );
        trig.set("k", Payload::Count(5).encode(), None).unwrap();
        assert_eq!(trig.incr("k", 2).unwrap(), Some(7));
        c.commit_effect_batch();
        assert_eq!(app.get_payload("k").unwrap().unwrap().as_count(), Some(7));
    }

    #[test]
    fn batched_incr_preserves_remaining_ttl() {
        let c = cluster(1, 1024 * 1024);
        let app = c.handle(CacheOrigin::Application);
        let trig = c.handle(CacheOrigin::Trigger);
        c.set_now(1_000);
        app.set_payload("n", &Payload::Count(1), Some(500)).unwrap();
        c.begin_effect_batch();
        assert_eq!(trig.incr("n", 1).unwrap(), Some(2));
        c.commit_effect_batch();
        c.set_now(1_400);
        assert_eq!(
            app.get_payload("n").unwrap().unwrap().as_count(),
            Some(2),
            "still alive before expiry"
        );
        c.set_now(1_501);
        assert!(
            app.get_payload("n").unwrap().is_none(),
            "the flushed counter kept the entry's original expiry"
        );
    }

    #[test]
    fn batch_cas_conflicts_on_stale_buffered_token() {
        let c = cluster(1, 1024 * 1024);
        let trig = c.handle(CacheOrigin::Trigger);
        c.begin_effect_batch();
        trig.set("k", Payload::Count(1).encode(), None).unwrap();
        let t1 = trig.gets("k").unwrap().cas;
        trig.cas("k", Payload::Count(2).encode(), t1, None).unwrap();
        assert!(matches!(
            trig.cas("k", Payload::Count(3).encode(), t1, None),
            Err(CacheError::CasConflict)
        ));
        c.discard_effect_batch();
    }

    #[test]
    fn sealed_batch_visible_to_next_batch_reads_until_published() {
        // Commit A seals count=1 but has not published; commit B's
        // trigger read must see 1 (not the store's 0), or B's increment
        // would be computed from a stale base and lost.
        let c = cluster(1, 1024 * 1024);
        let app = c.handle(CacheOrigin::Application);
        let trig = c.handle(CacheOrigin::Trigger);
        app.set_payload("n", &Payload::Count(0), None).unwrap();
        c.begin_effect_batch();
        assert_eq!(trig.incr("n", 1).unwrap(), Some(1));
        let a = c.take_effect_batch().unwrap(); // sealed, unpublished
        c.begin_effect_batch();
        assert_eq!(
            trig.incr("n", 1).unwrap(),
            Some(2),
            "B reads A's sealed value, not the stale store"
        );
        let b = c.take_effect_batch().unwrap();
        a.publish();
        // Application reads hit the store (transient: B unpublished).
        assert_eq!(app.get_payload("n").unwrap().unwrap().as_count(), Some(1));
        b.publish();
        assert_eq!(app.get_payload("n").unwrap().unwrap().as_count(), Some(2));
    }

    #[test]
    fn cluster_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CacheCluster>();
        assert_send_sync::<CacheHandle>();
    }
}
