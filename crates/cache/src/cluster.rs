//! A cluster of cache servers behind consistent hashing.
//!
//! The paper stresses that CacheGenie maintains "a single logical cache
//! across many cache servers" (vs. SI-cache's per-app-server caches), with
//! clients and database triggers all addressing the same key space. This
//! module provides that: keys are placed on servers via a consistent-hash
//! ring with virtual nodes, and every handle — application or trigger —
//! sees the same data.

use crate::codec::{hash_key, Payload};
use crate::error::Result;
use crate::store::{CacheStore, StoreConfig, StoreStats, ValueWithCas};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of cache servers.
    pub servers: usize,
    /// Total memory budget in bytes, split evenly across servers
    /// (the paper's Experiment 4 sweeps this from 64 MB to 512 MB).
    pub capacity_bytes: usize,
    /// Per-item size limit.
    pub item_limit_bytes: usize,
    /// Virtual nodes per server on the hash ring.
    pub vnodes: usize,
    /// Whether trigger-originated reads refresh LRU recency. Unmodified
    /// memcached bumps on every touch (`true`); §4 of the paper proposes a
    /// modified policy (`false`) which we expose for the ablation bench.
    pub bump_lru_on_trigger: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            servers: 1,
            capacity_bytes: 512 * 1024 * 1024,
            item_limit_bytes: 1024 * 1024,
            vnodes: 64,
            bump_lru_on_trigger: true,
        }
    }
}

/// Who is issuing a cache operation; affects LRU policy (see
/// [`ClusterConfig::bump_lru_on_trigger`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOrigin {
    /// The web application / ORM read path.
    Application,
    /// A database trigger body maintaining consistency.
    Trigger,
}

/// Aggregated statistics across all servers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Summed per-server counters.
    pub store: StoreStats,
    /// Total bytes used across servers.
    pub bytes_used: usize,
    /// Total live items.
    pub items: usize,
}

impl ClusterStats {
    /// Hit ratio of get operations, or 1.0 with no traffic.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.store.hits + self.store.misses;
        if total == 0 {
            1.0
        } else {
            self.store.hits as f64 / total as f64
        }
    }
}

struct ClusterInner {
    servers: Vec<Mutex<CacheStore>>,
    /// (ring position, server index), sorted by position.
    ring: Vec<(u64, usize)>,
    /// Logical "now" for TTL expiry; the benchmark driver advances this
    /// with simulated time. Zero means "no clock" (entries never expire
    /// unless a TTL of 0 is used).
    now: AtomicU64,
    bump_on_trigger: bool,
}

/// A shared cache cluster handleable from any thread.
///
/// # Example
///
/// ```
/// use genie_cache::{CacheCluster, ClusterConfig, CacheOrigin, Payload};
///
/// # fn main() -> Result<(), genie_cache::CacheError> {
/// let cluster = CacheCluster::new(ClusterConfig { servers: 3, ..Default::default() });
/// let cache = cluster.handle(CacheOrigin::Application);
/// cache.set_payload("profile:42", &Payload::Count(7), None)?;
/// assert_eq!(cache.get_payload("profile:42")?.unwrap().as_count(), Some(7));
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct CacheCluster {
    inner: Arc<ClusterInner>,
}

impl std::fmt::Debug for CacheCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheCluster")
            .field("servers", &self.inner.servers.len())
            .finish()
    }
}

impl CacheCluster {
    /// Builds a cluster per `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.servers` or `config.vnodes` is zero — a cluster
    /// with no placement targets cannot exist.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.servers > 0, "cluster needs at least one server");
        assert!(config.vnodes > 0, "cluster needs at least one vnode");
        let per_server = StoreConfig {
            capacity_bytes: config.capacity_bytes / config.servers,
            item_limit_bytes: config.item_limit_bytes,
        };
        let servers: Vec<Mutex<CacheStore>> = (0..config.servers)
            .map(|_| Mutex::new(CacheStore::new(per_server.clone())))
            .collect();
        let mut ring = Vec::with_capacity(config.servers * config.vnodes);
        for s in 0..config.servers {
            for v in 0..config.vnodes {
                ring.push((hash_key(&format!("server{s}#vnode{v}")), s));
            }
        }
        ring.sort_unstable();
        CacheCluster {
            inner: Arc::new(ClusterInner {
                servers,
                ring,
                now: AtomicU64::new(0),
                bump_on_trigger: config.bump_lru_on_trigger,
            }),
        }
    }

    /// A handle for issuing operations as `origin`.
    pub fn handle(&self, origin: CacheOrigin) -> CacheHandle {
        let bump = match origin {
            CacheOrigin::Application => true,
            CacheOrigin::Trigger => self.inner.bump_on_trigger,
        };
        CacheHandle {
            inner: Arc::clone(&self.inner),
            bump,
        }
    }

    /// Advances the logical clock used for TTL expiry.
    pub fn set_now(&self, now: u64) {
        self.inner.now.store(now, Ordering::Relaxed);
    }

    /// Which server a key lands on (diagnostics and tests).
    pub fn server_for(&self, key: &str) -> usize {
        self.inner.server_for(key)
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.inner.servers.len()
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> ClusterStats {
        let mut agg = ClusterStats::default();
        for s in &self.inner.servers {
            let s = s.lock();
            let st = s.stats();
            agg.store.gets += st.gets;
            agg.store.hits += st.hits;
            agg.store.misses += st.misses;
            agg.store.sets += st.sets;
            agg.store.deletes += st.deletes;
            agg.store.evictions += st.evictions;
            agg.store.cas_ops += st.cas_ops;
            agg.store.cas_conflicts += st.cas_conflicts;
            agg.store.expired += st.expired;
            agg.bytes_used += s.bytes_used();
            agg.items += s.len();
        }
        agg
    }

    /// Zeroes all server counters (between warm-up and measurement).
    pub fn reset_stats(&self) {
        for s in &self.inner.servers {
            s.lock().reset_stats();
        }
    }

    /// Empties every server.
    pub fn flush_all(&self) {
        for s in &self.inner.servers {
            s.lock().flush_all();
        }
    }
}

impl ClusterInner {
    fn server_for(&self, key: &str) -> usize {
        let h = hash_key(key);
        // First ring position >= h, wrapping.
        match self.ring.binary_search_by(|(pos, _)| pos.cmp(&h)) {
            Ok(i) => self.ring[i].1,
            Err(i) if i < self.ring.len() => self.ring[i].1,
            Err(_) => self.ring[0].1,
        }
    }

    fn with_server<T>(&self, key: &str, f: impl FnOnce(&mut CacheStore, u64) -> T) -> T {
        let idx = self.server_for(key);
        let now = self.now.load(Ordering::Relaxed);
        let mut store = self.servers[idx].lock();
        f(&mut store, now)
    }
}

/// A client handle bound to an origin (application or trigger).
#[derive(Clone)]
pub struct CacheHandle {
    inner: Arc<ClusterInner>,
    bump: bool,
}

impl std::fmt::Debug for CacheHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheHandle")
            .field("bump", &self.bump)
            .finish()
    }
}

impl CacheHandle {
    /// Fetches raw bytes.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.inner
            .with_server(key, |s, now| s.get(key, now, self.bump))
    }

    /// Fetches raw bytes plus the CAS token (memcached `gets`).
    pub fn gets(&self, key: &str) -> Option<ValueWithCas> {
        self.inner
            .with_server(key, |s, now| s.gets(key, now, self.bump))
    }

    /// Stores raw bytes.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::ValueTooLarge`] for oversized values.
    pub fn set(&self, key: &str, data: Bytes, ttl: Option<u64>) -> Result<()> {
        self.inner
            .with_server(key, |s, now| s.set(key, data, ttl, now))
    }

    /// Stores only if absent.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::AlreadyStored`] if present.
    pub fn add(&self, key: &str, data: Bytes, ttl: Option<u64>) -> Result<()> {
        self.inner
            .with_server(key, |s, now| s.add(key, data, ttl, now))
    }

    /// Compare-and-swap store.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::CasConflict`] when the token is stale.
    pub fn cas(&self, key: &str, data: Bytes, token: u64, ttl: Option<u64>) -> Result<()> {
        self.inner
            .with_server(key, |s, now| s.cas(key, data, token, ttl, now))
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        self.inner.with_server(key, |s, _| s.delete(key))
    }

    /// Increments a count payload; `None` on miss.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::Codec`] if the entry is not a count.
    pub fn incr(&self, key: &str, delta: i64) -> Result<Option<i64>> {
        self.inner
            .with_server(key, |s, now| s.incr(key, delta, now))
    }

    /// True if the key currently holds a live entry.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.with_server(key, |s, now| s.contains(key, now))
    }

    /// Fetches and decodes a typed payload.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::Codec`] if stored bytes do not decode.
    pub fn get_payload(&self, key: &str) -> Result<Option<Payload>> {
        match self.get(key) {
            Some(b) => Ok(Some(Payload::decode(&b)?)),
            None => Ok(None),
        }
    }

    /// Fetches a typed payload plus CAS token.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::Codec`] if stored bytes do not decode.
    pub fn gets_payload(&self, key: &str) -> Result<Option<(Payload, u64)>> {
        match self.gets(key) {
            Some(v) => Ok(Some((Payload::decode(&v.data)?, v.cas))),
            None => Ok(None),
        }
    }

    /// Encodes and stores a typed payload.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::ValueTooLarge`] for oversized values.
    pub fn set_payload(&self, key: &str, payload: &Payload, ttl: Option<u64>) -> Result<()> {
        self.set(key, payload.encode(), ttl)
    }

    /// Encodes and CAS-stores a typed payload.
    ///
    /// # Errors
    ///
    /// [`crate::CacheError::CasConflict`] when the token is stale.
    pub fn cas_payload(
        &self,
        key: &str,
        payload: &Payload,
        token: u64,
        ttl: Option<u64>,
    ) -> Result<()> {
        self.cas(key, payload.encode(), token, ttl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheError;
    use genie_storage::row;

    fn cluster(servers: usize, capacity: usize) -> CacheCluster {
        CacheCluster::new(ClusterConfig {
            servers,
            capacity_bytes: capacity,
            ..Default::default()
        })
    }

    #[test]
    fn single_logical_cache_across_servers() {
        let c = cluster(4, 1024 * 1024);
        let app = c.handle(CacheOrigin::Application);
        let trig = c.handle(CacheOrigin::Trigger);
        for i in 0..100 {
            app.set_payload(&format!("k{i}"), &Payload::Count(i), None)
                .unwrap();
        }
        // Any handle sees every key, wherever it hashed to.
        for i in 0..100 {
            assert_eq!(
                trig.get_payload(&format!("k{i}"))
                    .unwrap()
                    .unwrap()
                    .as_count(),
                Some(i)
            );
        }
        assert_eq!(c.stats().items, 100);
    }

    #[test]
    fn keys_spread_over_servers() {
        let c = cluster(4, 1024 * 1024);
        let mut seen = [false; 4];
        for i in 0..200 {
            seen[c.server_for(&format!("key:{i}"))] = true;
        }
        assert!(seen.iter().all(|&s| s), "all servers should receive keys");
    }

    #[test]
    fn placement_is_deterministic() {
        let a = cluster(5, 1024 * 1024);
        let b = cluster(5, 1024 * 1024);
        for i in 0..50 {
            let k = format!("key:{i}");
            assert_eq!(a.server_for(&k), b.server_for(&k));
        }
    }

    #[test]
    fn consistent_hash_remaps_few_keys_on_grow() {
        let a = cluster(4, 1024 * 1024);
        let b = cluster(5, 1024 * 1024);
        let n = 1000;
        let moved = (0..n)
            .filter(|i| {
                let k = format!("key:{i}");
                a.server_for(&k) != b.server_for(&k)
            })
            .count();
        // Ideal is 1/5 = 20%; allow generous slack for hash variance but
        // rule out the ~80% a modulo scheme would move.
        assert!(
            moved < n / 2,
            "consistent hashing moved {moved}/{n} keys on server add"
        );
    }

    #[test]
    fn rows_payload_roundtrip_through_cluster() {
        let c = cluster(2, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        let rows = Payload::Rows(vec![row![1i64, "post one"], row![2i64, "post two"]]);
        h.set_payload("wall:1", &rows, None).unwrap();
        assert_eq!(h.get_payload("wall:1").unwrap().unwrap(), rows);
    }

    #[test]
    fn cas_through_cluster() {
        let c = cluster(3, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        h.set_payload("k", &Payload::Count(1), None).unwrap();
        let (_, token) = h.gets_payload("k").unwrap().unwrap();
        h.cas_payload("k", &Payload::Count(2), token, None).unwrap();
        assert!(matches!(
            h.cas_payload("k", &Payload::Count(3), token, None),
            Err(CacheError::CasConflict)
        ));
    }

    #[test]
    fn trigger_origin_respects_bump_config() {
        // bump_lru_on_trigger=false: trigger reads must not rescue keys.
        let c = CacheCluster::new(ClusterConfig {
            servers: 1,
            capacity_bytes: 230,
            item_limit_bytes: 1024,
            vnodes: 8,
            bump_lru_on_trigger: false,
        });
        let app = c.handle(CacheOrigin::Application);
        let trig = c.handle(CacheOrigin::Trigger);
        app.set("a", Bytes::from(vec![0u8; 10]), None).unwrap();
        app.set("b", Bytes::from(vec![0u8; 10]), None).unwrap();
        app.set("c", Bytes::from(vec![0u8; 10]), None).unwrap();
        trig.get("a"); // does NOT bump
        app.set("d", Bytes::from(vec![0u8; 10]), None).unwrap();
        assert!(app.get("a").is_none(), "a stayed coldest and was evicted");
    }

    #[test]
    fn ttl_uses_cluster_clock() {
        let c = cluster(1, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        c.set_now(1_000);
        h.set("k", Bytes::from_static(b"v"), Some(500)).unwrap();
        c.set_now(1_400);
        assert!(h.get("k").is_some());
        c.set_now(1_500);
        assert!(h.get("k").is_none());
    }

    #[test]
    fn stats_aggregate_and_reset() {
        let c = cluster(2, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        h.set("a", Bytes::from_static(b"1"), None).unwrap();
        h.get("a");
        h.get("missing");
        let st = c.stats();
        assert_eq!(st.store.hits, 1);
        assert_eq!(st.store.misses, 1);
        assert!((st.hit_ratio() - 0.5).abs() < 1e-9);
        c.reset_stats();
        assert_eq!(c.stats().store.gets, 0);
        // Data survives a stats reset.
        assert!(h.get("a").is_some());
    }

    #[test]
    fn flush_all_empties_every_server() {
        let c = cluster(3, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        for i in 0..30 {
            h.set(&format!("k{i}"), Bytes::from_static(b"v"), None)
                .unwrap();
        }
        c.flush_all();
        assert_eq!(c.stats().items, 0);
    }

    #[test]
    fn incr_and_delete_through_cluster() {
        let c = cluster(2, 1024 * 1024);
        let h = c.handle(CacheOrigin::Application);
        h.set_payload("n", &Payload::Count(0), None).unwrap();
        assert_eq!(h.incr("n", 7).unwrap(), Some(7));
        assert!(h.delete("n"));
        assert_eq!(h.incr("n", 1).unwrap(), None);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = CacheCluster::new(ClusterConfig {
            servers: 0,
            ..Default::default()
        });
    }

    #[test]
    fn cluster_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CacheCluster>();
        assert_send_sync::<CacheHandle>();
    }
}
