//! Hot-key detection: a fixed-memory count-min sketch fed by per-key
//! access counts. The cluster records every application-origin GET;
//! when a key's estimated frequency crosses the configured threshold
//! the detector reports it hot and the cluster promotes it to a
//! replicated key (see [`crate::ReplicaTable`]).
//!
//! The sketch is all atomics — recording an access takes no lock and
//! the read path never blocks on detection. Estimates only ever
//! over-count (hash collisions), which for this use is benign: the
//! worst case is replicating a key slightly early. Counters are halved
//! every `decay_every` recorded accesses so yesterday's celebrity does
//! not stay hot forever.

use crate::codec::hash_key;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Rows in the sketch; each access increments one counter per row and
/// the estimate is the minimum across rows.
const DEPTH: usize = 4;

/// Tuning for [`HotKeyDetector`].
#[derive(Debug, Clone)]
pub struct HotKeyConfig {
    /// Estimated access count at which a key is reported hot.
    pub threshold: u64,
    /// Counters per sketch row (rounded up to a power of two).
    pub width: usize,
    /// Halve every counter after this many recorded accesses
    /// (0 disables decay).
    pub decay_every: u64,
}

impl Default for HotKeyConfig {
    fn default() -> Self {
        HotKeyConfig {
            threshold: 64,
            width: 1024,
            decay_every: 65_536,
        }
    }
}

/// Lock-free count-min sketch with periodic decay.
#[derive(Debug)]
pub struct HotKeyDetector {
    width: u64,
    threshold: u64,
    decay_every: u64,
    counters: Vec<AtomicU32>,
    recorded: AtomicU64,
}

impl HotKeyDetector {
    /// Builds a detector from `config`.
    pub fn new(config: &HotKeyConfig) -> Self {
        let width = config.width.max(16).next_power_of_two() as u64;
        let counters = (0..(width as usize * DEPTH))
            .map(|_| AtomicU32::new(0))
            .collect();
        HotKeyDetector {
            width,
            threshold: config.threshold.max(1),
            decay_every: config.decay_every,
            counters,
            recorded: AtomicU64::new(0),
        }
    }

    /// The configured hotness threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Records one access to `key` and returns true if its estimate is
    /// now at or above the threshold. Callers deduplicate promotion
    /// (a key already replicated keeps reporting hot).
    pub fn record(&self, key: &str) -> bool {
        let (h1, h2) = Self::hashes(key);
        let mut estimate = u32::MAX;
        for row in 0..DEPTH {
            let idx = self.slot(h1, h2, row);
            let prev = self.counters[idx].fetch_add(1, Ordering::Relaxed);
            estimate = estimate.min(prev.saturating_add(1));
        }
        if self.decay_every > 0 {
            let n = self.recorded.fetch_add(1, Ordering::Relaxed) + 1;
            if n.is_multiple_of(self.decay_every) {
                self.decay();
            }
        }
        u64::from(estimate) >= self.threshold
    }

    /// Current frequency estimate for `key` (over-counts, never under).
    pub fn estimate(&self, key: &str) -> u64 {
        let (h1, h2) = Self::hashes(key);
        let mut estimate = u32::MAX;
        for row in 0..DEPTH {
            let idx = self.slot(h1, h2, row);
            estimate = estimate.min(self.counters[idx].load(Ordering::Relaxed));
        }
        u64::from(estimate)
    }

    /// Zeroes the sketch (cluster stats reset).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        self.recorded.store(0, Ordering::Relaxed);
    }

    fn slot(&self, h1: u64, h2: u64, row: usize) -> usize {
        let h = h1.wrapping_add(h2.wrapping_mul(row as u64 + 1));
        (row as u64 * self.width + (h & (self.width - 1))) as usize
    }

    /// Two independent mixes of the key hash (Kirsch–Mitzenmacher
    /// double hashing drives the per-row slots).
    fn hashes(key: &str) -> (u64, u64) {
        let h = hash_key(key);
        let mut h2 = h ^ 0x9e37_79b9_7f4a_7c15;
        h2 ^= h2 >> 33;
        h2 = h2.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h2 ^= h2 >> 33;
        (h, h2 | 1)
    }

    fn decay(&self) {
        // Racy halving is fine: concurrent increments lost to the
        // store-after-load only delay hotness detection slightly.
        for c in &self.counters {
            let v = c.load(Ordering::Relaxed);
            if v > 0 {
                c.store(v / 2, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(threshold: u64) -> HotKeyDetector {
        HotKeyDetector::new(&HotKeyConfig {
            threshold,
            width: 256,
            decay_every: 0,
        })
    }

    #[test]
    fn crosses_threshold_after_enough_accesses() {
        let d = detector(10);
        for i in 0..9 {
            assert!(!d.record("hot"), "access {i} should stay cold");
        }
        assert!(d.record("hot"), "10th access crosses threshold");
        assert!(d.record("hot"), "stays hot afterwards");
        assert!(d.estimate("hot") >= 10);
    }

    #[test]
    fn cold_keys_stay_cold() {
        let d = detector(50);
        for i in 0..400 {
            // 400 distinct keys, one access each: none can reach 50
            // even with sketch over-counting across 4 rows of 256.
            let hot = d.record(&format!("key{i}"));
            assert!(!hot, "key{i} misreported hot");
        }
    }

    #[test]
    fn decay_halves_estimates() {
        let d = HotKeyDetector::new(&HotKeyConfig {
            threshold: 1000,
            width: 256,
            decay_every: 100,
        });
        for _ in 0..100 {
            d.record("k");
        }
        // The 100th record triggered decay: estimate dropped to ~50.
        assert!(
            d.estimate("k") <= 60,
            "estimate {} not decayed",
            d.estimate("k")
        );
    }

    #[test]
    fn reset_zeroes() {
        let d = detector(5);
        for _ in 0..20 {
            d.record("k");
        }
        d.reset();
        assert_eq!(d.estimate("k"), 0);
    }
}
