//! A single cache server shard: byte-accurate memory accounting, TTL
//! expiry, CAS, and a pluggable eviction policy — the feature set
//! memcached 1.4.5 offers the paper, plus the CLOCK read path the
//! scale-out tier needs.
//!
//! Two eviction policies are provided:
//!
//! * [`EvictionPolicy::Clock`] (default) — a CLOCK ring with one
//!   reference bit per entry. A GET only sets the bit; it never touches
//!   the eviction structure, so concurrent readers of a sharded store
//!   spend no time maintaining global recency order and allocate
//!   nothing. Eviction sweeps the ring, clearing bits until it finds an
//!   unreferenced victim (second-chance LRU approximation).
//! * [`EvictionPolicy::LruStamp`] — the exact-order legacy policy: a
//!   `stamp -> key` BTreeMap where every bumped GET re-inserts the key
//!   under a fresh stamp (a `String` clone and two tree writes per
//!   read). Kept as the measured pre-shard baseline for
//!   `exp_cache_scale` and for workloads that want exact LRU.

use crate::error::{CacheError, Result};
use bytes::Bytes;
use std::collections::{BTreeMap, HashMap};

/// Per-item bookkeeping overhead we model (hash entry, LRU link, CAS).
const ITEM_OVERHEAD: usize = 60;

/// Who is touching the cache: the application read path or the
/// trigger/maintenance write path. Stats are split on this axis so
/// trigger-maintenance traffic can be quantified per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOrigin {
    /// Application reads/writes (page serving).
    Application,
    /// Trigger-driven maintenance (cache update/invalidate code).
    Trigger,
}

/// How a store picks eviction victims.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// CLOCK / second-chance: GETs set a per-entry reference bit and
    /// never write the eviction structure.
    #[default]
    Clock,
    /// Exact LRU via a global stamp map: every bumped GET rewrites the
    /// order BTreeMap (the pre-shard behaviour, kept as a baseline).
    LruStamp,
}

/// Configuration of one cache server shard.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Memory budget in bytes; eviction keeps usage at or below this.
    pub capacity_bytes: usize,
    /// Per-item size limit (memcached defaults to 1 MiB).
    pub item_limit_bytes: usize,
    /// Eviction victim selection policy.
    pub eviction: EvictionPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            capacity_bytes: 64 * 1024 * 1024,
            item_limit_bytes: 1024 * 1024,
            eviction: EvictionPolicy::Clock,
        }
    }
}

/// Counters for one server since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// get/gets calls.
    pub gets: u64,
    /// get/gets that returned a value.
    pub hits: u64,
    /// get/gets that found nothing (or an expired entry).
    pub misses: u64,
    /// Hits from application-origin reads.
    pub app_hits: u64,
    /// Misses from application-origin reads.
    pub app_misses: u64,
    /// Hits from trigger-origin reads (maintenance fall-through).
    pub trigger_hits: u64,
    /// Misses from trigger-origin reads.
    pub trigger_misses: u64,
    /// set/add/cas stores that succeeded.
    pub sets: u64,
    /// delete calls that removed an entry.
    pub deletes: u64,
    /// Entries evicted for space.
    pub evictions: u64,
    /// cas attempts.
    pub cas_ops: u64,
    /// cas attempts that lost the race.
    pub cas_conflicts: u64,
    /// Entries dropped because their TTL lapsed.
    pub expired: u64,
}

impl StoreStats {
    /// Field-wise accumulation, for aggregating shards and servers.
    pub fn merge(&mut self, o: &StoreStats) {
        self.gets += o.gets;
        self.hits += o.hits;
        self.misses += o.misses;
        self.app_hits += o.app_hits;
        self.app_misses += o.app_misses;
        self.trigger_hits += o.trigger_hits;
        self.trigger_misses += o.trigger_misses;
        self.sets += o.sets;
        self.deletes += o.deletes;
        self.evictions += o.evictions;
        self.cas_ops += o.cas_ops;
        self.cas_conflicts += o.cas_conflicts;
        self.expired += o.expired;
    }
}

#[derive(Debug, Clone)]
struct Entry {
    data: Bytes,
    /// LruStamp policy: position in the order map. Unique.
    stamp: u64,
    /// Clock policy: index of this key in the ring vector.
    ring: usize,
    /// Clock policy: second-chance reference bit, set by bumped GETs.
    referenced: bool,
    cas: u64,
    /// Absolute expiry instant (same unit as the caller's `now`), if any.
    expires_at: Option<u64>,
}

impl Entry {
    fn size(&self, key: &str) -> usize {
        key.len() + self.data.len() + ITEM_OVERHEAD
    }

    fn expired(&self, now: u64) -> bool {
        matches!(self.expires_at, Some(t) if now >= t)
    }
}

/// One cache server shard. Single-threaded by itself; the cluster wraps
/// each shard in its own lock (see [`crate::ShardedStore`]).
#[derive(Debug)]
pub struct CacheStore {
    config: StoreConfig,
    map: HashMap<String, Entry>,
    /// LruStamp policy: stamp -> key, oldest first.
    lru: BTreeMap<u64, String>,
    /// Clock policy: the ring of live keys; `hand` is the sweep cursor.
    ring: Vec<String>,
    hand: usize,
    next_stamp: u64,
    next_cas: u64,
    bytes: usize,
    stats: StoreStats,
}

/// Result of a `gets`: the value plus its CAS token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueWithCas {
    /// The stored bytes.
    pub data: Bytes,
    /// Token to pass back to [`CacheStore::cas`].
    pub cas: u64,
}

impl CacheStore {
    /// Creates a store with the given configuration.
    pub fn new(config: StoreConfig) -> Self {
        CacheStore {
            config,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            ring: Vec::new(),
            hand: 0,
            next_stamp: 0,
            next_cas: 1,
            bytes: 0,
            stats: StoreStats::default(),
        }
    }

    /// Fetches `key`. `now` drives TTL expiry; `bump` controls whether the
    /// hit refreshes recency (the paper notes trigger touches bump LRU
    /// in unmodified memcached and suggests an opt-out).
    pub fn get(&mut self, key: &str, now: u64, bump: bool) -> Option<Bytes> {
        self.get_as(key, now, bump, CacheOrigin::Application)
    }

    /// [`CacheStore::get`] with an explicit traffic origin for stats.
    pub fn get_as(
        &mut self,
        key: &str,
        now: u64,
        bump: bool,
        origin: CacheOrigin,
    ) -> Option<Bytes> {
        self.gets_as(key, now, bump, origin).map(|v| v.data)
    }

    /// Like [`CacheStore::get`] but also returns the entry's remaining
    /// TTL (`None` = no expiry) — for callers that must re-store the
    /// value later without extending or shortening its life.
    pub fn get_with_ttl(
        &mut self,
        key: &str,
        now: u64,
        bump: bool,
    ) -> Option<(Bytes, Option<u64>)> {
        let v = self.gets(key, now, bump)?;
        let ttl = self
            .map
            .get(key)
            .and_then(|e| e.expires_at)
            .map(|t| t.saturating_sub(now));
        Some((v.data, ttl))
    }

    /// Like [`CacheStore::get`] but also returns the CAS token.
    pub fn gets(&mut self, key: &str, now: u64, bump: bool) -> Option<ValueWithCas> {
        self.gets_as(key, now, bump, CacheOrigin::Application)
    }

    /// [`CacheStore::gets`] with an explicit traffic origin for stats.
    pub fn gets_as(
        &mut self,
        key: &str,
        now: u64,
        bump: bool,
        origin: CacheOrigin,
    ) -> Option<ValueWithCas> {
        self.stats.gets += 1;
        if self.purge_if_expired(key, now) {
            self.count_miss(origin);
            return None;
        }
        // Split borrow: compute new stamp first.
        let stamp = self.next_stamp;
        match self.map.get_mut(key) {
            Some(e) => {
                let out = ValueWithCas {
                    data: e.data.clone(),
                    cas: e.cas,
                };
                if bump {
                    match self.config.eviction {
                        // CLOCK: a read only flips the reference bit —
                        // no order-map write, no allocation.
                        EvictionPolicy::Clock => e.referenced = true,
                        EvictionPolicy::LruStamp => {
                            let old = e.stamp;
                            e.stamp = stamp;
                            self.next_stamp += 1;
                            self.lru.remove(&old);
                            self.lru.insert(stamp, key.to_owned());
                        }
                    }
                }
                self.count_hit(origin);
                Some(out)
            }
            None => {
                self.count_miss(origin);
                None
            }
        }
    }

    /// Reads `key` and its remaining TTL without touching stats,
    /// recency, or expiry bookkeeping. Used by the replication layer to
    /// copy values between nodes without polluting hit/miss counters.
    pub fn peek(&self, key: &str, now: u64) -> Option<(Bytes, Option<u64>)> {
        let e = self.map.get(key)?;
        if e.expired(now) {
            return None;
        }
        Some((e.data.clone(), e.expires_at.map(|t| t.saturating_sub(now))))
    }

    /// Stores `key`, replacing any existing value. `ttl` is a relative
    /// duration in the caller's time unit; `None` means no expiry.
    ///
    /// # Errors
    ///
    /// [`CacheError::ValueTooLarge`] if the value exceeds the item limit.
    pub fn set(&mut self, key: &str, data: Bytes, ttl: Option<u64>, now: u64) -> Result<()> {
        self.check_size(&data)?;
        self.remove_entry(key);
        self.insert_entry(key, data, ttl, now);
        self.stats.sets += 1;
        self.evict_to_capacity();
        Ok(())
    }

    /// Stores `key` only if absent (memcached `add`).
    ///
    /// # Errors
    ///
    /// [`CacheError::AlreadyStored`] if a live entry exists;
    /// [`CacheError::ValueTooLarge`] for oversized values.
    pub fn add(&mut self, key: &str, data: Bytes, ttl: Option<u64>, now: u64) -> Result<()> {
        self.check_size(&data)?;
        self.purge_if_expired(key, now);
        if self.map.contains_key(key) {
            return Err(CacheError::AlreadyStored);
        }
        self.insert_entry(key, data, ttl, now);
        self.stats.sets += 1;
        self.evict_to_capacity();
        Ok(())
    }

    /// Compare-and-swap: stores only if `token` still matches the entry's
    /// CAS value (memcached `cas`). A missing or replaced entry conflicts.
    ///
    /// # Errors
    ///
    /// [`CacheError::CasConflict`] if the token no longer matches;
    /// [`CacheError::ValueTooLarge`] for oversized values.
    pub fn cas(
        &mut self,
        key: &str,
        data: Bytes,
        token: u64,
        ttl: Option<u64>,
        now: u64,
    ) -> Result<()> {
        self.check_size(&data)?;
        self.stats.cas_ops += 1;
        self.purge_if_expired(key, now);
        match self.map.get(key) {
            Some(e) if e.cas == token => {
                self.remove_entry(key);
                self.insert_entry(key, data, ttl, now);
                self.stats.sets += 1;
                self.evict_to_capacity();
                Ok(())
            }
            _ => {
                self.stats.cas_conflicts += 1;
                Err(CacheError::CasConflict)
            }
        }
    }

    /// Deletes `key`; returns whether a live entry was removed.
    pub fn delete(&mut self, key: &str) -> bool {
        let existed = self.remove_entry(key);
        if existed {
            self.stats.deletes += 1;
        }
        existed
    }

    /// Atomically adds `delta` to a [`crate::Payload::Count`] entry,
    /// returning the new value, or `None` on a miss.
    ///
    /// # Errors
    ///
    /// [`CacheError::Codec`] if the entry is not a count payload.
    pub fn incr(&mut self, key: &str, delta: i64, now: u64) -> Result<Option<i64>> {
        self.purge_if_expired(key, now);
        let Some(e) = self.map.get(key) else {
            return Ok(None);
        };
        let payload = crate::Payload::decode(&e.data)?;
        let n = payload
            .as_count()
            .ok_or_else(|| CacheError::Codec("incr target is not a count".into()))?;
        let new = n + delta;
        let ttl_rest = e.expires_at.map(|t| t.saturating_sub(now));
        let token = e.cas;
        self.cas(
            key,
            crate::Payload::Count(new).encode(),
            token,
            ttl_rest,
            now,
        )?;
        Ok(Some(new))
    }

    /// True if a live (unexpired) entry exists; does not touch recency.
    pub fn contains(&mut self, key: &str, now: u64) -> bool {
        !self.purge_if_expired(key, now) && self.map.contains_key(key)
    }

    /// Removes everything (memcached `flush_all`).
    pub fn flush_all(&mut self) {
        self.map.clear();
        self.lru.clear();
        self.ring.clear();
        self.hand = 0;
        self.bytes = 0;
    }

    /// All live keys (cloned). Used by node rejoin to drop entries whose
    /// ownership moved back to the revived node.
    pub fn keys(&self) -> Vec<String> {
        self.map.keys().cloned().collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Zeroes counters without touching stored data.
    pub fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently accounted (values + keys + modelled overhead).
    pub fn bytes_used(&self) -> usize {
        self.bytes
    }

    /// The configured byte capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.config.capacity_bytes
    }

    // ----- internals -----

    fn count_hit(&mut self, origin: CacheOrigin) {
        self.stats.hits += 1;
        match origin {
            CacheOrigin::Application => self.stats.app_hits += 1,
            CacheOrigin::Trigger => self.stats.trigger_hits += 1,
        }
    }

    fn count_miss(&mut self, origin: CacheOrigin) {
        self.stats.misses += 1;
        match origin {
            CacheOrigin::Application => self.stats.app_misses += 1,
            CacheOrigin::Trigger => self.stats.trigger_misses += 1,
        }
    }

    fn check_size(&self, data: &Bytes) -> Result<()> {
        if data.len() > self.config.item_limit_bytes {
            return Err(CacheError::ValueTooLarge {
                size: data.len(),
                limit: self.config.item_limit_bytes,
            });
        }
        Ok(())
    }

    /// Removes `key` if its TTL lapsed; returns true if it was expired.
    fn purge_if_expired(&mut self, key: &str, now: u64) -> bool {
        let expired = matches!(self.map.get(key), Some(e) if e.expired(now));
        if expired {
            self.remove_entry(key);
            self.stats.expired += 1;
        }
        expired
    }

    fn insert_entry(&mut self, key: &str, data: Bytes, ttl: Option<u64>, now: u64) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let cas = self.next_cas;
        self.next_cas += 1;
        let entry = Entry {
            data,
            stamp,
            // New entries start unreferenced: a key inserted and never
            // read again is the first CLOCK victim, matching LRU for
            // the insert-then-bump test traces.
            ring: self.ring.len(),
            referenced: false,
            cas,
            expires_at: ttl.map(|d| now.saturating_add(d)),
        };
        self.bytes += entry.size(key);
        match self.config.eviction {
            EvictionPolicy::Clock => self.ring.push(key.to_owned()),
            EvictionPolicy::LruStamp => {
                self.lru.insert(stamp, key.to_owned());
            }
        }
        self.map.insert(key.to_owned(), entry);
    }

    fn remove_entry(&mut self, key: &str) -> bool {
        if let Some(e) = self.map.remove(key) {
            self.bytes -= e.size(key);
            match self.config.eviction {
                EvictionPolicy::Clock => {
                    // swap_remove keeps the ring dense; the entry that
                    // moved into the hole needs its index patched.
                    let idx = e.ring;
                    self.ring.swap_remove(idx);
                    if idx < self.ring.len() {
                        let moved = self.ring[idx].clone();
                        if let Some(m) = self.map.get_mut(&moved) {
                            m.ring = idx;
                        }
                    }
                    if self.hand >= self.ring.len() {
                        self.hand = 0;
                    }
                }
                EvictionPolicy::LruStamp => {
                    self.lru.remove(&e.stamp);
                }
            }
            true
        } else {
            false
        }
    }

    fn evict_to_capacity(&mut self) {
        match self.config.eviction {
            EvictionPolicy::Clock => self.evict_clock(),
            EvictionPolicy::LruStamp => self.evict_lru(),
        }
    }

    fn evict_clock(&mut self) {
        while self.bytes > self.config.capacity_bytes {
            if self.ring.is_empty() {
                break;
            }
            let idx = self.hand % self.ring.len();
            let key = self.ring[idx].clone();
            let referenced = self
                .map
                .get_mut(&key)
                .map(|e| {
                    let r = e.referenced;
                    e.referenced = false;
                    r
                })
                .unwrap_or(false);
            if referenced {
                // Second chance: clear the bit and advance the hand.
                self.hand = (idx + 1) % self.ring.len();
            } else {
                // Victim. remove_entry swap-fills the hole, so the hand
                // stays put and examines the entry that moved in.
                self.remove_entry(&key);
                self.stats.evictions += 1;
            }
        }
    }

    fn evict_lru(&mut self) {
        while self.bytes > self.config.capacity_bytes {
            let Some((&stamp, _)) = self.lru.iter().next() else {
                break;
            };
            let key = self.lru.remove(&stamp).expect("stamp present");
            if let Some(e) = self.map.remove(&key) {
                self.bytes -= e.size(&key);
                self.stats.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Payload;

    fn small_store(capacity: usize) -> CacheStore {
        store_with_policy(capacity, EvictionPolicy::Clock)
    }

    fn store_with_policy(capacity: usize, eviction: EvictionPolicy) -> CacheStore {
        CacheStore::new(StoreConfig {
            capacity_bytes: capacity,
            item_limit_bytes: 1024,
            eviction,
        })
    }

    fn bytes_of(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = small_store(10_000);
        s.set("k", bytes_of("v"), None, 0).unwrap();
        assert_eq!(s.get("k", 0, true).unwrap(), bytes_of("v"));
        assert_eq!(s.stats().hits, 1);
        assert!(s.get("nope", 0, true).is_none());
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        for policy in [EvictionPolicy::Clock, EvictionPolicy::LruStamp] {
            // Each entry ~ key(2) + data(10) + 60 ≈ 72 bytes; room for ~3.
            let mut s = store_with_policy(220, policy);
            for i in 0..3 {
                s.set(&format!("k{i}"), Bytes::from(vec![0u8; 10]), None, 0)
                    .unwrap();
            }
            // Touch k0 so k1 becomes coldest.
            s.get("k0", 0, true);
            s.set("k3", Bytes::from(vec![0u8; 10]), None, 0).unwrap();
            assert!(
                s.get("k0", 0, true).is_some(),
                "{policy:?}: k0 was touched, survives"
            );
            assert!(
                s.get("k1", 0, true).is_none(),
                "{policy:?}: k1 was coldest, evicted"
            );
            assert!(s.stats().evictions >= 1);
            assert!(s.bytes_used() <= s.capacity_bytes());
        }
    }

    #[test]
    fn no_bump_get_leaves_lru_order() {
        for policy in [EvictionPolicy::Clock, EvictionPolicy::LruStamp] {
            let mut s = store_with_policy(220, policy);
            for i in 0..3 {
                s.set(&format!("k{i}"), Bytes::from(vec![0u8; 10]), None, 0)
                    .unwrap();
            }
            // Touch k0 WITHOUT bump: k0 stays coldest and is evicted next.
            s.get("k0", 0, false);
            s.set("k3", Bytes::from(vec![0u8; 10]), None, 0).unwrap();
            assert!(
                s.get("k0", 0, false).is_none(),
                "{policy:?}: k0 not bumped, evicted"
            );
            assert!(s.get("k1", 0, false).is_some(), "{policy:?}");
        }
    }

    #[test]
    fn clock_second_chance_survives_full_sweep() {
        // All entries referenced: the first eviction pass clears every
        // bit, the second pass evicts the entry under the hand — the
        // sweep must terminate and free space.
        let mut s = small_store(220);
        for i in 0..3 {
            s.set(&format!("k{i}"), Bytes::from(vec![0u8; 10]), None, 0)
                .unwrap();
            s.get(&format!("k{i}"), 0, true);
        }
        s.set("k3", Bytes::from(vec![0u8; 10]), None, 0).unwrap();
        assert!(s.bytes_used() <= s.capacity_bytes());
        assert_eq!(s.len(), 3);
        assert!(s.stats().evictions >= 1);
    }

    #[test]
    fn ttl_expiry() {
        let mut s = small_store(10_000);
        s.set("k", bytes_of("v"), Some(100), 1000).unwrap();
        assert!(s.get("k", 1050, true).is_some());
        assert!(s.get("k", 1100, true).is_none(), "expired exactly at ttl");
        assert_eq!(s.stats().expired, 1);
        assert!(!s.contains("k", 1100));
    }

    #[test]
    fn add_only_when_absent() {
        let mut s = small_store(10_000);
        s.add("k", bytes_of("a"), None, 0).unwrap();
        assert!(matches!(
            s.add("k", bytes_of("b"), None, 0),
            Err(CacheError::AlreadyStored)
        ));
        // After expiry, add succeeds again.
        s.set("e", bytes_of("x"), Some(10), 0).unwrap();
        s.add("e", bytes_of("y"), None, 20).unwrap();
        assert_eq!(s.get("e", 20, true).unwrap(), bytes_of("y"));
    }

    #[test]
    fn cas_happy_path_and_conflict() {
        let mut s = small_store(10_000);
        s.set("k", bytes_of("v1"), None, 0).unwrap();
        let v = s.gets("k", 0, true).unwrap();
        s.cas("k", bytes_of("v2"), v.cas, None, 0).unwrap();
        assert_eq!(s.get("k", 0, true).unwrap(), bytes_of("v2"));
        // Old token now conflicts.
        assert!(matches!(
            s.cas("k", bytes_of("v3"), v.cas, None, 0),
            Err(CacheError::CasConflict)
        ));
        assert_eq!(s.stats().cas_conflicts, 1);
    }

    #[test]
    fn cas_on_missing_key_conflicts() {
        let mut s = small_store(10_000);
        assert!(matches!(
            s.cas("ghost", bytes_of("v"), 1, None, 0),
            Err(CacheError::CasConflict)
        ));
    }

    #[test]
    fn cas_token_changes_on_every_store() {
        let mut s = small_store(10_000);
        s.set("k", bytes_of("a"), None, 0).unwrap();
        let t1 = s.gets("k", 0, true).unwrap().cas;
        s.set("k", bytes_of("b"), None, 0).unwrap();
        let t2 = s.gets("k", 0, true).unwrap().cas;
        assert_ne!(t1, t2);
    }

    #[test]
    fn delete_frees_bytes() {
        let mut s = small_store(10_000);
        s.set("k", Bytes::from(vec![0u8; 100]), None, 0).unwrap();
        let used = s.bytes_used();
        assert!(used > 100);
        assert!(s.delete("k"));
        assert_eq!(s.bytes_used(), 0);
        assert!(!s.delete("k"));
        assert_eq!(s.stats().deletes, 1);
    }

    #[test]
    fn incr_on_count_payload() {
        let mut s = small_store(10_000);
        s.set("n", Payload::Count(10).encode(), None, 0).unwrap();
        assert_eq!(s.incr("n", 5, 0).unwrap(), Some(15));
        assert_eq!(s.incr("n", -3, 0).unwrap(), Some(12));
        let got = Payload::decode(&s.get("n", 0, true).unwrap()).unwrap();
        assert_eq!(got, Payload::Count(12));
        assert_eq!(s.incr("missing", 1, 0).unwrap(), None);
    }

    #[test]
    fn incr_on_non_count_errors() {
        let mut s = small_store(10_000);
        s.set("r", Payload::Rows(vec![]).encode(), None, 0).unwrap();
        assert!(s.incr("r", 1, 0).is_err());
    }

    #[test]
    fn value_too_large_rejected() {
        let mut s = small_store(10_000);
        let err = s
            .set("k", Bytes::from(vec![0u8; 2048]), None, 0)
            .unwrap_err();
        assert!(matches!(err, CacheError::ValueTooLarge { .. }));
        assert!(s.is_empty());
    }

    #[test]
    fn flush_all_clears() {
        for policy in [EvictionPolicy::Clock, EvictionPolicy::LruStamp] {
            let mut s = store_with_policy(10_000, policy);
            s.set("a", bytes_of("1"), None, 0).unwrap();
            s.set("b", bytes_of("2"), None, 0).unwrap();
            s.flush_all();
            assert!(s.is_empty());
            assert_eq!(s.bytes_used(), 0);
            // The store keeps working after a flush.
            s.set("c", bytes_of("3"), None, 0).unwrap();
            assert!(s.get("c", 0, true).is_some());
        }
    }

    #[test]
    fn overwrite_replaces_accounting() {
        let mut s = small_store(10_000);
        s.set("k", Bytes::from(vec![0u8; 100]), None, 0).unwrap();
        let big = s.bytes_used();
        s.set("k", Bytes::from(vec![0u8; 10]), None, 0).unwrap();
        assert!(s.bytes_used() < big);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn memory_bound_never_exceeded_under_churn() {
        for policy in [EvictionPolicy::Clock, EvictionPolicy::LruStamp] {
            let mut s = store_with_policy(500, policy);
            for i in 0..200 {
                s.set(
                    &format!("key{i}"),
                    Bytes::from(vec![0u8; (i % 40) as usize]),
                    None,
                    0,
                )
                .unwrap();
                assert!(
                    s.bytes_used() <= s.capacity_bytes(),
                    "{policy:?} iteration {i}: {} > {}",
                    s.bytes_used(),
                    s.capacity_bytes()
                );
            }
        }
    }

    #[test]
    fn clock_ring_stays_consistent_under_churn() {
        // Interleave sets, deletes, and evictions; every surviving key
        // must still be readable (ring indices patched correctly).
        let mut s = small_store(600);
        for i in 0..300 {
            let k = format!("key{}", i % 23);
            match i % 5 {
                0..=2 => {
                    s.set(&k, Bytes::from(vec![0u8; (i % 30) as usize]), None, 0)
                        .unwrap();
                }
                3 => {
                    s.delete(&k);
                }
                _ => {
                    s.get(&k, 0, true);
                }
            }
        }
        for k in s.keys() {
            assert!(s.get(&k, 0, false).is_some(), "live key {k} readable");
        }
        assert!(s.bytes_used() <= s.capacity_bytes());
    }

    #[test]
    fn origin_split_stats() {
        let mut s = small_store(10_000);
        s.set("k", bytes_of("v"), None, 0).unwrap();
        s.get_as("k", 0, true, CacheOrigin::Application);
        s.get_as("k", 0, false, CacheOrigin::Trigger);
        s.get_as("miss", 0, true, CacheOrigin::Application);
        s.get_as("miss", 0, false, CacheOrigin::Trigger);
        let st = s.stats();
        assert_eq!(st.app_hits, 1);
        assert_eq!(st.trigger_hits, 1);
        assert_eq!(st.app_misses, 1);
        assert_eq!(st.trigger_misses, 1);
        assert_eq!(st.hits, st.app_hits + st.trigger_hits);
        assert_eq!(st.misses, st.app_misses + st.trigger_misses);
    }

    #[test]
    fn peek_does_not_touch_stats_or_recency() {
        let mut s = small_store(10_000);
        s.set("k", bytes_of("v"), Some(100), 0).unwrap();
        let before = s.stats();
        assert_eq!(s.peek("k", 0).unwrap().0, bytes_of("v"));
        assert_eq!(s.peek("k", 0).unwrap().1, Some(100));
        assert!(s.peek("k", 100).is_none(), "expired for peek");
        assert!(s.peek("ghost", 0).is_none());
        assert_eq!(s.stats(), before);
    }
}
