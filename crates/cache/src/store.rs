//! A single cache server: LRU store with byte-accurate memory accounting,
//! TTL expiry, and CAS — the feature set memcached 1.4.5 offers the paper.

use crate::error::{CacheError, Result};
use bytes::Bytes;
use std::collections::{BTreeMap, HashMap};

/// Per-item bookkeeping overhead we model (hash entry, LRU link, CAS).
const ITEM_OVERHEAD: usize = 60;

/// Configuration of one cache server.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Memory budget in bytes; LRU eviction keeps usage at or below this.
    pub capacity_bytes: usize,
    /// Per-item size limit (memcached defaults to 1 MiB).
    pub item_limit_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            capacity_bytes: 64 * 1024 * 1024,
            item_limit_bytes: 1024 * 1024,
        }
    }
}

/// Counters for one server since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// get/gets calls.
    pub gets: u64,
    /// get/gets that returned a value.
    pub hits: u64,
    /// get/gets that found nothing (or an expired entry).
    pub misses: u64,
    /// set/add/cas stores that succeeded.
    pub sets: u64,
    /// delete calls that removed an entry.
    pub deletes: u64,
    /// Entries evicted by the LRU for space.
    pub evictions: u64,
    /// cas attempts.
    pub cas_ops: u64,
    /// cas attempts that lost the race.
    pub cas_conflicts: u64,
    /// Entries dropped because their TTL lapsed.
    pub expired: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    data: Bytes,
    stamp: u64,
    cas: u64,
    /// Absolute expiry instant (same unit as the caller's `now`), if any.
    expires_at: Option<u64>,
}

impl Entry {
    fn size(&self, key: &str) -> usize {
        key.len() + self.data.len() + ITEM_OVERHEAD
    }

    fn expired(&self, now: u64) -> bool {
        matches!(self.expires_at, Some(t) if now >= t)
    }
}

/// One cache server. Single-threaded by itself; the cluster wraps each
/// server in its own lock.
#[derive(Debug)]
pub struct CacheStore {
    config: StoreConfig,
    map: HashMap<String, Entry>,
    /// stamp -> key, oldest first. Stamps are unique.
    lru: BTreeMap<u64, String>,
    next_stamp: u64,
    next_cas: u64,
    bytes: usize,
    stats: StoreStats,
}

/// Result of a `gets`: the value plus its CAS token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueWithCas {
    /// The stored bytes.
    pub data: Bytes,
    /// Token to pass back to [`CacheStore::cas`].
    pub cas: u64,
}

impl CacheStore {
    /// Creates a store with the given configuration.
    pub fn new(config: StoreConfig) -> Self {
        CacheStore {
            config,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            next_stamp: 0,
            next_cas: 1,
            bytes: 0,
            stats: StoreStats::default(),
        }
    }

    /// Fetches `key`. `now` drives TTL expiry; `bump` controls whether the
    /// hit refreshes LRU recency (the paper notes trigger touches bump LRU
    /// in unmodified memcached and suggests an opt-out).
    pub fn get(&mut self, key: &str, now: u64, bump: bool) -> Option<Bytes> {
        self.gets(key, now, bump).map(|v| v.data)
    }

    /// Like [`CacheStore::get`] but also returns the entry's remaining
    /// TTL (`None` = no expiry) — for callers that must re-store the
    /// value later without extending or shortening its life.
    pub fn get_with_ttl(
        &mut self,
        key: &str,
        now: u64,
        bump: bool,
    ) -> Option<(Bytes, Option<u64>)> {
        let v = self.gets(key, now, bump)?;
        let ttl = self
            .map
            .get(key)
            .and_then(|e| e.expires_at)
            .map(|t| t.saturating_sub(now));
        Some((v.data, ttl))
    }

    /// Like [`CacheStore::get`] but also returns the CAS token.
    pub fn gets(&mut self, key: &str, now: u64, bump: bool) -> Option<ValueWithCas> {
        self.stats.gets += 1;
        if self.purge_if_expired(key, now) {
            self.stats.misses += 1;
            return None;
        }
        // Split borrow: compute new stamp first.
        let stamp = self.next_stamp;
        match self.map.get_mut(key) {
            Some(e) => {
                self.stats.hits += 1;
                let out = ValueWithCas {
                    data: e.data.clone(),
                    cas: e.cas,
                };
                if bump {
                    let old = e.stamp;
                    e.stamp = stamp;
                    self.next_stamp += 1;
                    self.lru.remove(&old);
                    self.lru.insert(stamp, key.to_owned());
                }
                Some(out)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `key`, replacing any existing value. `ttl` is a relative
    /// duration in the caller's time unit; `None` means no expiry.
    ///
    /// # Errors
    ///
    /// [`CacheError::ValueTooLarge`] if the value exceeds the item limit.
    pub fn set(&mut self, key: &str, data: Bytes, ttl: Option<u64>, now: u64) -> Result<()> {
        self.check_size(&data)?;
        self.remove_entry(key);
        self.insert_entry(key, data, ttl, now);
        self.stats.sets += 1;
        self.evict_to_capacity();
        Ok(())
    }

    /// Stores `key` only if absent (memcached `add`).
    ///
    /// # Errors
    ///
    /// [`CacheError::AlreadyStored`] if a live entry exists;
    /// [`CacheError::ValueTooLarge`] for oversized values.
    pub fn add(&mut self, key: &str, data: Bytes, ttl: Option<u64>, now: u64) -> Result<()> {
        self.check_size(&data)?;
        self.purge_if_expired(key, now);
        if self.map.contains_key(key) {
            return Err(CacheError::AlreadyStored);
        }
        self.insert_entry(key, data, ttl, now);
        self.stats.sets += 1;
        self.evict_to_capacity();
        Ok(())
    }

    /// Compare-and-swap: stores only if `token` still matches the entry's
    /// CAS value (memcached `cas`). A missing or replaced entry conflicts.
    ///
    /// # Errors
    ///
    /// [`CacheError::CasConflict`] if the token no longer matches;
    /// [`CacheError::ValueTooLarge`] for oversized values.
    pub fn cas(
        &mut self,
        key: &str,
        data: Bytes,
        token: u64,
        ttl: Option<u64>,
        now: u64,
    ) -> Result<()> {
        self.check_size(&data)?;
        self.stats.cas_ops += 1;
        self.purge_if_expired(key, now);
        match self.map.get(key) {
            Some(e) if e.cas == token => {
                self.remove_entry(key);
                self.insert_entry(key, data, ttl, now);
                self.stats.sets += 1;
                self.evict_to_capacity();
                Ok(())
            }
            _ => {
                self.stats.cas_conflicts += 1;
                Err(CacheError::CasConflict)
            }
        }
    }

    /// Deletes `key`; returns whether a live entry was removed.
    pub fn delete(&mut self, key: &str) -> bool {
        let existed = self.remove_entry(key);
        if existed {
            self.stats.deletes += 1;
        }
        existed
    }

    /// Atomically adds `delta` to a [`crate::Payload::Count`] entry,
    /// returning the new value, or `None` on a miss.
    ///
    /// # Errors
    ///
    /// [`CacheError::Codec`] if the entry is not a count payload.
    pub fn incr(&mut self, key: &str, delta: i64, now: u64) -> Result<Option<i64>> {
        self.purge_if_expired(key, now);
        let Some(e) = self.map.get(key) else {
            return Ok(None);
        };
        let payload = crate::Payload::decode(&e.data)?;
        let n = payload
            .as_count()
            .ok_or_else(|| CacheError::Codec("incr target is not a count".into()))?;
        let new = n + delta;
        let ttl_rest = e.expires_at.map(|t| t.saturating_sub(now));
        let token = e.cas;
        self.cas(
            key,
            crate::Payload::Count(new).encode(),
            token,
            ttl_rest,
            now,
        )?;
        Ok(Some(new))
    }

    /// True if a live (unexpired) entry exists; does not touch LRU.
    pub fn contains(&mut self, key: &str, now: u64) -> bool {
        !self.purge_if_expired(key, now) && self.map.contains_key(key)
    }

    /// Removes everything (memcached `flush_all`).
    pub fn flush_all(&mut self) {
        self.map.clear();
        self.lru.clear();
        self.bytes = 0;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Zeroes counters without touching stored data.
    pub fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently accounted (values + keys + modelled overhead).
    pub fn bytes_used(&self) -> usize {
        self.bytes
    }

    /// The configured byte capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.config.capacity_bytes
    }

    // ----- internals -----

    fn check_size(&self, data: &Bytes) -> Result<()> {
        if data.len() > self.config.item_limit_bytes {
            return Err(CacheError::ValueTooLarge {
                size: data.len(),
                limit: self.config.item_limit_bytes,
            });
        }
        Ok(())
    }

    /// Removes `key` if its TTL lapsed; returns true if it was expired.
    fn purge_if_expired(&mut self, key: &str, now: u64) -> bool {
        let expired = matches!(self.map.get(key), Some(e) if e.expired(now));
        if expired {
            self.remove_entry(key);
            self.stats.expired += 1;
        }
        expired
    }

    fn insert_entry(&mut self, key: &str, data: Bytes, ttl: Option<u64>, now: u64) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let cas = self.next_cas;
        self.next_cas += 1;
        let entry = Entry {
            data,
            stamp,
            cas,
            expires_at: ttl.map(|d| now.saturating_add(d)),
        };
        self.bytes += entry.size(key);
        self.lru.insert(stamp, key.to_owned());
        self.map.insert(key.to_owned(), entry);
    }

    fn remove_entry(&mut self, key: &str) -> bool {
        if let Some(e) = self.map.remove(key) {
            self.bytes -= e.size(key);
            self.lru.remove(&e.stamp);
            true
        } else {
            false
        }
    }

    fn evict_to_capacity(&mut self) {
        while self.bytes > self.config.capacity_bytes {
            let Some((&stamp, _)) = self.lru.iter().next() else {
                break;
            };
            let key = self.lru.remove(&stamp).expect("stamp present");
            if let Some(e) = self.map.remove(&key) {
                self.bytes -= e.size(&key);
                self.stats.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Payload;

    fn small_store(capacity: usize) -> CacheStore {
        CacheStore::new(StoreConfig {
            capacity_bytes: capacity,
            item_limit_bytes: 1024,
        })
    }

    fn bytes_of(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = small_store(10_000);
        s.set("k", bytes_of("v"), None, 0).unwrap();
        assert_eq!(s.get("k", 0, true).unwrap(), bytes_of("v"));
        assert_eq!(s.stats().hits, 1);
        assert!(s.get("nope", 0, true).is_none());
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Each entry ~ key(2) + data(10) + 60 ≈ 72 bytes; room for ~3.
        let mut s = small_store(220);
        for i in 0..3 {
            s.set(&format!("k{i}"), Bytes::from(vec![0u8; 10]), None, 0)
                .unwrap();
        }
        // Touch k0 so k1 becomes coldest.
        s.get("k0", 0, true);
        s.set("k3", Bytes::from(vec![0u8; 10]), None, 0).unwrap();
        assert!(s.get("k0", 0, true).is_some(), "k0 was touched, survives");
        assert!(s.get("k1", 0, true).is_none(), "k1 was coldest, evicted");
        assert!(s.stats().evictions >= 1);
        assert!(s.bytes_used() <= s.capacity_bytes());
    }

    #[test]
    fn no_bump_get_leaves_lru_order() {
        let mut s = small_store(220);
        for i in 0..3 {
            s.set(&format!("k{i}"), Bytes::from(vec![0u8; 10]), None, 0)
                .unwrap();
        }
        // Touch k0 WITHOUT bump: k0 stays coldest and is evicted next.
        s.get("k0", 0, false);
        s.set("k3", Bytes::from(vec![0u8; 10]), None, 0).unwrap();
        assert!(s.get("k0", 0, false).is_none(), "k0 not bumped, evicted");
        assert!(s.get("k1", 0, false).is_some());
    }

    #[test]
    fn ttl_expiry() {
        let mut s = small_store(10_000);
        s.set("k", bytes_of("v"), Some(100), 1000).unwrap();
        assert!(s.get("k", 1050, true).is_some());
        assert!(s.get("k", 1100, true).is_none(), "expired exactly at ttl");
        assert_eq!(s.stats().expired, 1);
        assert!(!s.contains("k", 1100));
    }

    #[test]
    fn add_only_when_absent() {
        let mut s = small_store(10_000);
        s.add("k", bytes_of("a"), None, 0).unwrap();
        assert!(matches!(
            s.add("k", bytes_of("b"), None, 0),
            Err(CacheError::AlreadyStored)
        ));
        // After expiry, add succeeds again.
        s.set("e", bytes_of("x"), Some(10), 0).unwrap();
        s.add("e", bytes_of("y"), None, 20).unwrap();
        assert_eq!(s.get("e", 20, true).unwrap(), bytes_of("y"));
    }

    #[test]
    fn cas_happy_path_and_conflict() {
        let mut s = small_store(10_000);
        s.set("k", bytes_of("v1"), None, 0).unwrap();
        let v = s.gets("k", 0, true).unwrap();
        s.cas("k", bytes_of("v2"), v.cas, None, 0).unwrap();
        assert_eq!(s.get("k", 0, true).unwrap(), bytes_of("v2"));
        // Old token now conflicts.
        assert!(matches!(
            s.cas("k", bytes_of("v3"), v.cas, None, 0),
            Err(CacheError::CasConflict)
        ));
        assert_eq!(s.stats().cas_conflicts, 1);
    }

    #[test]
    fn cas_on_missing_key_conflicts() {
        let mut s = small_store(10_000);
        assert!(matches!(
            s.cas("ghost", bytes_of("v"), 1, None, 0),
            Err(CacheError::CasConflict)
        ));
    }

    #[test]
    fn cas_token_changes_on_every_store() {
        let mut s = small_store(10_000);
        s.set("k", bytes_of("a"), None, 0).unwrap();
        let t1 = s.gets("k", 0, true).unwrap().cas;
        s.set("k", bytes_of("b"), None, 0).unwrap();
        let t2 = s.gets("k", 0, true).unwrap().cas;
        assert_ne!(t1, t2);
    }

    #[test]
    fn delete_frees_bytes() {
        let mut s = small_store(10_000);
        s.set("k", Bytes::from(vec![0u8; 100]), None, 0).unwrap();
        let used = s.bytes_used();
        assert!(used > 100);
        assert!(s.delete("k"));
        assert_eq!(s.bytes_used(), 0);
        assert!(!s.delete("k"));
        assert_eq!(s.stats().deletes, 1);
    }

    #[test]
    fn incr_on_count_payload() {
        let mut s = small_store(10_000);
        s.set("n", Payload::Count(10).encode(), None, 0).unwrap();
        assert_eq!(s.incr("n", 5, 0).unwrap(), Some(15));
        assert_eq!(s.incr("n", -3, 0).unwrap(), Some(12));
        let got = Payload::decode(&s.get("n", 0, true).unwrap()).unwrap();
        assert_eq!(got, Payload::Count(12));
        assert_eq!(s.incr("missing", 1, 0).unwrap(), None);
    }

    #[test]
    fn incr_on_non_count_errors() {
        let mut s = small_store(10_000);
        s.set("r", Payload::Rows(vec![]).encode(), None, 0).unwrap();
        assert!(s.incr("r", 1, 0).is_err());
    }

    #[test]
    fn value_too_large_rejected() {
        let mut s = small_store(10_000);
        let err = s
            .set("k", Bytes::from(vec![0u8; 2048]), None, 0)
            .unwrap_err();
        assert!(matches!(err, CacheError::ValueTooLarge { .. }));
        assert!(s.is_empty());
    }

    #[test]
    fn flush_all_clears() {
        let mut s = small_store(10_000);
        s.set("a", bytes_of("1"), None, 0).unwrap();
        s.set("b", bytes_of("2"), None, 0).unwrap();
        s.flush_all();
        assert!(s.is_empty());
        assert_eq!(s.bytes_used(), 0);
    }

    #[test]
    fn overwrite_replaces_accounting() {
        let mut s = small_store(10_000);
        s.set("k", Bytes::from(vec![0u8; 100]), None, 0).unwrap();
        let big = s.bytes_used();
        s.set("k", Bytes::from(vec![0u8; 10]), None, 0).unwrap();
        assert!(s.bytes_used() < big);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn memory_bound_never_exceeded_under_churn() {
        let mut s = small_store(500);
        for i in 0..200 {
            s.set(
                &format!("key{i}"),
                Bytes::from(vec![0u8; (i % 40) as usize]),
                None,
                0,
            )
            .unwrap();
            assert!(
                s.bytes_used() <= s.capacity_bytes(),
                "iteration {i}: {} > {}",
                s.bytes_used(),
                s.capacity_bytes()
            );
        }
    }
}
