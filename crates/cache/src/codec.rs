//! Binary codec for cached payloads.
//!
//! memcached stores opaque bytes; the real CacheGenie pickles Python row
//! lists into it and its triggers unpickle → modify → re-pickle. This
//! module is our equivalent: a small length-prefixed little-endian format
//! with a checksum, over [`Payload`] values (row sets, counts, raw bytes).
//! Trigger bodies pay the same decode-modify-encode cost the paper's do.

use crate::error::{CacheError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use genie_storage::{Row, Value};

const MAGIC: u16 = 0xCA6E;
const VERSION: u8 = 1;

/// A typed cache payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// An ordered list of rows (feature/link query results).
    Rows(Vec<Row>),
    /// A scalar count (count-query results).
    Count(i64),
    /// Uninterpreted bytes (application-managed entries).
    Raw(Vec<u8>),
    /// A Top-K list with reserve rows. `complete` records whether the list
    /// covers *every* matching row (total ≤ capacity), which decides
    /// whether a tail append after deletes is sound — the bookkeeping the
    /// paper's reserve mechanism needs.
    TopK {
        /// Rows in sort order, up to K + reserve.
        rows: Vec<Row>,
        /// True iff the list contains every matching database row.
        complete: bool,
    },
}

impl Payload {
    /// Encodes the payload with header and trailing checksum.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION);
        match self {
            Payload::Rows(rows) => {
                buf.put_u8(0);
                buf.put_u32_le(rows.len() as u32);
                for row in rows {
                    encode_row(&mut buf, row);
                }
            }
            Payload::Count(n) => {
                buf.put_u8(1);
                buf.put_i64_le(*n);
            }
            Payload::Raw(bytes) => {
                buf.put_u8(2);
                buf.put_u32_le(bytes.len() as u32);
                buf.put_slice(bytes);
            }
            Payload::TopK { rows, complete } => {
                buf.put_u8(3);
                buf.put_u8(u8::from(*complete));
                buf.put_u32_le(rows.len() as u32);
                for row in rows {
                    encode_row(&mut buf, row);
                }
            }
        }
        let sum = fnv1a(&buf);
        buf.put_u32_le(sum);
        buf.freeze()
    }

    /// Decodes a payload previously produced by [`Payload::encode`].
    ///
    /// # Errors
    ///
    /// [`CacheError::Codec`] on truncation, bad magic/version, an unknown
    /// tag, or a checksum mismatch.
    pub fn decode(data: &[u8]) -> Result<Payload> {
        if data.len() < 8 {
            return Err(CacheError::Codec("payload too short".into()));
        }
        let (body, sum_bytes) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(sum_bytes.try_into().expect("4 bytes"));
        if fnv1a(body) != stored {
            return Err(CacheError::Codec("checksum mismatch".into()));
        }
        let mut buf = body;
        let magic = buf.get_u16_le();
        if magic != MAGIC {
            return Err(CacheError::Codec(format!("bad magic {magic:#x}")));
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(CacheError::Codec(format!("unsupported version {version}")));
        }
        let tag = buf.get_u8();
        match tag {
            0 => {
                let n = checked_u32(&mut buf, "row count")? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    rows.push(decode_row(&mut buf)?);
                }
                Ok(Payload::Rows(rows))
            }
            1 => {
                if buf.remaining() < 8 {
                    return Err(CacheError::Codec("truncated count".into()));
                }
                Ok(Payload::Count(buf.get_i64_le()))
            }
            2 => {
                let n = checked_u32(&mut buf, "raw length")? as usize;
                if buf.remaining() < n {
                    return Err(CacheError::Codec("truncated raw payload".into()));
                }
                Ok(Payload::Raw(buf[..n].to_vec()))
            }
            3 => {
                if buf.remaining() < 1 {
                    return Err(CacheError::Codec("truncated top-k flag".into()));
                }
                let complete = buf.get_u8() != 0;
                let n = checked_u32(&mut buf, "top-k row count")? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    rows.push(decode_row(&mut buf)?);
                }
                Ok(Payload::TopK { rows, complete })
            }
            other => Err(CacheError::Codec(format!("unknown payload tag {other}"))),
        }
    }

    /// The rows if this is a `Rows` payload.
    pub fn as_rows(&self) -> Option<&[Row]> {
        match self {
            Payload::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The rows and completeness flag if this is a `TopK` payload.
    pub fn as_top_k(&self) -> Option<(&[Row], bool)> {
        match self {
            Payload::TopK { rows, complete } => Some((rows, *complete)),
            _ => None,
        }
    }

    /// The count if this is a `Count` payload.
    pub fn as_count(&self) -> Option<i64> {
        match self {
            Payload::Count(n) => Some(*n),
            _ => None,
        }
    }
}

fn checked_u32(buf: &mut &[u8], what: &str) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(CacheError::Codec(format!("truncated {what}")));
    }
    Ok(buf.get_u32_le())
}

fn encode_row(buf: &mut BytesMut, row: &Row) {
    buf.put_u32_le(row.arity() as u32);
    for v in row.values() {
        encode_value(buf, v);
    }
}

fn decode_row(buf: &mut &[u8]) -> Result<Row> {
    let n = checked_u32(buf, "row arity")? as usize;
    let mut vals = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        vals.push(decode_value(buf)?);
    }
    Ok(Row::new(vals))
}

fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(x) => {
            buf.put_u8(1);
            buf.put_i64_le(*x);
        }
        Value::Float(x) => {
            buf.put_u8(2);
            buf.put_f64_le(*x);
        }
        Value::Text(s) => {
            buf.put_u8(3);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(u8::from(*b));
        }
        Value::Timestamp(t) => {
            buf.put_u8(5);
            buf.put_i64_le(*t);
        }
    }
}

fn decode_value(buf: &mut &[u8]) -> Result<Value> {
    if buf.remaining() < 1 {
        return Err(CacheError::Codec("truncated value tag".into()));
    }
    let tag = buf.get_u8();
    match tag {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 8 {
                return Err(CacheError::Codec("truncated int".into()));
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(CacheError::Codec("truncated float".into()));
            }
            Ok(Value::Float(buf.get_f64_le()))
        }
        3 => {
            let n = checked_u32(buf, "text length")? as usize;
            if buf.remaining() < n {
                return Err(CacheError::Codec("truncated text".into()));
            }
            let s = std::str::from_utf8(&buf[..n])
                .map_err(|_| CacheError::Codec("invalid utf-8 in text".into()))?
                .to_owned();
            buf.advance(n);
            Ok(Value::Text(s))
        }
        4 => {
            if buf.remaining() < 1 {
                return Err(CacheError::Codec("truncated bool".into()));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        5 => {
            if buf.remaining() < 8 {
                return Err(CacheError::Codec("truncated timestamp".into()));
            }
            Ok(Value::Timestamp(buf.get_i64_le()))
        }
        other => Err(CacheError::Codec(format!("unknown value tag {other}"))),
    }
}

fn fnv1a(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c9dc5;
    for &b in data {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x01000193);
    }
    hash
}

/// 64-bit hash of a key, used by the consistent-hash ring.
///
/// FNV-1a followed by a splitmix64 finalizer: plain FNV avalanches poorly
/// in the upper bits for near-identical strings (e.g. `server0#vnode1` vs
/// `server0#vnode2`), which would leave the ring badly unbalanced.
pub fn hash_key(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in key.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    // splitmix64 finalizer.
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xbf58476d1ce4e5b9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94d049bb133111eb);
    hash ^ (hash >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_storage::row;

    #[test]
    fn rows_roundtrip() {
        let p = Payload::Rows(vec![
            row![1i64, "alice", true, 2.5f64],
            row![Value::Null, Value::Timestamp(99)],
        ]);
        let enc = p.encode();
        assert_eq!(Payload::decode(&enc).unwrap(), p);
    }

    #[test]
    fn count_roundtrip() {
        for n in [0i64, -5, i64::MAX, i64::MIN] {
            let p = Payload::Count(n);
            assert_eq!(Payload::decode(&p.encode()).unwrap(), p);
        }
    }

    #[test]
    fn raw_roundtrip() {
        let p = Payload::Raw(vec![0, 1, 2, 255]);
        assert_eq!(Payload::decode(&p.encode()).unwrap(), p);
        let empty = Payload::Raw(vec![]);
        assert_eq!(Payload::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn empty_rows_roundtrip() {
        let p = Payload::Rows(vec![]);
        assert_eq!(Payload::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn corruption_detected() {
        let p = Payload::Count(42);
        let mut bytes = p.encode().to_vec();
        bytes[5] ^= 0xFF;
        assert!(matches!(Payload::decode(&bytes), Err(CacheError::Codec(_))));
    }

    #[test]
    fn truncation_detected() {
        let p = Payload::Rows(vec![row![1i64]]);
        let bytes = p.encode();
        for cut in 0..bytes.len() {
            assert!(
                Payload::decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes should not decode"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let p = Payload::Count(1);
        let mut bytes = p.encode().to_vec();
        bytes[0] = 0;
        // Fix up checksum so only the magic check can fail.
        let body_len = bytes.len() - 4;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        let err = Payload::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn top_k_roundtrip() {
        for complete in [true, false] {
            let p = Payload::TopK {
                rows: vec![row![1i64, "a"], row![2i64, "b"]],
                complete,
            };
            assert_eq!(Payload::decode(&p.encode()).unwrap(), p);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Payload::Count(3).as_count(), Some(3));
        assert_eq!(Payload::Count(3).as_rows(), None);
        let rows = Payload::Rows(vec![row![1i64]]);
        assert_eq!(rows.as_rows().unwrap().len(), 1);
        assert_eq!(rows.as_count(), None);
        let tk = Payload::TopK {
            rows: vec![row![1i64]],
            complete: true,
        };
        assert!(tk.as_top_k().unwrap().1);
        assert!(rows.as_top_k().is_none());
    }

    #[test]
    fn hash_key_is_stable_and_spread() {
        let a = hash_key("LatestWallPostsOfUser:42");
        let b = hash_key("LatestWallPostsOfUser:43");
        assert_ne!(a, b);
        assert_eq!(a, hash_key("LatestWallPostsOfUser:42"));
    }
}
