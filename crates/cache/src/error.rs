//! Cache error types.

use std::fmt;

/// Errors from cache operations or payload decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A stored payload failed to decode (corruption or version skew).
    Codec(String),
    /// A CAS store lost the race: the token no longer matches.
    CasConflict,
    /// `add` found the key already present.
    AlreadyStored,
    /// The cluster has no servers.
    NoServers,
    /// The value exceeds the per-item size limit.
    ValueTooLarge { size: usize, limit: usize },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Codec(m) => write!(f, "payload codec error: {m}"),
            CacheError::CasConflict => f.write_str("compare-and-swap token mismatch"),
            CacheError::AlreadyStored => f.write_str("key already stored"),
            CacheError::NoServers => f.write_str("cache cluster has no servers"),
            CacheError::ValueTooLarge { size, limit } => {
                write!(f, "value of {size} bytes exceeds item limit {limit}")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Convenience result alias for cache operations.
pub type Result<T> = std::result::Result<T, CacheError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CacheError::CasConflict
            .to_string()
            .contains("compare-and-swap"));
        assert!(CacheError::Codec("bad".into()).to_string().contains("bad"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CacheError>();
    }
}
