//! Replica placement for hot keys: which servers hold a copy of each
//! replicated key, plus round-robin read spreading.
//!
//! The table maps `key -> [server indices]` with the **primary first**
//! (the ring owner at promotion time). Reads of a replicated key pick
//! an alive member round-robin; writes go to every alive member under
//! the key's lease-shard lock (see `cluster.rs` for the ordering
//! argument). Membership changes (promotion, node kill/rejoin
//! rebalance) swap the whole vector atomically behind an `RwLock`, so
//! readers only ever observe complete replica sets.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared table of hot-key replica sets.
#[derive(Debug, Default)]
pub struct ReplicaTable {
    map: RwLock<HashMap<String, Arc<Vec<usize>>>>,
    rr: AtomicU64,
}

impl ReplicaTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The replica set for `key`, primary first, if the key is hot.
    pub fn get(&self, key: &str) -> Option<Arc<Vec<usize>>> {
        self.map.read().get(key).cloned()
    }

    /// Installs (or replaces) the replica set for `key`.
    pub fn insert(&self, key: &str, servers: Vec<usize>) {
        self.map.write().insert(key.to_owned(), Arc::new(servers));
    }

    /// Demotes `key` back to a plain single-owner key.
    pub fn remove(&self, key: &str) {
        self.map.write().remove(key);
    }

    /// Drops every replica set.
    pub fn clear(&self) {
        self.map.write().clear();
    }

    /// Number of replicated keys.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if nothing is replicated.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// All replicated keys (cloned) — for rebalance sweeps.
    pub fn keys(&self) -> Vec<String> {
        self.map.read().keys().cloned().collect()
    }

    /// Picks a member of `servers` to serve a read, round-robin over
    /// the members `alive` admits; falls back to the primary if no
    /// member is alive (the caller handles the resulting miss).
    pub fn pick(&self, servers: &[usize], alive: impl Fn(usize) -> bool) -> usize {
        let live: Vec<usize> = servers.iter().copied().filter(|&s| alive(s)).collect();
        if live.is_empty() {
            return servers[0];
        }
        let n = self.rr.fetch_add(1, Ordering::Relaxed);
        live[(n % live.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let t = ReplicaTable::new();
        assert!(t.get("k").is_none());
        t.insert("k", vec![2, 0, 1]);
        assert_eq!(*t.get("k").unwrap(), vec![2, 0, 1]);
        assert_eq!(t.len(), 1);
        t.remove("k");
        assert!(t.get("k").is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn pick_round_robins_over_alive_members() {
        let t = ReplicaTable::new();
        let servers = vec![0, 1, 2];
        let mut seen = [0usize; 3];
        for _ in 0..30 {
            seen[t.pick(&servers, |_| true)] += 1;
        }
        assert!(seen.iter().all(|&c| c == 10), "uneven spread {seen:?}");
    }

    #[test]
    fn pick_skips_dead_members() {
        let t = ReplicaTable::new();
        let servers = vec![0, 1, 2];
        for _ in 0..20 {
            let s = t.pick(&servers, |s| s != 1);
            assert_ne!(s, 1, "picked a dead member");
        }
        // All dead: fall back to the primary (caller sees a miss).
        assert_eq!(t.pick(&servers, |_| false), 0);
    }
}
