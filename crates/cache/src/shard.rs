//! Lock-striped store: one cache server split into N independently
//! locked [`CacheStore`] shards so concurrent GETs to different keys
//! never serialize on a single server mutex.
//!
//! Striping is by the same `hash_key` the ring uses (different mixing:
//! the shard index comes from the upper bits so ring placement and
//! shard placement stay independent). Capacity is divided across
//! shards with [`split_capacity`], which never drops remainder bytes.

use crate::codec::hash_key;
use crate::store::{CacheStore, EvictionPolicy, StoreConfig, StoreStats};
use parking_lot::Mutex;

/// Splits `total` bytes across `parts` buckets without losing the
/// remainder: the first `total % parts` buckets get one extra byte.
/// The bucket sizes always sum to exactly `total`.
pub fn split_capacity(total: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0, "split_capacity needs at least one bucket");
    let base = total / parts;
    let rem = total % parts;
    (0..parts)
        .map(|i| if i < rem { base + 1 } else { base })
        .collect()
}

/// One cache server as a set of lock-striped shards.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Mutex<CacheStore>>,
    /// Bit mask for shard selection; shard count is a power of two.
    mask: u64,
}

impl ShardedStore {
    /// Builds a server of `shards` stripes (rounded up to a power of
    /// two) sharing `capacity_bytes` between them.
    pub fn new(
        capacity_bytes: usize,
        item_limit_bytes: usize,
        shards: usize,
        eviction: EvictionPolicy,
    ) -> Self {
        let n = shards.max(1).next_power_of_two();
        let caps = split_capacity(capacity_bytes, n);
        let shards = caps
            .into_iter()
            .map(|cap| {
                Mutex::new(CacheStore::new(StoreConfig {
                    capacity_bytes: cap,
                    item_limit_bytes,
                    eviction,
                }))
            })
            .collect();
        ShardedStore {
            shards,
            mask: (n - 1) as u64,
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The lock guarding `key`'s stripe. Callers lock it themselves so
    /// multi-step operations (lease validate + store write) can hold it
    /// across the sequence.
    pub fn shard_for(&self, key: &str) -> &Mutex<CacheStore> {
        // hash_key's low bits drive ring placement; use the upper half
        // for striping so the two partitions are uncorrelated.
        let h = hash_key(key) >> 32;
        &self.shards[(h & self.mask) as usize]
    }

    /// Runs `f` with `key`'s stripe locked.
    pub fn with<T>(&self, key: &str, f: impl FnOnce(&mut CacheStore) -> T) -> T {
        f(&mut self.shard_for(key).lock())
    }

    /// Aggregated counters across all stripes.
    pub fn stats(&self) -> StoreStats {
        let mut out = StoreStats::default();
        for s in &self.shards {
            out.merge(&s.lock().stats());
        }
        out
    }

    /// Zeroes counters on every stripe.
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.lock().reset_stats();
        }
    }

    /// Drops every entry on every stripe (node memory wipe).
    pub fn flush_all(&self) {
        for s in &self.shards {
            s.lock().flush_all();
        }
    }

    /// Total live entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no stripe holds anything.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Total bytes accounted across stripes.
    pub fn bytes_used(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes_used()).sum()
    }

    /// Total configured capacity (sums to the server's exact budget).
    pub fn capacity_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity_bytes()).sum()
    }

    /// All live keys across stripes (cloned).
    pub fn keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().keys());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn split_capacity_sums_exactly() {
        for (total, parts) in [(1000, 3), (7, 16), (0, 4), (1024, 8), (999_999, 7)] {
            let caps = split_capacity(total, parts);
            assert_eq!(caps.len(), parts);
            assert_eq!(caps.iter().sum::<usize>(), total, "{total}/{parts}");
            // No bucket differs from another by more than one byte.
            let min = caps.iter().min().unwrap();
            let max = caps.iter().max().unwrap();
            assert!(max - min <= 1, "{total}/{parts}: uneven split {caps:?}");
        }
    }

    #[test]
    fn sharded_roundtrip_and_totals() {
        let s = ShardedStore::new(1_000_000, 1024, 8, EvictionPolicy::Clock);
        assert_eq!(s.shard_count(), 8);
        assert_eq!(s.capacity_bytes(), 1_000_000);
        for i in 0..100 {
            let k = format!("key{i}");
            s.with(&k, |st| st.set(&k, Bytes::from(vec![0u8; 10]), None, 0))
                .unwrap();
        }
        assert_eq!(s.len(), 100);
        for i in 0..100 {
            let k = format!("key{i}");
            assert!(s.with(&k, |st| st.get(&k, 0, true)).is_some());
        }
        assert_eq!(s.stats().hits, 100);
        // Keys actually spread over multiple stripes.
        let occupied = (0..s.shard_count())
            .filter(|&i| !s.shards[i].lock().is_empty())
            .count();
        assert!(occupied > 1, "only {occupied} stripes used");
        s.flush_all();
        assert!(s.is_empty());
        assert_eq!(s.bytes_used(), 0);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let s = ShardedStore::new(1000, 100, 5, EvictionPolicy::Clock);
        assert_eq!(s.shard_count(), 8);
        let s1 = ShardedStore::new(1000, 100, 0, EvictionPolicy::Clock);
        assert_eq!(s1.shard_count(), 1);
    }
}
