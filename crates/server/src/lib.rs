//! # genie-server — the loopback TCP front-end
//!
//! Serves the CacheGenie social application over a line-delimited
//! request / length-delimited response protocol on loopback TCP
//! (`std::net` only — the workspace vendors no async runtime), with the
//! production middleware stack the paper's deployment implies but never
//! spells out:
//!
//! 1. **Bounded accept queue** — connection overflow sheds with a
//!    retryable `503` instead of queueing unboundedly.
//! 2. **Admission control** — a hard cap on concurrently executing page
//!    requests.
//! 3. **Per-client rate limiting** — token buckets keyed by the `HELLO`
//!    principal.
//! 4. **Pooled sessions** — each request runs on a checked-out ORM
//!    session over one shared database/cache deployment.
//! 5. **Per-request metrics** — lock-free log-bucketed latency
//!    histograms with p50/p99/p999 per page kind.
//! 6. **Graceful shutdown** — drain in-flight requests, refuse new
//!    connections, flush the WAL group-commit queue, report zero
//!    drops/leaks.
//!
//! The wire protocol, middleware order, and fault matrix are documented
//! in `docs/SERVING.md`; protocol conformance lives in
//! `tests/protocol.rs` and fault injection in `tests/faults.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod middleware;
pub mod pool;
pub mod proto;
pub mod server;

pub use client::ServeClient;
pub use metrics::{LatencyHistogram, PageSummary, ServerMetrics, STATUS_CODES};
pub use middleware::{Admission, InflightGuard, RateLimiter};
pub use pool::{PoolSnapshot, SessionLease, SessionPool};
pub use proto::{
    parse_request, read_response, retryable, AdminCmd, Page, ProtoError, Request, Response,
    BAD_REQUEST, INTERNAL, MAX_LINE, NOT_FOUND, RATE_LIMITED, RETRY, SHED, TIMEOUT, TOO_LARGE,
};
pub use server::{Server, ServerConfig, ShutdownReport};
