//! A minimal blocking client for the serve protocol, used by the test
//! suites, the workload driver, and the benches. One `ServeClient` is
//! one TCP connection; requests are serialized on it (the protocol is
//! strictly request/response per connection, though requests may be
//! pipelined by writing several frames before reading).

use crate::proto::{read_response, Page, Response};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Blocking protocol client over one loopback connection.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ServeClient {
    /// Connects with a sane default I/O timeout (5 s).
    ///
    /// # Errors
    ///
    /// Socket errors from connecting.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_timeout(addr, Duration::from_secs(5))
    }

    /// Connects with an explicit read/write timeout.
    ///
    /// # Errors
    ///
    /// Socket errors from connecting.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient { stream, reader })
    }

    /// Sends one raw frame (a newline is appended) and reads the
    /// response — the building block every typed helper uses.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket, `UnexpectedEof` when the server
    /// closed the connection, `InvalidData` on framing violations.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<Response> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        read_response(&mut self.reader)
    }

    /// Writes raw bytes without framing — for protocol-abuse tests
    /// (partial frames, garbage, oversized payloads).
    ///
    /// # Errors
    ///
    /// Socket write errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one response without sending anything (pairs with
    /// [`ServeClient::send_raw`] for pipelining tests).
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::request_line`].
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        read_response(&mut self.reader)
    }

    /// Announces a rate-limit principal.
    ///
    /// # Errors
    ///
    /// I/O errors from the exchange.
    pub fn hello(&mut self, client: &str) -> std::io::Result<Response> {
        self.request_line(&format!("HELLO {client}"))
    }

    /// Requests one page.
    ///
    /// # Errors
    ///
    /// I/O errors from the exchange.
    pub fn page(&mut self, kind: Page, user: i64, arg: Option<i64>) -> std::io::Result<Response> {
        let line = match arg {
            Some(a) => format!("PAGE {} {user} {a}", kind.name()),
            None => format!("PAGE {} {user}", kind.name()),
        };
        self.request_line(&line)
    }

    /// `HEALTH` probe.
    ///
    /// # Errors
    ///
    /// I/O errors from the exchange.
    pub fn health(&mut self) -> std::io::Result<Response> {
        self.request_line("HEALTH")
    }

    /// Fetches the metrics exposition.
    ///
    /// # Errors
    ///
    /// I/O errors from the exchange.
    pub fn metrics(&mut self) -> std::io::Result<Response> {
        self.request_line("METRICS")
    }

    /// Issues an admin command (`stats`, `flush`, `checkpoint`,
    /// `drain`).
    ///
    /// # Errors
    ///
    /// I/O errors from the exchange.
    pub fn admin(&mut self, cmd: &str) -> std::io::Result<Response> {
        self.request_line(&format!("ADMIN {cmd}"))
    }

    /// Polite goodbye; the server closes after responding.
    ///
    /// # Errors
    ///
    /// I/O errors from the exchange.
    pub fn quit(&mut self) -> std::io::Result<Response> {
        self.request_line("QUIT")
    }

    /// Adjusts the read timeout mid-connection (fault tests).
    ///
    /// # Errors
    ///
    /// Socket option errors.
    pub fn set_read_timeout(&mut self, timeout: Duration) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(Some(timeout))
    }

    /// The underlying stream, for shutdown/half-close fault tests.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
