//! The front-end server: a pooled thread-per-connection loop over
//! loopback TCP with the production middleware stack layered on every
//! request.
//!
//! ## Architecture
//!
//! ```text
//! acceptor thread ──► bounded connection queue ──► worker threads (N)
//!      │ (full ⇒ ERR 503 shed, close)                 │ one connection at a time
//!      │ (draining ⇒ ERR 503 draining, close)         ▼
//!      ▼                                    per-request pipeline:
//!   TcpListener                             admission ► rate limit ► session
//!                                           checkout ► page execution ► metrics
//! ```
//!
//! Back-pressure is bounded at both layers: the accept queue holds at
//! most `backlog` connections (overflow is refused with a retryable
//! `503`, never queued unboundedly), and at most `max_inflight` page
//! requests execute concurrently (overflow likewise sheds). Graceful
//! shutdown flips the server to *draining*: the acceptor refuses new
//! connections, workers finish every request whose frame was read
//! (responding normally), idle and queued connections are closed with
//! a retryable error, and the WAL group-commit queue is flushed before
//! [`Server::shutdown`] returns its report.

use crate::metrics::ServerMetrics;
use crate::middleware::{Admission, RateLimiter};
use crate::pool::{PoolSnapshot, SessionPool};
use crate::proto::{
    parse_request, AdminCmd, Page, Request, Response, BAD_REQUEST, INTERNAL, MAX_LINE, RETRY, SHED,
    TIMEOUT, TOO_LARGE,
};
use cachegenie::CacheGenie;
use genie_social::AppEnv;
use genie_storage::{Database, StorageError, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;

/// Tuning for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads — the maximum concurrently-served connections.
    pub workers: usize,
    /// Bounded accept-queue depth; a connection arriving with the
    /// queue full is refused with `ERR 503 shed` instead of waiting.
    pub backlog: usize,
    /// Maximum concurrently-executing page requests (0 = unlimited).
    /// Requests over the limit get `ERR 503 shed`.
    pub max_inflight: usize,
    /// Sustained per-client request rate (tokens/second; 0 disables).
    pub rate_per_sec: f64,
    /// Token-bucket burst capacity.
    pub rate_burst: f64,
    /// Wall posts per `batch_post` page transaction.
    pub batch_posts: usize,
    /// Socket read-timeout granularity: how often a blocked worker
    /// wakes to check deadlines and the drain flag.
    pub read_tick: Duration,
    /// Close a connection with no request in flight after this long.
    pub idle_timeout: Duration,
    /// A request frame must complete within this budget once its first
    /// byte arrives — the slow-loris bound. Violations get `ERR 408`.
    pub request_read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            backlog: 16,
            max_inflight: 0,
            rate_per_sec: 0.0,
            rate_burst: 32.0,
            batch_posts: 4,
            read_tick: Duration::from_millis(20),
            idle_timeout: Duration::from_secs(10),
            request_read_timeout: Duration::from_millis(500),
        }
    }
}

/// What a drained shutdown observed — the acceptance evidence for
/// "zero dropped in-flight requests, zero leaked sessions".
#[derive(Debug, Clone, Copy)]
pub struct ShutdownReport {
    /// Requests answered after draining began (their frames were
    /// already read, so they completed normally).
    pub drained_in_flight: u64,
    /// Requests whose frame was read but never answered. Must be 0.
    pub dropped_in_flight: u64,
    /// Sessions not returned to the pool. Must be 0.
    pub leaked_sessions: usize,
    /// Requests served over the server's lifetime.
    pub requests_total: u64,
    /// True when the WAL group-commit queue was drained and synced
    /// (always true for durable deployments, false for in-memory).
    pub wal_flushed: bool,
}

struct Shared {
    cfg: ServerConfig,
    db: Database,
    genie: CacheGenie,
    pool: SessionPool,
    metrics: ServerMetrics,
    limiter: RateLimiter,
    admission: Admission,
    state: AtomicU8,
    conn_seq: AtomicU64,
    requests_started: AtomicU64,
    requests_finished: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_DRAINING
    }

    fn begin_drain(&self) {
        self.state.store(STATE_DRAINING, Ordering::Release);
    }
}

/// A running server instance. Dropping it without calling
/// [`Server::shutdown`] aborts the threads ungracefully (tests should
/// always shut down).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    sender: Option<SyncSender<TcpStream>>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds a loopback listener and starts the acceptor plus worker
    /// pool over the deployment's database/cache/app.
    ///
    /// # Errors
    ///
    /// Socket errors from binding the listener.
    pub fn start(env: &AppEnv, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let workers_n = cfg.workers.max(1);
        let backlog = cfg.backlog.max(1);
        let shared = Arc::new(Shared {
            pool: SessionPool::new(&env.app, workers_n),
            limiter: RateLimiter::new(cfg.rate_per_sec, cfg.rate_burst),
            admission: Admission::new(cfg.max_inflight),
            metrics: ServerMetrics::default(),
            db: env.db.clone(),
            genie: env.genie.clone(),
            state: AtomicU8::new(STATE_RUNNING),
            conn_seq: AtomicU64::new(0),
            requests_started: AtomicU64::new(0),
            requests_finished: AtomicU64::new(0),
            cfg,
        });
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(backlog);
        let rx = Arc::new(parking_lot::Mutex::new(rx));
        let workers = (0..workers_n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("serve-acceptor".to_owned())
                .spawn(move || acceptor_loop(&shared, &listener, &tx))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            addr,
            sender: Some(tx),
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-side metrics (live).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Session-pool accounting (live).
    pub fn pool_snapshot(&self) -> PoolSnapshot {
        self.shared.pool.snapshot()
    }

    /// True once draining has begun (via [`Server::shutdown`] or
    /// `ADMIN drain`).
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// The deployment's cache-consistency engine, for post-run
    /// coherence sweeps by audits and benches.
    pub fn genie(&self) -> &CacheGenie {
        &self.shared.genie
    }

    /// Graceful shutdown: refuse new connections, drain every request
    /// whose frame was read, close idle connections, flush the WAL,
    /// and report. Blocks until all threads have exited.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.begin_drain();
        // Wake the acceptor out of its blocking accept; it sees the
        // drain flag, refuses this probe, and exits.
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Workers drain queued connections (refused politely), finish
        // in-flight requests, then observe the closed channel and exit.
        drop(self.sender.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let wal_flushed = self.shared.db.is_durable() && self.shared.db.wal_flush().is_ok();
        let pool = self.shared.pool.snapshot();
        let started = self.shared.requests_started.load(Ordering::Relaxed);
        let finished = self.shared.requests_finished.load(Ordering::Relaxed);
        ShutdownReport {
            drained_in_flight: self
                .shared
                .metrics
                .drained_in_flight
                .load(Ordering::Relaxed),
            dropped_in_flight: started.saturating_sub(finished),
            leaked_sessions: pool.capacity - pool.idle,
            requests_total: finished,
            wal_flushed,
        }
    }
}

fn acceptor_loop(shared: &Shared, listener: &TcpListener, tx: &SyncSender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.draining() {
                    return;
                }
                continue;
            }
        };
        if shared.draining() {
            refuse(
                shared,
                stream,
                "draining",
                &shared.metrics.connections_drained,
            );
            return;
        }
        match tx.try_send(stream) {
            Ok(()) => {
                shared
                    .metrics
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(stream)) => {
                refuse(shared, stream, "shed", &shared.metrics.connections_shed);
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Answers a refused connection with a retryable `503` and closes it.
fn refuse(_shared: &Shared, mut stream: TcpStream, reason: &str, counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(
        &Response::Err {
            code: SHED,
            reason: reason.to_owned(),
        }
        .encode(),
    );
}

fn worker_loop(shared: &Shared, rx: &parking_lot::Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the receiver lock only while waiting, not while serving.
        let next = {
            let rx = rx.lock();
            rx.recv_timeout(shared.cfg.read_tick)
        };
        match next {
            Ok(stream) => {
                if shared.draining() {
                    // Queued before the drain began, never served: no
                    // frame of it is in flight, so refuse politely.
                    refuse(
                        shared,
                        stream,
                        "draining",
                        &shared.metrics.connections_drained,
                    );
                } else {
                    serve_conn(shared, stream);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.draining() {
                    // Keep draining the queue until the sender closes.
                    continue;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Per-connection protocol state.
struct ConnState {
    /// Rate-limit principal (set by `HELLO`, defaults per-connection).
    client: String,
}

/// Whether the connection survives the response.
#[derive(PartialEq)]
enum After {
    Keep,
    Close,
}

fn serve_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_tick));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let seq = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    let mut conn = ConnState {
        client: format!("conn-{seq}"),
    };
    let mut buf: Vec<u8> = Vec::with_capacity(256);
    let mut chunk = [0u8; 1024];
    // When the current (incomplete) frame's first byte arrived.
    let mut frame_start: Option<Instant> = None;
    let mut idle_since = Instant::now();
    loop {
        // Serve every complete line already buffered (pipelining).
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            frame_start = if buf.is_empty() {
                None
            } else {
                Some(Instant::now())
            };
            let draining_before = shared.draining();
            shared.requests_started.fetch_add(1, Ordering::Relaxed);
            let (resp, after) = handle_line(shared, &mut conn, &line[..line.len() - 1]);
            shared.metrics.record_status(resp.code());
            shared
                .metrics
                .requests_total
                .fetch_add(1, Ordering::Relaxed);
            if draining_before {
                shared
                    .metrics
                    .drained_in_flight
                    .fetch_add(1, Ordering::Relaxed);
            }
            let wrote = stream.write_all(&resp.encode());
            shared.requests_finished.fetch_add(1, Ordering::Relaxed);
            if wrote.is_err() || after == After::Close {
                return;
            }
            idle_since = Instant::now();
        }
        // An unbounded frame cannot be resynchronized: refuse, close.
        if buf.len() >= MAX_LINE {
            answer_and_count(shared, &mut stream, TOO_LARGE, "frame-too-large");
            return;
        }
        // Draining with no partial frame: nothing owed, close politely.
        if shared.draining() && frame_start.is_none() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed (possibly mid-frame: nothing owed)
            Ok(n) => {
                if buf.is_empty() {
                    frame_start = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let Some(t0) = frame_start {
                    if t0.elapsed() >= shared.cfg.request_read_timeout {
                        // Slow loris: a frame that will not finish.
                        shared.metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
                        answer_and_count(shared, &mut stream, TIMEOUT, "request-read-timeout");
                        return;
                    }
                } else if idle_since.elapsed() >= shared.cfg.idle_timeout {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Writes a terminal error response outside the normal request flow
/// (framing violations that close the connection).
fn answer_and_count(shared: &Shared, stream: &mut TcpStream, code: u16, reason: &str) {
    shared.metrics.record_status(code);
    let _ = stream.write_all(
        &Response::Err {
            code,
            reason: reason.to_owned(),
        }
        .encode(),
    );
}

fn handle_line(shared: &Shared, conn: &mut ConnState, raw: &[u8]) -> (Response, After) {
    let line = match std::str::from_utf8(raw) {
        Ok(s) => s.trim_end_matches('\r'),
        Err(_) => {
            return (
                Response::Err {
                    code: BAD_REQUEST,
                    reason: "non-utf8-frame".to_owned(),
                },
                After::Keep,
            )
        }
    };
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return (Response::err(e), After::Keep),
    };
    match req {
        Request::Hello { client } => {
            conn.client = client;
            (
                Response::Ok(format!("hello {}\n", conn.client)),
                After::Keep,
            )
        }
        Request::Health => {
            let status = if shared.draining() { "draining" } else { "ok" };
            let pool = shared.pool.snapshot();
            (
                Response::Ok(format!(
                    "status={status} inflight={} pool_idle={} pool_capacity={} epoch={}\n",
                    shared.admission.inflight(),
                    pool.idle,
                    pool.capacity,
                    shared.db.commit_epoch(),
                )),
                After::Keep,
            )
        }
        Request::Metrics => (Response::Ok(shared.metrics.render()), After::Keep),
        Request::Admin(cmd) => handle_admin(shared, cmd),
        Request::Quit => (Response::Ok("bye\n".to_owned()), After::Close),
        Request::Page { kind, user, arg } => {
            (handle_page(shared, conn, kind, user, arg), After::Keep)
        }
    }
}

fn handle_admin(shared: &Shared, cmd: AdminCmd) -> (Response, After) {
    match cmd {
        AdminCmd::Stats => {
            let pool = shared.pool.snapshot();
            let m = &shared.metrics;
            (
                Response::Ok(format!(
                    "requests_total={} inflight={} pool_capacity={} pool_idle={} \
                     pool_checkouts={} rate_limited={} requests_shed={} connections_shed={} \
                     read_timeouts={} clients={}\n",
                    m.requests_total.load(Ordering::Relaxed),
                    shared.admission.inflight(),
                    pool.capacity,
                    pool.idle,
                    pool.checkouts,
                    m.rate_limited.load(Ordering::Relaxed),
                    m.requests_shed.load(Ordering::Relaxed),
                    m.connections_shed.load(Ordering::Relaxed),
                    m.read_timeouts.load(Ordering::Relaxed),
                    shared.limiter.clients(),
                )),
                After::Keep,
            )
        }
        AdminCmd::Flush => match shared.db.wal_flush() {
            Ok(()) => (Response::Ok("flushed\n".to_owned()), After::Keep),
            Err(e) => (
                Response::Err {
                    code: INTERNAL,
                    reason: format!("wal-flush:{e}"),
                },
                After::Keep,
            ),
        },
        AdminCmd::Checkpoint => {
            if !shared.db.is_durable() {
                return (
                    Response::Err {
                        code: BAD_REQUEST,
                        reason: "not-durable".to_owned(),
                    },
                    After::Keep,
                );
            }
            match shared.db.checkpoint() {
                Ok(stats) => (
                    Response::Ok(format!("checkpoint epoch={}\n", stats.epoch)),
                    After::Keep,
                ),
                Err(e) => (
                    Response::Err {
                        code: INTERNAL,
                        reason: format!("checkpoint:{e}"),
                    },
                    After::Keep,
                ),
            }
        }
        AdminCmd::Drain => {
            shared.begin_drain();
            (Response::Ok("draining\n".to_owned()), After::Keep)
        }
    }
}

fn handle_page(
    shared: &Shared,
    conn: &ConnState,
    kind: Page,
    user: i64,
    arg: Option<i64>,
) -> Response {
    // Middleware stack, outermost first: admission, then rate limit,
    // then the pooled session. Refusals execute nothing.
    let Some(_inflight) = shared.admission.try_enter() else {
        shared.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
        return Response::Err {
            code: SHED,
            reason: "overloaded".to_owned(),
        };
    };
    if !shared.limiter.allow(&conn.client) {
        shared.metrics.rate_limited.fetch_add(1, Ordering::Relaxed);
        return Response::Err {
            code: 429,
            reason: "rate-limited".to_owned(),
        };
    }
    let Some(session) = shared.pool.checkout() else {
        shared.metrics.requests_shed.fetch_add(1, Ordering::Relaxed);
        return Response::Err {
            code: SHED,
            reason: "no-session".to_owned(),
        };
    };
    let t0 = Instant::now();
    let result = run_page(shared, &session, kind, user, arg);
    let nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    shared.metrics.record_page(kind, nanos);
    match result {
        Ok(payload) => Response::Ok(payload),
        Err(
            e @ (StorageError::Deadlock { .. }
            | StorageError::WriteConflict { .. }
            | StorageError::LockTimeout { .. }
            | StorageError::TransactionAborted(_)),
        ) => Response::Err {
            code: RETRY,
            reason: format!("serialization:{}", error_class(&e)),
        },
        Err(e) => Response::Err {
            code: INTERNAL,
            reason: format!("db:{e}"),
        },
    }
}

fn error_class(e: &StorageError) -> &'static str {
    match e {
        StorageError::Deadlock { .. } => "deadlock",
        StorageError::WriteConflict { .. } => "write-conflict",
        StorageError::LockTimeout { .. } => "lock-timeout",
        StorageError::TransactionAborted(_) => "aborted",
        _ => "other",
    }
}

fn run_page(
    shared: &Shared,
    session: &genie_social::SocialApp,
    kind: Page,
    user: i64,
    arg: Option<i64>,
) -> Result<String, StorageError> {
    let stats = match kind {
        Page::Login => session.login(user)?,
        Page::Logout => session.logout(user)?,
        Page::LookupBM => session.lookup_bm(user)?,
        Page::LookupFBM => session.lookup_fbm(user)?,
        Page::CreateBM => {
            let n = arg.unwrap_or(user);
            session.create_bm(user, &format!("http://bookmark.example/{n}"))?
        }
        Page::AcceptFR => session.accept_fr(user, arg.unwrap_or(user + 1))?,
        Page::Wall => session.view_wall(user)?,
        Page::PostWall => {
            let wall = arg.unwrap_or(user);
            session.post_wall(wall, user, &format!("post from {user}"))?
        }
        Page::BatchPost => {
            let wall = arg.unwrap_or(user);
            session.post_wall_batch(wall, user, shared.cfg.batch_posts, false)?
        }
        Page::Groups => session.view_groups(user)?,
        Page::Snapshot => return run_snapshot_page(shared, user, arg),
    };
    Ok(format!(
        "page={} user={user} queries={} cache_hits={} writes={}\n",
        kind.name(),
        stats.queries,
        stats.cache_hit_queries,
        stats.writes
    ))
}

/// The protocol-level MVCC probe: a read-only transaction that counts
/// a wall, issues filler point reads, re-counts, and reports whether
/// the two counts agreed under the pinned snapshot. Any disagreement
/// is a server-side `snapshot_violations` tick — the concurrency
/// audit requires that counter to stay at zero.
fn run_snapshot_page(shared: &Shared, user: i64, arg: Option<i64>) -> Result<String, StorageError> {
    let db = &shared.db;
    let fillers = arg.unwrap_or(2).clamp(0, 64);
    db.execute_sql("BEGIN", &[])?;
    let run = (|| {
        let count_sql = "SELECT COUNT(*) FROM wall_posts WHERE user_id = $1";
        let first = db.execute_sql(count_sql, &[Value::Int(user)])?;
        for i in 0..fillers {
            db.execute_sql(
                "SELECT id, last_login FROM users WHERE id = $1",
                &[Value::Int(user + i)],
            )?;
        }
        let again = db.execute_sql(count_sql, &[Value::Int(user)])?;
        Ok(first.result.rows == again.result.rows)
    })();
    match run {
        Ok(consistent) => {
            db.execute_sql("COMMIT", &[])?;
            if !consistent {
                shared
                    .metrics
                    .snapshot_violations
                    .fetch_add(1, Ordering::Relaxed);
            }
            Ok(format!(
                "page=snapshot user={user} reads={} consistent={consistent}\n",
                fillers + 2
            ))
        }
        Err(e) => {
            let _ = db.execute_sql("ROLLBACK", &[]);
            Err(e)
        }
    }
}
