//! The wire protocol: line-delimited requests, length-delimited replies.
//!
//! The no-network vendor policy rules out HTTP stacks, so the front-end
//! speaks a deliberately minimal text protocol over loopback TCP —
//! small enough to implement exactly, rich enough to carry every page
//! kind plus the operational endpoints a deployable service needs.
//!
//! **Request frame** — one ASCII line, `\n`-terminated, at most
//! [`MAX_LINE`] bytes including the terminator:
//!
//! ```text
//! HELLO <client-id>          bind this connection to a rate-limit principal
//! PAGE <kind> <user> [<arg>] render one page for <user>
//! HEALTH                     liveness/readiness probe
//! METRICS                    latency/status counters, text exposition
//! ADMIN <stats|flush|checkpoint|drain>
//! QUIT                       close the connection politely
//! ```
//!
//! **Response frame** — a status line, then for `OK` exactly `<len>`
//! payload bytes:
//!
//! ```text
//! OK <len>\n<len bytes of payload>
//! ERR <code> <reason>\n
//! ```
//!
//! Error codes follow HTTP semantics so retry behaviour is obvious:
//! `400` malformed, `404` unknown page kind, `408` request read
//! timeout, `409` retryable serialization failure (deadlock /
//! write-conflict / lock timeout), `413` oversized frame, `429` rate
//! limited, `500` internal, `503` shed or draining. `409`, `429` and
//! `503` are **retryable**: the request was not applied (or is safe to
//! re-issue) and a client should back off and try again.

use std::io::BufRead;

/// Hard ceiling on one request line, terminator included. A connection
/// that exceeds it is answered `ERR 413` and closed — there is no way
/// to resynchronize inside an unbounded line.
pub const MAX_LINE: usize = 1024;

/// Malformed request line (unknown verb, bad arity, non-numeric id).
pub const BAD_REQUEST: u16 = 400;
/// `PAGE` with an unknown page kind.
pub const NOT_FOUND: u16 = 404;
/// The request line did not complete within the read timeout.
pub const TIMEOUT: u16 = 408;
/// Retryable serialization failure: the page's transaction was aborted
/// (deadlock victim, first-updater-wins conflict, strict lock timeout)
/// and left no effects. Retry on a fresh request.
pub const RETRY: u16 = 409;
/// Request frame exceeded [`MAX_LINE`].
pub const TOO_LARGE: u16 = 413;
/// The client's token bucket is empty. Retry after backing off.
pub const RATE_LIMITED: u16 = 429;
/// Page execution failed with a non-retryable database error.
pub const INTERNAL: u16 = 500;
/// Admission control refused the request (queue full / server
/// draining). Nothing was executed; retry against a healthy instance.
pub const SHED: u16 = 503;

/// True for codes a well-behaved client may retry without side effects.
pub fn retryable(code: u16) -> bool {
    matches!(code, RETRY | RATE_LIMITED | SHED)
}

/// The page kinds the front-end serves — the social app's actions
/// (Table 2 of the paper plus the transactional extensions), each
/// mapped to one `SocialApp` entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Page {
    /// Session start (`last_login` write + dashboard).
    Login,
    /// Session end.
    Logout,
    /// Own bookmarks.
    LookupBM,
    /// Friends' bookmarks (join-heavy).
    LookupFBM,
    /// Save a bookmark (`arg` selects the URL).
    CreateBM,
    /// Accept a friend request (`arg` is the fallback peer).
    AcceptFR,
    /// Wall page (Top-K).
    Wall,
    /// Post one wall message (`arg` is the wall owner).
    PostWall,
    /// Multi-statement wall-post transaction (`arg` is the wall owner).
    BatchPost,
    /// Group directory.
    Groups,
    /// Read-only repeat-read transaction reporting its own snapshot
    /// consistency — the protocol-level MVCC probe (`arg` is the number
    /// of filler reads).
    Snapshot,
}

impl Page {
    /// Every page kind, in display order.
    pub fn all() -> [Page; 11] {
        [
            Page::Login,
            Page::Logout,
            Page::LookupBM,
            Page::LookupFBM,
            Page::CreateBM,
            Page::AcceptFR,
            Page::Wall,
            Page::PostWall,
            Page::BatchPost,
            Page::Groups,
            Page::Snapshot,
        ]
    }

    /// The wire name (also the metrics label).
    pub fn name(&self) -> &'static str {
        match self {
            Page::Login => "login",
            Page::Logout => "logout",
            Page::LookupBM => "lookup_bm",
            Page::LookupFBM => "lookup_fbm",
            Page::CreateBM => "create_bm",
            Page::AcceptFR => "accept_fr",
            Page::Wall => "wall",
            Page::PostWall => "post_wall",
            Page::BatchPost => "batch_post",
            Page::Groups => "groups",
            Page::Snapshot => "snapshot",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Page> {
        Page::all().into_iter().find(|p| p.name() == s)
    }

    /// Dense index for per-page metric arrays.
    pub fn index(&self) -> usize {
        Page::all().iter().position(|p| p == self).unwrap_or(0)
    }
}

/// Administrative commands behind the `ADMIN` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminCmd {
    /// One-line operational summary (requests, pool, sheds).
    Stats,
    /// Drain and sync the WAL group-commit queue.
    Flush,
    /// Take a fuzzy checkpoint (durable deployments only).
    Checkpoint,
    /// Enter draining: refuse new connections, finish in-flight work.
    Drain,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Rate-limit principal binding.
    Hello {
        /// Client identity (token-bucket key).
        client: String,
    },
    /// Render a page.
    Page {
        /// Which page.
        kind: Page,
        /// Acting user id.
        user: i64,
        /// Optional page-specific argument.
        arg: Option<i64>,
    },
    /// Health probe.
    Health,
    /// Metrics exposition.
    Metrics,
    /// Administrative command.
    Admin(AdminCmd),
    /// Polite close.
    Quit,
}

/// A protocol-level rejection: code plus a short reason word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// HTTP-style status code.
    pub code: u16,
    /// Single-token reason (no spaces needed; kept short for the wire).
    pub reason: String,
}

impl ProtoError {
    /// Builds an error frame description.
    pub fn new(code: u16, reason: impl Into<String>) -> Self {
        ProtoError {
            code,
            reason: reason.into(),
        }
    }
}

/// Parses one request line (terminator already stripped).
///
/// # Errors
///
/// [`BAD_REQUEST`] for malformed frames, [`NOT_FOUND`] for unknown
/// page kinds.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let mut parts = line.split_ascii_whitespace();
    let verb = parts.next().unwrap_or("");
    let req = match verb {
        "HELLO" => {
            let client = parts
                .next()
                .ok_or_else(|| ProtoError::new(BAD_REQUEST, "missing-client-id"))?;
            Request::Hello {
                client: client.to_owned(),
            }
        }
        "PAGE" => {
            let kind = parts
                .next()
                .ok_or_else(|| ProtoError::new(BAD_REQUEST, "missing-page-kind"))?;
            let kind = Page::parse(kind)
                .ok_or_else(|| ProtoError::new(NOT_FOUND, format!("unknown-page:{kind}")))?;
            let user = parts
                .next()
                .ok_or_else(|| ProtoError::new(BAD_REQUEST, "missing-user"))?;
            let user: i64 = user
                .parse()
                .map_err(|_| ProtoError::new(BAD_REQUEST, "bad-user-id"))?;
            if user <= 0 {
                return Err(ProtoError::new(BAD_REQUEST, "bad-user-id"));
            }
            let arg = match parts.next() {
                Some(a) => Some(
                    a.parse::<i64>()
                        .map_err(|_| ProtoError::new(BAD_REQUEST, "bad-arg"))?,
                ),
                None => None,
            };
            Request::Page { kind, user, arg }
        }
        "HEALTH" => Request::Health,
        "METRICS" => Request::Metrics,
        "ADMIN" => {
            let cmd = parts
                .next()
                .ok_or_else(|| ProtoError::new(BAD_REQUEST, "missing-admin-cmd"))?;
            let cmd = match cmd {
                "stats" => AdminCmd::Stats,
                "flush" => AdminCmd::Flush,
                "checkpoint" => AdminCmd::Checkpoint,
                "drain" => AdminCmd::Drain,
                other => {
                    return Err(ProtoError::new(
                        BAD_REQUEST,
                        format!("unknown-admin-cmd:{other}"),
                    ))
                }
            };
            Request::Admin(cmd)
        }
        "QUIT" => Request::Quit,
        "" => return Err(ProtoError::new(BAD_REQUEST, "empty-line")),
        other => {
            return Err(ProtoError::new(
                BAD_REQUEST,
                format!("unknown-verb:{other}"),
            ))
        }
    };
    if parts.next().is_some() {
        return Err(ProtoError::new(BAD_REQUEST, "trailing-tokens"));
    }
    Ok(req)
}

/// A response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success with a payload.
    Ok(String),
    /// Rejection.
    Err {
        /// HTTP-style status code.
        code: u16,
        /// Reason phrase (single line).
        reason: String,
    },
}

impl Response {
    /// Builds an error response from a [`ProtoError`].
    pub fn err(e: ProtoError) -> Self {
        Response::Err {
            code: e.code,
            reason: e.reason,
        }
    }

    /// The status code (200 for `OK`).
    pub fn code(&self) -> u16 {
        match self {
            Response::Ok(_) => 200,
            Response::Err { code, .. } => *code,
        }
    }

    /// True when a client may safely re-issue the request.
    pub fn is_retryable(&self) -> bool {
        retryable(self.code())
    }

    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok(payload) => {
                let mut out = format!("OK {}\n", payload.len()).into_bytes();
                out.extend_from_slice(payload.as_bytes());
                out
            }
            Response::Err { code, reason } => {
                let clean: String = reason
                    .chars()
                    .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
                    .collect();
                format!("ERR {code} {clean}\n").into_bytes()
            }
        }
    }
}

/// Reads one response frame from a buffered stream (client side).
///
/// # Errors
///
/// I/O errors, or `InvalidData` when the peer violates the framing.
pub fn read_response(reader: &mut impl BufRead) -> std::io::Result<Response> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        ));
    }
    let line = line.trim_end_matches('\n');
    if let Some(rest) = line.strip_prefix("OK ") {
        let len: usize = rest
            .trim()
            .parse()
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad OK length"))?;
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload)?;
        let payload = String::from_utf8(payload).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 payload")
        })?;
        Ok(Response::Ok(payload))
    } else if let Some(rest) = line.strip_prefix("ERR ") {
        let mut parts = rest.splitn(2, ' ');
        let code: u16 =
            parts.next().unwrap_or("").parse().map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad ERR code")
            })?;
        Ok(Response::Err {
            code,
            reason: parts.next().unwrap_or("").to_owned(),
        })
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad status line: {line:?}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_every_page_kind() {
        for p in Page::all() {
            let line = format!("PAGE {} 7", p.name());
            assert_eq!(
                parse_request(&line).unwrap(),
                Request::Page {
                    kind: p,
                    user: 7,
                    arg: None
                }
            );
            assert_eq!(Page::parse(p.name()), Some(p));
        }
        assert_eq!(Page::all().len(), 11);
    }

    #[test]
    fn parses_args_and_verbs() {
        assert_eq!(
            parse_request("PAGE create_bm 3 42").unwrap(),
            Request::Page {
                kind: Page::CreateBM,
                user: 3,
                arg: Some(42)
            }
        );
        assert_eq!(
            parse_request("HELLO client-9").unwrap(),
            Request::Hello {
                client: "client-9".into()
            }
        );
        assert_eq!(parse_request("HEALTH").unwrap(), Request::Health);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(
            parse_request("ADMIN stats").unwrap(),
            Request::Admin(AdminCmd::Stats)
        );
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
    }

    #[test]
    fn malformed_lines_reject_with_400() {
        for bad in [
            "",
            "NONSENSE",
            "PAGE",
            "PAGE login",
            "PAGE login abc",
            "PAGE login 0",
            "PAGE login -4",
            "PAGE login 1 x",
            "PAGE login 1 2 3",
            "HELLO",
            "ADMIN",
            "ADMIN frob",
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.code, BAD_REQUEST, "{bad:?} -> {e:?}");
        }
    }

    #[test]
    fn unknown_page_rejects_with_404() {
        let e = parse_request("PAGE frobnicate 1").unwrap_err();
        assert_eq!(e.code, NOT_FOUND);
        assert!(e.reason.contains("frobnicate"));
    }

    #[test]
    fn response_roundtrip() {
        for r in [
            Response::Ok("hello payload".into()),
            Response::Ok(String::new()),
            Response::Err {
                code: 429,
                reason: "rate-limited".into(),
            },
        ] {
            let bytes = r.encode();
            let mut reader = BufReader::new(&bytes[..]);
            assert_eq!(read_response(&mut reader).unwrap(), r);
        }
    }

    #[test]
    fn error_reason_newlines_are_flattened() {
        let r = Response::Err {
            code: 500,
            reason: "two\nlines".into(),
        };
        let bytes = r.encode();
        assert_eq!(bytes.iter().filter(|&&b| b == b'\n').count(), 1);
    }

    #[test]
    fn retryable_codes() {
        assert!(retryable(RETRY));
        assert!(retryable(RATE_LIMITED));
        assert!(retryable(SHED));
        assert!(!retryable(BAD_REQUEST));
        assert!(!retryable(INTERNAL));
        assert!(!retryable(TIMEOUT));
        assert!(Response::Err {
            code: SHED,
            reason: "shed".into()
        }
        .is_retryable());
    }
}
