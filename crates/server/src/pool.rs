//! The pooled session layer: a fixed set of ORM-session handles over
//! one shared `Database`/`CacheGenie` deployment, checked out per
//! request and returned by RAII.
//!
//! Sessions share the storage engine, the interceptor, and the id
//! allocator (clones of one [`SocialApp`]); what the pool adds is
//! *accounting and bounding* — a hard ceiling on concurrently active
//! sessions and leak detection: after a drained shutdown every session
//! must be back in the idle list, so `idle() == capacity()` is the
//! "zero leaked sessions" invariant the fault-injection and
//! concurrency suites assert.

use genie_social::SocialApp;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Point-in-time pool accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Sessions the pool was built with.
    pub capacity: usize,
    /// Sessions currently idle (checked in).
    pub idle: usize,
    /// Sessions currently leased.
    pub in_use: usize,
    /// Total checkouts served.
    pub checkouts: u64,
    /// Checkouts refused because the pool was empty.
    pub exhausted: u64,
}

struct PoolInner {
    idle: Mutex<Vec<SocialApp>>,
    capacity: usize,
    checkouts: AtomicU64,
    exhausted: AtomicU64,
}

/// A bounded pool of application sessions.
#[derive(Clone)]
pub struct SessionPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("SessionPool")
            .field("capacity", &s.capacity)
            .field("idle", &s.idle)
            .finish()
    }
}

impl SessionPool {
    /// Builds a pool of `capacity` sessions cloned from `app` (clones
    /// share the database, cache, interceptor, and id allocator — a
    /// session is a cheap per-request handle, not a connection).
    pub fn new(app: &SocialApp, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SessionPool {
            inner: Arc::new(PoolInner {
                idle: Mutex::new((0..capacity).map(|_| app.clone()).collect()),
                capacity,
                checkouts: AtomicU64::new(0),
                exhausted: AtomicU64::new(0),
            }),
        }
    }

    /// Checks a session out; `None` when every session is in use (the
    /// caller sheds the request instead of blocking).
    pub fn checkout(&self) -> Option<SessionLease> {
        let app = self.inner.idle.lock().pop();
        match app {
            Some(app) => {
                self.inner.checkouts.fetch_add(1, Ordering::Relaxed);
                Some(SessionLease {
                    app: Some(app),
                    pool: Arc::clone(&self.inner),
                })
            }
            None => {
                self.inner.exhausted.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Current accounting.
    pub fn snapshot(&self) -> PoolSnapshot {
        let idle = self.inner.idle.lock().len();
        PoolSnapshot {
            capacity: self.inner.capacity,
            idle,
            in_use: self.inner.capacity - idle,
            checkouts: self.inner.checkouts.load(Ordering::Relaxed),
            exhausted: self.inner.exhausted.load(Ordering::Relaxed),
        }
    }

    /// True when every session is back in the pool — the post-drain
    /// "zero leaked sessions" invariant.
    pub fn fully_idle(&self) -> bool {
        let s = self.snapshot();
        s.idle == s.capacity
    }
}

/// RAII lease of one pooled session; derefs to the application facade
/// and returns the session on drop (including on unwind).
pub struct SessionLease {
    app: Option<SocialApp>,
    pool: Arc<PoolInner>,
}

impl std::ops::Deref for SessionLease {
    type Target = SocialApp;

    fn deref(&self) -> &SocialApp {
        self.app.as_ref().expect("lease holds a session until drop")
    }
}

impl std::fmt::Debug for SessionLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionLease").finish()
    }
}

impl Drop for SessionLease {
    fn drop(&mut self) {
        if let Some(app) = self.app.take() {
            self.pool.idle.lock().push(app);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genie_social::{build_app, AppConfig, SeedConfig};

    fn pool(capacity: usize) -> SessionPool {
        let env = build_app(&AppConfig {
            seed: SeedConfig::tiny(),
            strategy: None,
            ..Default::default()
        })
        .unwrap();
        SessionPool::new(&env.app, capacity)
    }

    #[test]
    fn checkout_and_return() {
        let p = pool(2);
        assert!(p.fully_idle());
        let a = p.checkout().unwrap();
        let b = p.checkout().unwrap();
        assert!(p.checkout().is_none(), "pool exhausted");
        let s = p.snapshot();
        assert_eq!((s.capacity, s.idle, s.in_use), (2, 0, 2));
        assert_eq!(s.exhausted, 1);
        drop(a);
        drop(b);
        assert!(p.fully_idle());
        assert_eq!(p.snapshot().checkouts, 2);
    }

    #[test]
    fn lease_survives_panic_unwind() {
        let p = pool(1);
        let p2 = p.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _lease = p2.checkout().unwrap();
            panic!("request handler blew up");
        }));
        assert!(p.fully_idle(), "session returned on unwind");
    }

    #[test]
    fn leased_session_serves_pages() {
        let p = pool(1);
        let lease = p.checkout().unwrap();
        let stats = lease.lookup_bm(1).unwrap();
        assert!(stats.queries > 0);
    }
}
