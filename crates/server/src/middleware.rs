//! The middleware stack's policy pieces: per-client token-bucket rate
//! limiting and bounded in-flight admission control.
//!
//! Order on the request path (documented in `docs/SERVING.md`):
//! admission first (protect the server), then the rate limiter (police
//! the client), then session checkout and page execution. A request
//! refused by either layer executes nothing and is answered with a
//! retryable error.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-client token bucket: `burst` capacity, refilled continuously at
/// `rate_per_sec`. A request spends one token; an empty bucket means
/// `429`. Buckets are keyed by the principal the connection announced
/// with `HELLO` (falling back to a per-connection identity), so one
/// abusive client cannot starve the others.
#[derive(Debug)]
pub struct RateLimiter {
    rate_per_sec: f64,
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
    /// Requests refused (for operational visibility; the server also
    /// counts per-status).
    pub rejected: AtomicU64,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

impl RateLimiter {
    /// A limiter allowing `rate_per_sec` sustained with `burst` slack.
    /// `rate_per_sec <= 0` disables limiting entirely.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        RateLimiter {
            rate_per_sec,
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
            rejected: AtomicU64::new(0),
        }
    }

    /// True when `client` may proceed (and one token was spent).
    pub fn allow(&self, client: &str) -> bool {
        if self.rate_per_sec <= 0.0 {
            return true;
        }
        let now = Instant::now();
        let mut buckets = self.buckets.lock();
        let b = buckets.entry(client.to_owned()).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let elapsed = now.saturating_duration_since(b.last).as_secs_f64();
        b.tokens = (b.tokens + elapsed * self.rate_per_sec).min(self.burst);
        b.last = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Distinct principals currently tracked.
    pub fn clients(&self) -> usize {
        self.buckets.lock().len()
    }
}

/// Bounded in-flight admission: at most `limit` page requests may
/// execute concurrently; request `limit + 1` is refused with a
/// retryable `503` instead of queueing unboundedly — the load-shedding
/// half of back-pressure (the bounded accept queue is the other half).
#[derive(Debug)]
pub struct Admission {
    limit: usize,
    inflight: Arc<AtomicUsize>,
    /// Requests refused at this gate.
    pub shed: AtomicU64,
}

impl Admission {
    /// An admission gate allowing `limit` concurrent requests
    /// (`limit == 0` means unlimited).
    pub fn new(limit: usize) -> Self {
        Admission {
            limit,
            inflight: Arc::new(AtomicUsize::new(0)),
            shed: AtomicU64::new(0),
        }
    }

    /// Tries to enter; `None` means shed. The returned guard holds the
    /// slot until dropped.
    pub fn try_enter(&self) -> Option<InflightGuard> {
        if self.limit == 0 {
            self.inflight.fetch_add(1, Ordering::AcqRel);
            return Some(InflightGuard {
                inflight: Arc::clone(&self.inflight),
            });
        }
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.limit {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(InflightGuard {
                        inflight: Arc::clone(&self.inflight),
                    })
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Requests currently holding a slot.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }
}

/// RAII slot of the admission gate.
#[derive(Debug)]
pub struct InflightGuard {
    inflight: Arc<AtomicUsize>,
}

impl InflightGuard {
    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_reject_then_recover() {
        let rl = RateLimiter::new(50.0, 2.0);
        assert!(rl.allow("c"));
        assert!(rl.allow("c"));
        assert!(!rl.allow("c"), "burst exhausted");
        assert_eq!(rl.rejected.load(Ordering::Relaxed), 1);
        std::thread::sleep(Duration::from_millis(60));
        assert!(rl.allow("c"), "refill after ~3 tokens worth of time");
    }

    #[test]
    fn clients_are_isolated() {
        let rl = RateLimiter::new(1.0, 1.0);
        assert!(rl.allow("a"));
        assert!(!rl.allow("a"));
        assert!(rl.allow("b"), "b has its own bucket");
        assert_eq!(rl.clients(), 2);
    }

    #[test]
    fn zero_rate_disables_limiting() {
        let rl = RateLimiter::new(0.0, 1.0);
        for _ in 0..1000 {
            assert!(rl.allow("c"));
        }
    }

    #[test]
    fn admission_sheds_above_limit_and_releases() {
        let a = Admission::new(2);
        let g1 = a.try_enter().unwrap();
        let _g2 = a.try_enter().unwrap();
        assert!(a.try_enter().is_none(), "third concurrent request shed");
        assert_eq!(a.shed.load(Ordering::Relaxed), 1);
        assert_eq!(a.inflight(), 2);
        drop(g1);
        assert!(a.try_enter().is_some(), "slot freed on guard drop");
    }

    #[test]
    fn unlimited_admission_never_sheds() {
        let a = Admission::new(0);
        let guards: Vec<_> = (0..64).map(|_| a.try_enter().unwrap()).collect();
        assert_eq!(a.shed.load(Ordering::Relaxed), 0);
        drop(guards);
        assert_eq!(a.inflight(), 0);
    }
}
