//! Per-request metrics: lock-free latency histograms per page kind and
//! status-code counters, with a text exposition for the `METRICS`
//! endpoint.
//!
//! The histogram is log-bucketed (8 buckets per octave, 1 µs to ~2
//! minutes), so recording is one atomic increment on the request path
//! and percentile reads are a bucket walk — no sample retention, no
//! locks, any thread can record while another renders.

use crate::proto::Page;
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per latency octave (power of two).
const SUB: usize = 8;
/// Total histogram buckets: 27 octaves above 1 µs reaches ~134 s.
const BUCKETS: usize = 27 * SUB;

/// Status codes tracked by the per-status counters, in render order.
pub const STATUS_CODES: [u16; 9] = [200, 400, 404, 408, 409, 413, 429, 500, 503];

fn status_index(code: u16) -> usize {
    STATUS_CODES
        .iter()
        .position(|&c| c == code)
        .unwrap_or(STATUS_CODES.len() - 1)
}

/// A fixed log-bucketed latency histogram. Records are nanoseconds;
/// percentile reads return seconds (bucket upper bound, so quantiles
/// are conservative: reported ≥ true value, error bounded by the ~9%
/// bucket width).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

fn bucket_of(nanos: u64) -> usize {
    let micros = (nanos / 1_000).max(1);
    let idx = (SUB as f64 * (micros as f64).log2()).floor() as isize;
    idx.clamp(0, BUCKETS as isize - 1) as usize
}

fn bucket_upper_secs(idx: usize) -> f64 {
    // Upper bound of bucket `idx` in seconds: 1 µs * 2^((idx+1)/SUB).
    1e-6 * ((idx + 1) as f64 / SUB as f64).exp2()
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in seconds (0.0 when empty).
    pub fn mean_s(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_nanos.load(Ordering::Relaxed) as f64 / n as f64 / 1e9
        }
    }

    /// Largest recorded latency in seconds.
    pub fn max_s(&self) -> f64 {
        self.max_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// The `p`-th percentile (0–100) in seconds, 0.0 when empty.
    /// Nearest-rank over the bucket counts; returns the matched
    /// bucket's upper bound.
    pub fn percentile_s(&self, p: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * total as f64)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_secs(i);
            }
        }
        bucket_upper_secs(BUCKETS - 1)
    }
}

/// One page kind's rendered summary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PageSummary {
    /// Requests measured.
    pub count: u64,
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Median, seconds.
    pub p50_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// 99.9th percentile, seconds.
    pub p999_s: f64,
    /// Maximum, seconds.
    pub max_s: f64,
}

/// All server-side counters, shared across workers.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    per_page: [LatencyHistogram; 11],
    status: [AtomicU64; 9],
    /// Connections the acceptor handed to workers.
    pub connections_accepted: AtomicU64,
    /// Connections refused because the admission queue was full.
    pub connections_shed: AtomicU64,
    /// Connections refused because the server was draining.
    pub connections_drained: AtomicU64,
    /// Requests parsed (any outcome).
    pub requests_total: AtomicU64,
    /// Page requests refused by in-flight admission control.
    pub requests_shed: AtomicU64,
    /// Page requests refused by the rate limiter.
    pub rate_limited: AtomicU64,
    /// Request lines that timed out mid-frame (slow loris).
    pub read_timeouts: AtomicU64,
    /// In-flight requests completed after draining began.
    pub drained_in_flight: AtomicU64,
    /// `snapshot` pages whose repeat-read disagreed (must stay 0).
    pub snapshot_violations: AtomicU64,
}

impl ServerMetrics {
    /// Records one completed page request.
    pub fn record_page(&self, page: Page, nanos: u64) {
        self.per_page[page.index()].record(nanos);
    }

    /// Counts one response by status code.
    pub fn record_status(&self, code: u16) {
        self.status[status_index(code)].fetch_add(1, Ordering::Relaxed);
    }

    /// Responses recorded with `code`.
    pub fn status_count(&self, code: u16) -> u64 {
        self.status[status_index(code)].load(Ordering::Relaxed)
    }

    /// The latency histogram for one page kind.
    pub fn page_hist(&self, page: Page) -> &LatencyHistogram {
        &self.per_page[page.index()]
    }

    /// Summarizes one page kind.
    pub fn page_summary(&self, page: Page) -> PageSummary {
        let h = self.page_hist(page);
        PageSummary {
            count: h.count(),
            mean_s: h.mean_s(),
            p50_s: h.percentile_s(50.0),
            p99_s: h.percentile_s(99.0),
            p999_s: h.percentile_s(99.9),
            max_s: h.max_s(),
        }
    }

    /// Renders the text exposition served by `METRICS` (Prometheus-like
    /// line format: `name{label="v"} value`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for code in STATUS_CODES {
            let n = self.status_count(code);
            if n > 0 || code == 200 {
                let _ = writeln!(out, "serve_responses_total{{code=\"{code}\"}} {n}");
            }
        }
        let counters = [
            (
                "serve_connections_accepted",
                self.connections_accepted.load(Ordering::Relaxed),
            ),
            (
                "serve_connections_shed",
                self.connections_shed.load(Ordering::Relaxed),
            ),
            (
                "serve_connections_drained",
                self.connections_drained.load(Ordering::Relaxed),
            ),
            (
                "serve_requests_total",
                self.requests_total.load(Ordering::Relaxed),
            ),
            (
                "serve_requests_shed",
                self.requests_shed.load(Ordering::Relaxed),
            ),
            (
                "serve_rate_limited",
                self.rate_limited.load(Ordering::Relaxed),
            ),
            (
                "serve_read_timeouts",
                self.read_timeouts.load(Ordering::Relaxed),
            ),
            (
                "serve_drained_in_flight",
                self.drained_in_flight.load(Ordering::Relaxed),
            ),
            (
                "serve_snapshot_violations",
                self.snapshot_violations.load(Ordering::Relaxed),
            ),
        ];
        for (name, v) in counters {
            let _ = writeln!(out, "{name} {v}");
        }
        for page in Page::all() {
            let s = self.page_summary(page);
            if s.count == 0 {
                continue;
            }
            let name = page.name();
            let _ = writeln!(out, "serve_page_requests{{page=\"{name}\"}} {}", s.count);
            for (q, v) in [("0.5", s.p50_s), ("0.99", s.p99_s), ("0.999", s.p999_s)] {
                let _ = writeln!(
                    out,
                    "serve_page_latency_seconds{{page=\"{name}\",quantile=\"{q}\"}} {v:.6}"
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_s(99.0), 0.0);
        assert_eq!(h.mean_s(), 0.0);
    }

    #[test]
    fn percentiles_are_conservative_and_ordered() {
        let h = LatencyHistogram::default();
        // 10000 samples at 1 ms, 10 at 100 ms, 1 at 1 s: p99 stays in
        // the 1 ms bucket (rank 9911 of 10011), p999 crosses into the
        // 100 ms bucket (rank 10001), p100 reaches the 1 s outlier.
        for _ in 0..10_000 {
            h.record(1_000_000);
        }
        for _ in 0..10 {
            h.record(100_000_000);
        }
        h.record(1_000_000_000);
        let p50 = h.percentile_s(50.0);
        let p99 = h.percentile_s(99.0);
        let p999 = h.percentile_s(99.9);
        let p100 = h.percentile_s(100.0);
        assert!((0.001..0.0012).contains(&p50), "p50={p50}");
        assert!((0.001..=0.0012).contains(&p99), "p99={p99}");
        assert!((0.1..0.12).contains(&p999), "p999={p999}");
        assert!((1.0..1.2).contains(&p100), "p100={p100}");
        assert!(p50 <= p99 && p99 <= p999 && p999 <= p100);
        assert!((h.max_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        let mut last = 0;
        for ns in [
            1u64,
            999,
            1_000,
            1_100,
            10_000,
            1_000_000,
            1 << 40,
            u64::MAX,
        ] {
            let b = bucket_of(ns);
            assert!(b >= last, "bucket({ns}) regressed");
            assert!(b < BUCKETS);
            last = b;
        }
    }

    #[test]
    fn metrics_render_includes_pages_and_statuses() {
        let m = ServerMetrics::default();
        m.record_page(Page::LookupBM, 2_000_000);
        m.record_status(200);
        m.record_status(429);
        m.requests_total.fetch_add(2, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("serve_responses_total{code=\"200\"} 1"));
        assert!(text.contains("serve_responses_total{code=\"429\"} 1"));
        assert!(text.contains("serve_page_requests{page=\"lookup_bm\"} 1"));
        assert!(text.contains("quantile=\"0.999\""));
        assert!(text.contains("serve_requests_total 2"));
        let s = m.page_summary(Page::LookupBM);
        assert_eq!(s.count, 1);
        assert!(s.p99_s > 0.0);
    }

    #[test]
    fn unknown_status_folds_into_last_bucket() {
        let m = ServerMetrics::default();
        m.record_status(599);
        assert_eq!(m.status_count(503), 1);
    }
}
