//! Concurrency: many clients hammering one server must produce zero
//! snapshot violations (every `snapshot` page sees a stable repeat
//! read), zero leaked sessions (the pool returns to fully idle), and a
//! coherent cache.

use genie_server::{Page, Response, ServeClient, Server, ServerConfig};
use genie_social::{build_app, AppConfig, SeedConfig};
use genie_storage::Value;
use std::sync::atomic::Ordering;

#[test]
fn concurrent_clients_see_stable_snapshots_and_leak_nothing() {
    let env = build_app(&AppConfig {
        seed: SeedConfig::tiny(),
        strategy: Some(cachegenie::ConsistencyStrategy::UpdateInPlace),
        ..Default::default()
    })
    .unwrap();
    let server = Server::start(
        &env,
        ServerConfig {
            workers: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let threads = 8usize;
    let per_thread = 60i64;
    let users = env.seeded.users as i64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).unwrap();
                c.hello(&format!("client-{t}")).unwrap();
                let mut ok = 0u64;
                for n in 0..per_thread {
                    let user = (t as i64 + n) % users + 1;
                    // Interleave MVCC probes with the writes that try
                    // to destabilize them.
                    let (kind, arg) = match n % 4 {
                        0 => (Page::Snapshot, Some(8)),
                        1 => (Page::PostWall, Some(user % users + 1)),
                        2 => (Page::Wall, None),
                        _ => (Page::Snapshot, Some(2)),
                    };
                    match c.page(kind, user, arg).unwrap() {
                        Response::Ok(payload) => {
                            assert!(
                                !payload.contains("consistent=false"),
                                "snapshot page saw instability: {payload}"
                            );
                            ok += 1;
                        }
                        Response::Err { code, reason } => {
                            assert!(genie_server::retryable(code), "fatal error {code} {reason}");
                        }
                    }
                }
                ok
            })
        })
        .collect();
    let served: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(served > 0);
    assert_eq!(
        server.metrics().snapshot_violations.load(Ordering::Relaxed),
        0,
        "snapshot pages observed torn reads"
    );
    // All sessions must be back before and after shutdown.
    let pool = server.pool_snapshot();
    assert_eq!(pool.idle, pool.capacity, "pool not idle at rest: {pool:?}");
    let report = server.shutdown();
    assert_eq!(report.leaked_sessions, 0, "{report:?}");
    assert_eq!(report.dropped_in_flight, 0, "{report:?}");
    // The cache tier agrees with the database for every swept object.
    for name in [
        "latest_wall_posts",
        "wall_post_count",
        "user_by_id",
        "friends_of_user",
    ] {
        for user in 1..=users {
            assert!(
                env.genie
                    .verify_coherence(name, &[Value::Int(user)])
                    .unwrap(),
                "cache incoherent: {name}({user})"
            );
        }
    }
}
