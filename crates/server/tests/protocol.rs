//! Protocol conformance: every frame the wire can carry — well-formed,
//! malformed, oversized, partial, pipelined, unknown — gets a clean
//! protocol-level answer. No input may panic a worker or wedge a
//! connection.

use genie_server::{Page, Response, ServeClient, Server, ServerConfig};
use genie_social::{build_app, AppConfig, AppEnv, SeedConfig};
use std::io::ErrorKind;
use std::time::Duration;

fn tiny_env() -> AppEnv {
    build_app(&AppConfig {
        seed: SeedConfig::tiny(),
        strategy: None,
        ..Default::default()
    })
    .expect("build tiny app")
}

fn start(cfg: ServerConfig) -> (AppEnv, Server) {
    let env = tiny_env();
    let server = Server::start(&env, cfg).expect("start server");
    (env, server)
}

fn ok_payload(resp: Response) -> String {
    match resp {
        Response::Ok(p) => p,
        Response::Err { code, reason } => panic!("expected OK, got ERR {code} {reason}"),
    }
}

fn err_code(resp: Response) -> u16 {
    match resp {
        Response::Err { code, .. } => code,
        Response::Ok(p) => panic!("expected ERR, got OK {p:?}"),
    }
}

#[test]
fn every_page_kind_round_trips() {
    let (_env, server) = start(ServerConfig::default());
    let mut c = ServeClient::connect(server.addr()).unwrap();
    ok_payload(c.hello("conformance").unwrap());
    for kind in Page::all() {
        let payload = ok_payload(c.page(kind, 1, Some(2)).unwrap());
        assert!(
            payload.contains(&format!("page={}", kind.name())),
            "payload for {} was {payload:?}",
            kind.name()
        );
    }
    // Arg-less form works for every kind too.
    for kind in Page::all() {
        ok_payload(c.page(kind, 2, None).unwrap());
    }
    let report = server.shutdown();
    assert_eq!(report.dropped_in_flight, 0);
    assert_eq!(report.leaked_sessions, 0);
}

#[test]
fn health_metrics_and_admin_endpoints() {
    let (_env, server) = start(ServerConfig::default());
    let mut c = ServeClient::connect(server.addr()).unwrap();
    let health = ok_payload(c.health().unwrap());
    assert!(health.contains("status=ok"), "health: {health}");
    assert!(health.contains("pool_capacity="), "health: {health}");
    ok_payload(c.page(Page::Wall, 1, None).unwrap());
    let metrics = ok_payload(c.metrics().unwrap());
    assert!(
        metrics.contains("serve_requests_total"),
        "metrics: {metrics}"
    );
    assert!(
        metrics.contains("serve_page_requests{page=\"wall\"} 1"),
        "metrics: {metrics}"
    );
    assert!(metrics.contains("quantile=\"0.99\""), "metrics: {metrics}");
    let stats = ok_payload(c.admin("stats").unwrap());
    assert!(stats.contains("pool_capacity="), "stats: {stats}");
    // Flush is a no-op on an in-memory deployment but must succeed.
    ok_payload(c.admin("flush").unwrap());
    // Checkpoint requires durability: clean 400, not a panic.
    assert_eq!(err_code(c.admin("checkpoint").unwrap()), 400);
    server.shutdown();
}

#[test]
fn malformed_frames_get_400_and_the_connection_survives() {
    let (_env, server) = start(ServerConfig::default());
    let mut c = ServeClient::connect(server.addr()).unwrap();
    let cases: &[&str] = &[
        "FROB 1",          // unknown verb
        "PAGE",            // missing page kind
        "PAGE wall",       // missing user
        "PAGE wall abc",   // non-numeric user
        "PAGE wall 0",     // non-positive user
        "PAGE wall -3",    // negative user
        "PAGE wall 1 2 3", // trailing tokens
        "PAGE wall 1 xyz", // non-numeric arg
        "HELLO",           // missing principal
        "ADMIN",           // missing command
        "ADMIN reboot",    // unknown admin command
        "",                // empty line
    ];
    for case in cases {
        let code = err_code(c.request_line(case).unwrap());
        assert_eq!(code, 400, "case {case:?}");
        // The same connection still serves a valid request.
        ok_payload(c.page(Page::Login, 1, None).unwrap());
    }
    // Unknown page kind is 404, not 400.
    assert_eq!(err_code(c.request_line("PAGE nosuch 1").unwrap()), 404);
    // Non-UTF-8 bytes are a 400, connection survives.
    c.send_raw(b"\xff\xfe\xfd\n").unwrap();
    assert_eq!(err_code(c.read_response().unwrap()), 400);
    ok_payload(c.health().unwrap());
    server.shutdown();
}

#[test]
fn oversized_frame_is_413_and_closes_the_connection() {
    let (_env, server) = start(ServerConfig::default());
    let mut c = ServeClient::connect(server.addr()).unwrap();
    // More than MAX_LINE bytes with no terminator: unrecoverable.
    c.send_raw(&vec![b'A'; 4096]).unwrap();
    assert_eq!(err_code(c.read_response().unwrap()), 413);
    // The server closed the connection afterwards (a clean EOF, or an
    // RST if our unread bytes were still in its receive buffer).
    let err = c.read_response().unwrap_err();
    assert!(
        matches!(
            err.kind(),
            ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::BrokenPipe
        ),
        "unexpected error kind: {err:?}"
    );
    // The server itself is unharmed.
    let mut c2 = ServeClient::connect(server.addr()).unwrap();
    ok_payload(c2.health().unwrap());
    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (_env, server) = start(ServerConfig::default());
    let mut c = ServeClient::connect(server.addr()).unwrap();
    c.send_raw(b"HEALTH\nPAGE login 1\nPAGE nosuch 1\nPAGE wall 1\n")
        .unwrap();
    let r1 = ok_payload(c.read_response().unwrap());
    assert!(r1.contains("status=ok"), "first: {r1}");
    let r2 = ok_payload(c.read_response().unwrap());
    assert!(r2.contains("page=login"), "second: {r2}");
    assert_eq!(err_code(c.read_response().unwrap()), 404);
    let r4 = ok_payload(c.read_response().unwrap());
    assert!(r4.contains("page=wall"), "fourth: {r4}");
    server.shutdown();
}

#[test]
fn partially_written_frames_are_reassembled() {
    let (_env, server) = start(ServerConfig::default());
    let mut c = ServeClient::connect(server.addr()).unwrap();
    for chunk in [&b"PAGE lo"[..], &b"okup_bm"[..], &b" 1"[..], &b"\n"[..]] {
        c.send_raw(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    let payload = ok_payload(c.read_response().unwrap());
    assert!(payload.contains("page=lookup_bm"), "payload: {payload}");
    server.shutdown();
}

#[test]
fn snapshot_page_reports_consistency() {
    let (_env, server) = start(ServerConfig::default());
    let mut c = ServeClient::connect(server.addr()).unwrap();
    let payload = ok_payload(c.page(Page::Snapshot, 1, Some(4)).unwrap());
    assert!(payload.contains("consistent=true"), "payload: {payload}");
    assert_eq!(
        server
            .metrics()
            .snapshot_violations
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
    server.shutdown();
}

#[test]
fn quit_is_acknowledged_then_closed() {
    let (_env, server) = start(ServerConfig::default());
    let mut c = ServeClient::connect(server.addr()).unwrap();
    let bye = ok_payload(c.quit().unwrap());
    assert!(bye.contains("bye"));
    let err = c.read_response().unwrap_err();
    assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    server.shutdown();
}

#[test]
fn status_codes_are_counted_per_class() {
    let (_env, server) = start(ServerConfig::default());
    let mut c = ServeClient::connect(server.addr()).unwrap();
    ok_payload(c.page(Page::Login, 1, None).unwrap());
    let _ = c.request_line("PAGE nosuch 1").unwrap();
    let _ = c.request_line("garbage").unwrap();
    assert!(server.metrics().status_count(200) >= 1);
    assert_eq!(server.metrics().status_count(404), 1);
    assert_eq!(server.metrics().status_count(400), 1);
    server.shutdown();
}
