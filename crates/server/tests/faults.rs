//! Fault injection: misbehaving clients, overload, and shutdown under
//! load. The server must degrade with clean retryable errors, never
//! panic, never wedge a worker, never leak a session, and leave the
//! cache coherent and the WAL recoverable.

use genie_server::{Page, Response, ServeClient, Server, ServerConfig};
use genie_social::{build_app, build_app_on, AppConfig, AppEnv, SeedConfig};
use genie_storage::{Database, Value, WalConfig};
use std::io::ErrorKind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cached objects the post-run coherence sweep checks, per user.
const SWEPT_OBJECTS: &[&str] = &[
    "latest_wall_posts",
    "wall_post_count",
    "user_by_id",
    "profile_by_user",
    "friends_of_user",
    "friend_count",
    "user_bookmark_count",
];

fn cached_env() -> AppEnv {
    build_app(&AppConfig {
        seed: SeedConfig::tiny(),
        strategy: Some(cachegenie::ConsistencyStrategy::UpdateInPlace),
        ..Default::default()
    })
    .expect("build cached app")
}

fn start(cfg: ServerConfig) -> (AppEnv, Server) {
    let env = cached_env();
    let server = Server::start(&env, cfg).expect("start server");
    (env, server)
}

fn sweep_coherence(env: &AppEnv) {
    let users = env.seeded.users as i64;
    for name in SWEPT_OBJECTS {
        for user in 1..=users {
            let ok = env
                .genie
                .verify_coherence(name, &[Value::Int(user)])
                .unwrap_or_else(|e| panic!("verify {name}({user}): {e}"));
            assert!(ok, "cache incoherent: {name}({user})");
        }
    }
}

fn is_disconnect(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionRefused
            | ErrorKind::BrokenPipe
            | ErrorKind::WouldBlock
            | ErrorKind::TimedOut
    )
}

#[test]
fn client_disconnect_mid_request_leaves_server_healthy() {
    let (_env, server) = start(ServerConfig::default());
    for _ in 0..8 {
        let mut c = ServeClient::connect(server.addr()).unwrap();
        // Half a frame, then vanish.
        c.send_raw(b"PAGE wall ").unwrap();
        drop(c);
    }
    // Also: a full request whose response has nowhere to go.
    let mut c = ServeClient::connect(server.addr()).unwrap();
    c.send_raw(b"PAGE wall 1\n").unwrap();
    drop(c);
    std::thread::sleep(Duration::from_millis(100));
    let mut probe = ServeClient::connect(server.addr()).unwrap();
    let resp = probe.health().unwrap();
    assert!(matches!(resp, Response::Ok(p) if p.contains("status=ok")));
    let report = server.shutdown();
    assert_eq!(report.leaked_sessions, 0, "sessions leaked: {report:?}");
}

#[test]
fn slow_loris_is_cut_off_with_408() {
    let (_env, server) = start(ServerConfig {
        request_read_timeout: Duration::from_millis(100),
        read_tick: Duration::from_millis(10),
        ..ServerConfig::default()
    });
    let mut c = ServeClient::connect(server.addr()).unwrap();
    c.send_raw(b"PAGE wa").unwrap();
    let t0 = Instant::now();
    let resp = c.read_response().unwrap();
    assert!(
        matches!(resp, Response::Err { code: 408, .. }),
        "expected 408, got {resp:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "timeout enforcement too slow: {:?}",
        t0.elapsed()
    );
    // Connection is closed after the timeout answer.
    let err = c.read_response().unwrap_err();
    assert!(is_disconnect(err.kind()), "got {err:?}");
    assert!(server.metrics().read_timeouts.load(Ordering::Relaxed) >= 1);
    // A well-behaved client is unaffected.
    let mut c2 = ServeClient::connect(server.addr()).unwrap();
    assert!(matches!(
        c2.page(Page::Wall, 1, None).unwrap(),
        Response::Ok(_)
    ));
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped() {
    let (_env, server) = start(ServerConfig {
        idle_timeout: Duration::from_millis(100),
        read_tick: Duration::from_millis(10),
        ..ServerConfig::default()
    });
    let mut c = ServeClient::connect(server.addr()).unwrap();
    // Send nothing at all: the server closes us without a response.
    let err = c.read_response().unwrap_err();
    assert!(is_disconnect(err.kind()), "got {err:?}");
    server.shutdown();
}

#[test]
fn rate_limited_client_rejected_then_recovers() {
    let (_env, server) = start(ServerConfig {
        rate_per_sec: 20.0,
        rate_burst: 2.0,
        ..ServerConfig::default()
    });
    let mut c = ServeClient::connect(server.addr()).unwrap();
    assert!(matches!(c.hello("greedy").unwrap(), Response::Ok(_)));
    // Exhaust the burst; the limiter must answer 429 within a few
    // requests (the bucket holds 2 and refills at 20/s).
    let mut limited = false;
    for _ in 0..6 {
        match c.page(Page::Login, 1, None).unwrap() {
            Response::Ok(_) => {}
            Response::Err { code: 429, .. } => {
                limited = true;
                break;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(limited, "burst was never limited");
    assert!(server.metrics().rate_limited.load(Ordering::Relaxed) >= 1);
    // Back off long enough for the bucket to refill, then recover.
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        matches!(c.page(Page::Login, 1, None).unwrap(), Response::Ok(_)),
        "client did not recover after backoff"
    );
    // An independent principal was never affected.
    let mut c2 = ServeClient::connect(server.addr()).unwrap();
    assert!(matches!(c2.hello("patient").unwrap(), Response::Ok(_)));
    assert!(matches!(
        c2.page(Page::Login, 2, None).unwrap(),
        Response::Ok(_)
    ));
    server.shutdown();
}

#[test]
fn backlog_overflow_sheds_connections_retryably() {
    let (_env, server) = start(ServerConfig {
        workers: 1,
        backlog: 1,
        ..ServerConfig::default()
    });
    // Occupy the only worker with a live connection.
    let mut held = ServeClient::connect(server.addr()).unwrap();
    assert!(matches!(held.health().unwrap(), Response::Ok(_)));
    // Fill the single queue slot.
    let queued = ServeClient::connect(server.addr()).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    // The next connection must be refused with a retryable 503.
    let mut shed = ServeClient::connect(server.addr()).unwrap();
    let resp = shed.read_response().unwrap();
    match &resp {
        Response::Err { code: 503, .. } => assert!(resp.is_retryable()),
        other => panic!("expected shed 503, got {other:?}"),
    }
    assert!(server.metrics().connections_shed.load(Ordering::Relaxed) >= 1);
    // Freeing the worker drains the queue: the queued client is served.
    assert!(matches!(held.quit().unwrap(), Response::Ok(_)));
    let mut queued = queued;
    assert!(matches!(queued.health().unwrap(), Response::Ok(_)));
    server.shutdown();
}

#[test]
fn admission_control_sheds_excess_inflight_requests() {
    let (_env, server) = start(ServerConfig {
        workers: 4,
        max_inflight: 1,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let saw_shed = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let stop = Arc::clone(&stop);
            let saw_shed = Arc::clone(&saw_shed);
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(addr).unwrap();
                let user = i + 1;
                while !stop.load(Ordering::Relaxed) {
                    match c.page(Page::Snapshot, user, Some(64)).unwrap() {
                        Response::Ok(_) => {}
                        Response::Err { code: 503, .. } => {
                            saw_shed.store(true, Ordering::Relaxed);
                        }
                        Response::Err { code: 409, .. } => {}
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
            })
        })
        .collect();
    let t0 = Instant::now();
    while !saw_shed.load(Ordering::Relaxed) && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }
    assert!(
        saw_shed.load(Ordering::Relaxed),
        "4 concurrent clients against max_inflight=1 never shed"
    );
    assert!(server.metrics().requests_shed.load(Ordering::Relaxed) >= 1);
    let report = server.shutdown();
    assert_eq!(report.leaked_sessions, 0);
    assert_eq!(report.dropped_in_flight, 0);
}

/// Drives write-heavy load from `threads` clients until `stop` is set;
/// every thread tolerates retryable errors and disconnects (which are
/// exactly what shutdown produces) but panics on anything else.
fn spawn_load(
    addr: std::net::SocketAddr,
    threads: usize,
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<u64>> {
    (0..threads)
        .map(|i| {
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut n = 0i64;
                'outer: while !stop.load(Ordering::Relaxed) {
                    let Ok(mut c) = ServeClient::connect(addr) else {
                        // Refused: the server is draining.
                        break;
                    };
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        n += 1;
                        // SeedConfig::tiny() creates 20 users; keep
                        // every id argument inside that population or
                        // foreign keys will (correctly) reject us.
                        let user = (i as i64 * 5 + n % 5) + 1;
                        let kinds = [
                            Page::PostWall,
                            Page::CreateBM,
                            Page::Wall,
                            Page::AcceptFR,
                            Page::Snapshot,
                        ];
                        let kind = kinds[(n as usize) % kinds.len()];
                        let arg = match kind {
                            // Bookmark URLs are unique: keep each
                            // thread in its own id space.
                            Page::CreateBM => Some(i as i64 * 1_000_000 + n),
                            Page::Snapshot => Some(4),
                            Page::PostWall | Page::AcceptFR => Some((user % 20) + 1),
                            _ => None,
                        };
                        match c.page(kind, user, arg) {
                            Ok(Response::Ok(_)) => served += 1,
                            Ok(Response::Err { code, reason }) => {
                                let retryable = genie_server::retryable(code);
                                assert!(retryable, "fatal error {code} {reason}");
                            }
                            Err(e) => {
                                assert!(is_disconnect(e.kind()), "hard error {e:?}");
                                break;
                            }
                        }
                    }
                }
                served
            })
        })
        .collect()
}

#[test]
fn shutdown_under_load_drains_and_leaves_cache_coherent() {
    let (env, server) = start(ServerConfig::default());
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let loaders = spawn_load(addr, 4, &stop);
    std::thread::sleep(Duration::from_millis(200));
    // Shut down while requests are in flight.
    let report = server.shutdown();
    stop.store(true, Ordering::Relaxed);
    let served: u64 = loaders.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(served > 0, "load never got going");
    assert_eq!(report.dropped_in_flight, 0, "dropped requests: {report:?}");
    assert_eq!(report.leaked_sessions, 0, "leaked sessions: {report:?}");
    // Every cached object agrees with the database after the storm.
    sweep_coherence(&env);
}

#[test]
fn drain_command_refuses_new_connections() {
    let (_env, server) = start(ServerConfig::default());
    let mut c = ServeClient::connect(server.addr()).unwrap();
    let resp = c.admin("drain").unwrap();
    assert!(matches!(resp, Response::Ok(p) if p.contains("draining")));
    assert!(server.is_draining());
    // A new connection is refused: either an explicit retryable 503
    // from the acceptor, or a hard refusal once the listener is gone.
    match ServeClient::connect(server.addr()) {
        Ok(mut refused) => match refused.read_response() {
            Ok(resp) => {
                assert!(
                    matches!(resp, Response::Err { code: 503, .. }),
                    "got {resp:?}"
                );
            }
            Err(e) => assert!(is_disconnect(e.kind()), "got {e:?}"),
        },
        Err(e) => assert!(is_disconnect(e.kind()), "got {e:?}"),
    }
    let report = server.shutdown();
    assert_eq!(report.leaked_sessions, 0);
    assert_eq!(report.dropped_in_flight, 0);
}

#[test]
fn shutdown_under_load_flushes_a_recoverable_wal() {
    let dir = std::env::temp_dir().join(format!("genie-serve-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let app_cfg = AppConfig {
        seed: SeedConfig::tiny(),
        strategy: Some(cachegenie::ConsistencyStrategy::UpdateInPlace),
        ..Default::default()
    };
    let db = Database::create_durable(&dir, app_cfg.db.clone(), WalConfig::default()).unwrap();
    let env = build_app_on(db, &app_cfg).unwrap();
    let server = Server::start(&env, ServerConfig::default()).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let loaders = spawn_load(server.addr(), 3, &stop);
    std::thread::sleep(Duration::from_millis(200));
    let report = server.shutdown();
    stop.store(true, Ordering::Relaxed);
    let served: u64 = loaders.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(served > 0, "load never got going");
    assert!(report.wal_flushed, "WAL was not flushed: {report:?}");
    assert_eq!(report.dropped_in_flight, 0);
    sweep_coherence(&env);
    // Recovery from the flushed log reproduces the exact same state.
    let digest = env.db.content_digest();
    drop(env);
    let recovered = Database::open_with_recovery(&dir).unwrap();
    assert_eq!(
        recovered.content_digest(),
        digest,
        "recovered state diverged from the drained server's state"
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
