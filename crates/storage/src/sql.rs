//! SQL-subset lexer and parser.
//!
//! Covers the statement surface an ORM emits plus the DDL the test suite
//! needs: `SELECT` (joins, aggregates, grouping, ordering, limits),
//! `INSERT`/`UPDATE`/`DELETE`, `CREATE TABLE`/`CREATE INDEX`, and
//! transaction control. Positional parameters are written `$1`, `$2`, …
//! and bind 0-based into the params slice.
//!
//! The parser accepts everything the AST's `Display` implementations emit,
//! which is verified by a round-trip property test — so canonical SQL text
//! is a faithful serialization of [`Statement`].

use crate::error::{Result, StorageError};
use crate::expr::{ArithOp, CmpOp, ColumnRef, Expr};
use crate::query::{
    AggFunc, Delete, Insert, Join, JoinKind, OrderKey, Select, SelectItem, Statement, TableRef,
    Update,
};
use crate::schema::{ColumnDef, IndexDef, TableSchema};
use crate::value::{Value, ValueType};

/// Parses one SQL statement.
///
/// # Errors
///
/// [`StorageError::Parse`] with a human-readable message and offset
/// context for any lexical or syntactic problem.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.expect_end()?;
    Ok(stmt)
}

/// Parses a standalone scalar expression (used by tests and tooling).
///
/// # Errors
///
/// [`StorageError::Parse`] on malformed input.
pub fn parse_expr(text: &str) -> Result<Expr> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Param(usize),
    Sym(&'static str),
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let b: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.push(Tok::Ident(b[start..i].iter().collect()));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == '.') {
                if b[i] == '.' {
                    // A second dot terminates the number.
                    if is_float {
                        break;
                    }
                    is_float = true;
                }
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            if is_float {
                let v = text
                    .parse::<f64>()
                    .map_err(|_| StorageError::Parse(format!("bad float literal {text:?}")))?;
                out.push(Tok::Float(v));
            } else {
                let v = text
                    .parse::<i64>()
                    .map_err(|_| StorageError::Parse(format!("bad int literal {text:?}")))?;
                out.push(Tok::Int(v));
            }
            continue;
        }
        if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= b.len() {
                    return Err(StorageError::Parse("unterminated string literal".into()));
                }
                if b[i] == '\'' {
                    if i + 1 < b.len() && b[i + 1] == '\'' {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(b[i]);
                i += 1;
            }
            out.push(Tok::Str(s));
            continue;
        }
        if c == '$' {
            i += 1;
            let start = i;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            if start == i {
                return Err(StorageError::Parse("expected digits after '$'".into()));
            }
            let n: usize = b[start..i]
                .iter()
                .collect::<String>()
                .parse()
                .map_err(|_| StorageError::Parse("bad parameter number".into()))?;
            if n == 0 {
                return Err(StorageError::Parse("parameters are 1-based ($1...)".into()));
            }
            out.push(Tok::Param(n - 1));
            continue;
        }
        // Multi-char operators first.
        let two: String = b[i..(i + 2).min(b.len())].iter().collect();
        let sym2 = match two.as_str() {
            "<>" => Some("<>"),
            "!=" => Some("<>"),
            "<=" => Some("<="),
            ">=" => Some(">="),
            _ => None,
        };
        if let Some(s) = sym2 {
            out.push(Tok::Sym(s));
            i += 2;
            continue;
        }
        let sym1 = match c {
            '(' => "(",
            ')' => ")",
            ',' => ",",
            '*' => "*",
            '/' => "/",
            '+' => "+",
            '-' => "-",
            '=' => "=",
            '<' => "<",
            '>' => ">",
            '.' => ".",
            ';' => ";",
            other => {
                return Err(StorageError::Parse(format!(
                    "unexpected character {other:?} at offset {i}"
                )))
            }
        };
        out.push(Tok::Sym(sym1));
        i += 1;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(StorageError::Parse(format!(
            "{} (near token {})",
            msg.into(),
            self.pos
        )))
    }

    /// Case-insensitive keyword check without consuming.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consumes `kw` if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}"))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(t)) if *t == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            self.err(format!("expected {s:?}"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => self.err(format!("expected identifier, got {other:?}")),
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        self.eat_sym(";");
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.err("trailing tokens after statement")
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("EXPLAIN") {
            return Ok(Statement::Explain(self.select()?));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("CREATE") {
            return self.create();
        }
        if self.eat_kw("BEGIN") {
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Statement::Rollback);
        }
        self.err("expected a statement keyword")
    }

    // ----- SELECT -----

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let mut projection = vec![self.select_item()?];
        while self.eat_sym(",") {
            projection.push(self.select_item()?);
        }
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_kw("LEFT") {
                // Optional OUTER noise word.
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.eat_kw("JOIN") || {
                if self.peek_kw("INNER") {
                    self.pos += 1;
                    self.expect_kw("JOIN")?;
                    true
                } else {
                    false
                }
            } {
                JoinKind::Inner
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            joins.push(Join { kind, table, on });
        }
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.column_ref()?);
            while self.eat_sym(",") {
                group_by.push(self.column_ref()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            Some(self.uint()?)
        } else {
            None
        };
        let offset = if self.eat_kw("OFFSET") {
            Some(self.uint()?)
        } else {
            None
        };
        Ok(Select {
            from,
            joins,
            projection,
            predicate,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    fn uint(&mut self) -> Result<u64> {
        match self.next() {
            Some(Tok::Int(v)) if v >= 0 => Ok(v as u64),
            other => self.err(format!("expected non-negative integer, got {other:?}")),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_sym("*") {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate?
        if let Some(Tok::Ident(name)) = self.peek() {
            let func = match name.to_ascii_uppercase().as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "AVG" => Some(AggFunc::Avg),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = func {
                if self.tokens.get(self.pos + 1) == Some(&Tok::Sym("(")) {
                    self.pos += 2; // consume name and '('
                    let arg = if self.eat_sym("*") {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_sym(")")?;
                    let alias = self.alias()?;
                    return Ok(SelectItem::Aggregate { func, arg, alias });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        if self.eat_kw("AS") {
            let alias = self.ident()?;
            Ok(TableRef::aliased(table, alias))
        } else {
            Ok(TableRef::new(table))
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.eat_sym(".") {
            let second = self.ident()?;
            Ok(ColumnRef::qualified(first, second))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    // ----- INSERT / UPDATE / DELETE -----

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_sym("(") {
            columns.push(self.ident()?);
            while self.eat_sym(",") {
                columns.push(self.ident()?);
            }
            self.expect_sym(")")?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut vals = vec![self.expr()?];
            while self.eat_sym(",") {
                vals.push(self.expr()?);
            }
            self.expect_sym(")")?;
            rows.push(vals);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            rows,
        }))
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            let e = self.expr()?;
            sets.push((col, e));
            if !self.eat_sym(",") {
                break;
            }
        }
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            sets,
            predicate,
        }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete { table, predicate }))
    }

    // ----- CREATE -----

    fn create(&mut self) -> Result<Statement> {
        if self.eat_kw("TABLE") {
            return self.create_table();
        }
        let unique = self.eat_kw("UNIQUE");
        if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect_sym("(")?;
            let mut columns = vec![self.ident()?];
            while self.eat_sym(",") {
                columns.push(self.ident()?);
            }
            self.expect_sym(")")?;
            return Ok(Statement::CreateIndex {
                table,
                def: IndexDef {
                    name,
                    columns,
                    unique,
                },
            });
        }
        self.err("expected TABLE or [UNIQUE] INDEX after CREATE")
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut builder = TableSchema::builder(&name);
        let mut first = true;
        loop {
            if !first && !self.eat_sym(",") {
                break;
            }
            first = false;
            if self.eat_kw("FOREIGN") {
                self.expect_kw("KEY")?;
                self.expect_sym("(")?;
                let col = self.ident()?;
                self.expect_sym(")")?;
                self.expect_kw("REFERENCES")?;
                let ref_table = self.ident()?;
                self.expect_sym("(")?;
                let ref_col = self.ident()?;
                self.expect_sym(")")?;
                builder = builder.foreign_key(col, ref_table, ref_col);
                continue;
            }
            if matches!(self.peek(), Some(Tok::Sym(")"))) {
                break;
            }
            let col_name = self.ident()?;
            let ty = self.type_name()?;
            let mut def = ColumnDef::new(&col_name, ty);
            let mut is_pk = false;
            loop {
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    def = def.not_null();
                } else if self.eat_kw("UNIQUE") {
                    def = def.unique();
                } else if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    is_pk = true;
                    def = def.not_null();
                } else {
                    break;
                }
            }
            builder = builder.column(def);
            if is_pk {
                builder = builder.primary_key(&col_name);
            }
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateTable(builder.build()?))
    }

    fn type_name(&mut self) -> Result<ValueType> {
        let t = self.ident()?;
        match t.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SERIAL" => Ok(ValueType::Int),
            "FLOAT" | "REAL" | "DOUBLE" => Ok(ValueType::Float),
            "TEXT" | "VARCHAR" | "CHAR" => Ok(ValueType::Text),
            "BOOL" | "BOOLEAN" => Ok(ValueType::Bool),
            "TIMESTAMP" | "DATE" | "DATETIME" => Ok(ValueType::Timestamp),
            other => self.err(format!("unknown type {other}")),
        }
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            e = e.or(rhs);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            e = e.and(rhs);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            // Desugars to `lhs >= lo AND lhs <= hi`, which the planner's
            // conjunct extraction turns into one index range scan.
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(
                Expr::Cmp(Box::new(lhs.clone()), CmpOp::Ge, Box::new(lo)).and(Expr::Cmp(
                    Box::new(lhs),
                    CmpOp::Le,
                    Box::new(hi),
                )),
            );
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = vec![self.expr()?];
            while self.eat_sym(",") {
                list.push(self.expr()?);
            }
            self.expect_sym(")")?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
            });
        }
        if self.eat_kw("LIKE") {
            match self.next() {
                Some(Tok::Str(p)) => {
                    return Ok(Expr::Like {
                        expr: Box::new(lhs),
                        pattern: p,
                    })
                }
                other => return self.err(format!("expected string pattern, got {other:?}")),
            }
        }
        let op = if self.eat_sym("=") {
            Some(CmpOp::Eq)
        } else if self.eat_sym("<>") {
            Some(CmpOp::Ne)
        } else if self.eat_sym("<=") {
            Some(CmpOp::Le)
        } else if self.eat_sym(">=") {
            Some(CmpOp::Ge)
        } else if self.eat_sym("<") {
            Some(CmpOp::Lt)
        } else if self.eat_sym(">") {
            Some(CmpOp::Gt)
        } else {
            None
        };
        if let Some(op) = op {
            let rhs = self.additive()?;
            return Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut e = self.term()?;
        loop {
            if self.eat_sym("+") {
                let rhs = self.term()?;
                e = Expr::Arith(Box::new(e), ArithOp::Add, Box::new(rhs));
            } else if self.eat_sym("-") {
                let rhs = self.term()?;
                e = Expr::Arith(Box::new(e), ArithOp::Sub, Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn term(&mut self) -> Result<Expr> {
        let mut e = self.factor()?;
        loop {
            if self.eat_sym("*") {
                let rhs = self.factor()?;
                e = Expr::Arith(Box::new(e), ArithOp::Mul, Box::new(rhs));
            } else if self.eat_sym("/") {
                let rhs = self.factor()?;
                e = Expr::Arith(Box::new(e), ArithOp::Div, Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn factor(&mut self) -> Result<Expr> {
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        if self.eat_sym("-") {
            let inner = self.factor()?;
            return Ok(match inner {
                Expr::Literal(Value::Int(v)) => Expr::Literal(Value::Int(-v)),
                Expr::Literal(Value::Float(v)) => Expr::Literal(Value::Float(-v)),
                other => Expr::Arith(Box::new(Expr::lit(0i64)), ArithOp::Sub, Box::new(other)),
            });
        }
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Literal(Value::Int(v))),
            Some(Tok::Float(v)) => Ok(Expr::Literal(Value::Float(v))),
            Some(Tok::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Tok::Param(i)) => Ok(Expr::Param(i)),
            Some(Tok::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => Ok(Expr::Literal(Value::Null)),
                    "TRUE" => Ok(Expr::Literal(Value::Bool(true))),
                    "FALSE" => Ok(Expr::Literal(Value::Bool(false))),
                    "TS" => {
                        // TS(<int>) renders Timestamp literals round-trippably.
                        self.expect_sym("(")?;
                        let v = match self.next() {
                            Some(Tok::Int(v)) => v,
                            other => {
                                return self.err(format!("expected int in TS(), got {other:?}"))
                            }
                        };
                        self.expect_sym(")")?;
                        Ok(Expr::Literal(Value::Timestamp(v)))
                    }
                    _ => {
                        if self.eat_sym(".") {
                            let col = self.ident()?;
                            Ok(Expr::Column(ColumnRef::qualified(name, col)))
                        } else {
                            Ok(Expr::Column(ColumnRef::bare(name)))
                        }
                    }
                }
            }
            other => self.err(format!("expected expression, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) {
        let stmt = parse(sql).unwrap();
        let rendered = match &stmt {
            Statement::Select(s) => s.to_string(),
            Statement::Insert(s) => s.to_string(),
            Statement::Update(s) => s.to_string(),
            Statement::Delete(s) => s.to_string(),
            other => panic!("no display round-trip for {other:?}"),
        };
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(stmt, reparsed, "display text: {rendered}");
    }

    #[test]
    fn select_basic() {
        let s = parse("SELECT * FROM users WHERE id = $1").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.table, "users");
        assert!(sel.predicate.is_some());
    }

    #[test]
    fn select_full_featured() {
        let sql = "SELECT u.name AS who, COUNT(*) AS n FROM users AS u \
                   JOIN posts ON posts.user_id = u.id \
                   WHERE u.age >= 18 AND posts.score > 0 \
                   GROUP BY u.name";
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        assert_eq!(sel.joins.len(), 1);
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.is_aggregate());
    }

    #[test]
    fn select_order_limit_offset() {
        let sql = "SELECT * FROM wall WHERE user_id = $1 ORDER BY date_posted DESC, post_id ASC LIMIT 20 OFFSET 5";
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!()
        };
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].desc);
        assert!(!sel.order_by[1].desc);
        assert_eq!(sel.limit, Some(20));
        assert_eq!(sel.offset, Some(5));
    }

    #[test]
    fn left_join_variants() {
        for sql in [
            "SELECT * FROM a LEFT JOIN b ON b.x = a.x",
            "SELECT * FROM a LEFT OUTER JOIN b ON b.x = a.x",
        ] {
            let Statement::Select(sel) = parse(sql).unwrap() else {
                panic!()
            };
            assert_eq!(sel.joins[0].kind, JoinKind::Left);
        }
        let Statement::Select(sel) = parse("SELECT * FROM a INNER JOIN b ON b.x = a.x").unwrap()
        else {
            panic!()
        };
        assert_eq!(sel.joins[0].kind, JoinKind::Inner);
    }

    #[test]
    fn insert_forms() {
        let Statement::Insert(i) = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap()
        else {
            panic!()
        };
        assert_eq!(i.rows.len(), 2);
        assert_eq!(i.columns, vec!["a".to_string(), "b".to_string()]);
        let Statement::Insert(i2) = parse("INSERT INTO t VALUES ($1, $2)").unwrap() else {
            panic!()
        };
        assert!(i2.columns.is_empty());
    }

    #[test]
    fn update_and_delete() {
        let Statement::Update(u) = parse("UPDATE t SET a = a + 1, b = 'z' WHERE id = 3").unwrap()
        else {
            panic!()
        };
        assert_eq!(u.sets.len(), 2);
        let Statement::Delete(d) = parse("DELETE FROM t").unwrap() else {
            panic!()
        };
        assert!(d.predicate.is_none());
    }

    #[test]
    fn create_table_with_constraints() {
        let sql = "CREATE TABLE users (id INT PRIMARY KEY, email TEXT UNIQUE NOT NULL, \
                   age INT, bio TEXT, FOREIGN KEY (age) REFERENCES ages (id))";
        let Statement::CreateTable(schema) = parse(sql).unwrap() else {
            panic!()
        };
        assert_eq!(schema.primary_key(), "id");
        assert!(schema.column("email").unwrap().unique);
        assert!(schema.column("email").unwrap().not_null);
        assert_eq!(schema.foreign_keys().len(), 1);
    }

    #[test]
    fn create_index_forms() {
        let Statement::CreateIndex { table, def } =
            parse("CREATE UNIQUE INDEX ux ON t (a, b)").unwrap()
        else {
            panic!()
        };
        assert_eq!(table, "t");
        assert!(def.unique);
        assert_eq!(def.columns.len(), 2);
    }

    #[test]
    fn transaction_keywords() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3 = 7 AND NOT FALSE").unwrap();
        // Shape: ((1 + (2*3)) = 7) AND (NOT FALSE)
        assert_eq!(e.to_string(), "(((1 + (2 * 3)) = 7) AND (NOT FALSE))");
    }

    #[test]
    fn string_escapes() {
        let e = parse_expr("'o''brien'").unwrap();
        assert_eq!(e, Expr::lit("o'brien"));
    }

    #[test]
    fn negative_literals() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::lit(-5i64));
        assert_eq!(parse_expr("-1.5").unwrap(), Expr::lit(-1.5f64));
    }

    #[test]
    fn is_null_and_in_and_like() {
        let e = parse_expr("a IS NOT NULL AND b IN (1, 2) AND c LIKE 'x%'").unwrap();
        let s = e.to_string();
        assert!(s.contains("IS NOT NULL"));
        assert!(s.contains("IN (1, 2)"));
        assert!(s.contains("LIKE 'x%'"));
    }

    #[test]
    fn timestamp_literal_roundtrip() {
        let e = parse_expr("TS(12345)").unwrap();
        assert_eq!(e, Expr::lit(Value::Timestamp(12345)));
    }

    #[test]
    fn parameters_are_one_based() {
        assert_eq!(parse_expr("$1").unwrap(), Expr::Param(0));
        assert!(parse_expr("$0").is_err());
        assert!(parse_expr("$").is_err());
    }

    #[test]
    fn lex_errors() {
        assert!(parse("SELECT ~ FROM t").is_err());
        assert!(parse("SELECT 'unterminated FROM t").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse("SELECT * FROM t garbage garbage").is_err());
    }

    #[test]
    fn display_parse_roundtrips() {
        for sql in [
            "SELECT * FROM users WHERE (id = $1)",
            "SELECT name AS n, age FROM users ORDER BY age DESC LIMIT 3",
            "SELECT COUNT(*) FROM friends WHERE (user_id = $1)",
            "SELECT AVG(age) AS a, MIN(age) AS lo, MAX(age) AS hi, SUM(age) AS s FROM users",
            "SELECT * FROM a JOIN b ON (b.x = a.x) LEFT JOIN c ON (c.y = b.y) WHERE ((a.z > 3) OR (b.w IS NULL))",
            "INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, TRUE)",
            "UPDATE t SET a = (a + 1) WHERE (id IN (1, 2, 3))",
            "DELETE FROM t WHERE (name LIKE 'bob%')",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn float_literals() {
        assert_eq!(parse_expr("1.5").unwrap(), Expr::lit(1.5f64));
        assert!(parse_expr("1.5.5").is_err());
    }
}
