//! The table catalog: name → latched [`Table`] mapping with dense ids.
//!
//! Each table sits inside its own [`RwLock`] cell — the *per-table latch*
//! of the engine's latch hierarchy (catalog read-write latch above, lock
//! manager below; see `docs/ARCHITECTURE.md`). Structural operations
//! (`create_table`, `create_index`, vacuum) take `&mut self`, which the
//! engine only has while holding the catalog latch exclusively, so they
//! can reach tables through [`RwLock::get_mut`] without touching the
//! per-table latches at all — one reason the hierarchy cannot deadlock.

use crate::error::{Result, StorageError};
use crate::schema::{IndexDef, TableSchema};
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// All tables in a database, each behind its own latch cell.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, RwLock<Table>>,
    next_id: u32,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a table from a validated schema.
    ///
    /// # Errors
    ///
    /// [`StorageError::AlreadyExists`] if the name is taken.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        let name = schema.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(StorageError::AlreadyExists(name));
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut table = Table::new(schema.clone(), id);
        // Columns declared UNIQUE get an implicit single-column unique
        // index, as in Postgres.
        for col in schema.columns() {
            if col.unique && col.name != schema.primary_key() {
                table.create_index(IndexDef {
                    name: format!("{}_{}_key", schema.name(), col.name),
                    columns: vec![col.name.clone()],
                    unique: true,
                })?;
            }
        }
        self.tables.insert(name, RwLock::new(table));
        Ok(())
    }

    /// Creates a secondary index on `table`.
    ///
    /// # Errors
    ///
    /// Unknown-table or index errors from [`Table::create_index`].
    pub fn create_index(&mut self, table: &str, def: IndexDef) -> Result<()> {
        self.table_mut(table)?.create_index(def)
    }

    /// The latch cell for `name`. Callers latch it in canonical (sorted
    /// name) order relative to any other table latches they hold.
    pub fn latch(&self, name: &str) -> Result<&RwLock<Table>> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Mutable table lookup, bypassing the per-table latch. Sound only
    /// because `&mut self` implies the catalog latch is held exclusively,
    /// which excludes every per-table latch holder.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .map(RwLock::get_mut)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Whether `name` exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Table names in deterministic (sorted) order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Total rows across all tables (diagnostics). Latches each table
    /// briefly in sorted order.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.read().len()).sum()
    }

    /// Iterates over the latch cells in sorted-name order.
    pub fn latches(&self) -> impl Iterator<Item = (&str, &RwLock<Table>)> {
        self.tables.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Mutable iteration over all tables (vacuum; requires the catalog
    /// latch held exclusively, see [`Catalog::table_mut`]).
    pub fn tables_mut(&mut self) -> impl Iterator<Item = &mut Table> {
        self.tables.values_mut().map(RwLock::get_mut)
    }

    /// Named mutable iteration, for building an exclusive-mode table set
    /// (same soundness argument as [`Catalog::table_mut`]).
    pub fn tables_mut_named(&mut self) -> impl Iterator<Item = (&str, &mut Table)> {
        self.tables
            .iter_mut()
            .map(|(n, t)| (n.as_str(), t.get_mut()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(name: &str) -> TableSchema {
        TableSchema::builder(name).pk("id").build().unwrap()
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create_table(schema("a")).unwrap();
        c.create_table(schema("b")).unwrap();
        assert!(c.has_table("a"));
        assert_eq!(c.latch("a").unwrap().read().id(), 0);
        assert_eq!(c.latch("b").unwrap().read().id(), 1);
        assert_eq!(c.table_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table(schema("a")).unwrap();
        assert!(matches!(
            c.create_table(schema("a")),
            Err(StorageError::AlreadyExists(_))
        ));
    }

    #[test]
    fn unknown_table_error() {
        let c = Catalog::new();
        assert!(matches!(
            c.latch("ghost"),
            Err(StorageError::UnknownTable(_))
        ));
    }

    #[test]
    fn latch_cells_are_independent() {
        let mut c = Catalog::new();
        c.create_table(schema("a")).unwrap();
        c.create_table(schema("b")).unwrap();
        let _wa = c.latch("a").unwrap().write();
        // A writer on `a` must not block any access to `b`.
        let rb = c.latch("b").unwrap().try_read();
        assert!(rb.is_some(), "disjoint tables share no latch");
    }
}
