//! The table catalog: name → [`Table`] mapping with dense table ids.

use crate::error::{Result, StorageError};
use crate::schema::{IndexDef, TableSchema};
use crate::table::Table;
use std::collections::BTreeMap;

/// All tables in a database. Wrapped by [`crate::Database`]'s lock.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    next_id: u32,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a table from a validated schema.
    ///
    /// # Errors
    ///
    /// [`StorageError::AlreadyExists`] if the name is taken.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        let name = schema.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(StorageError::AlreadyExists(name));
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut table = Table::new(schema.clone(), id);
        // Columns declared UNIQUE get an implicit single-column unique
        // index, as in Postgres.
        for col in schema.columns() {
            if col.unique && col.name != schema.primary_key() {
                table.create_index(IndexDef {
                    name: format!("{}_{}_key", schema.name(), col.name),
                    columns: vec![col.name.clone()],
                    unique: true,
                })?;
            }
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Creates a secondary index on `table`.
    ///
    /// # Errors
    ///
    /// Unknown-table or index errors from [`Table::create_index`].
    pub fn create_index(&mut self, table: &str, def: IndexDef) -> Result<()> {
        self.table_mut(table)?.create_index(def)
    }

    /// Immutable table lookup.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Whether `name` exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Table names in deterministic (sorted) order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Total rows across all tables (diagnostics).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Iterates over all tables (vacuum, version diagnostics).
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Mutable iteration over all tables (vacuum).
    pub fn tables_mut(&mut self) -> impl Iterator<Item = &mut Table> {
        self.tables.values_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(name: &str) -> TableSchema {
        TableSchema::builder(name).pk("id").build().unwrap()
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create_table(schema("a")).unwrap();
        c.create_table(schema("b")).unwrap();
        assert!(c.has_table("a"));
        assert_eq!(c.table("a").unwrap().id(), 0);
        assert_eq!(c.table("b").unwrap().id(), 1);
        assert_eq!(c.table_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table(schema("a")).unwrap();
        assert!(matches!(
            c.create_table(schema("a")),
            Err(StorageError::AlreadyExists(_))
        ));
    }

    #[test]
    fn unknown_table_error() {
        let c = Catalog::new();
        assert!(matches!(
            c.table("ghost"),
            Err(StorageError::UnknownTable(_))
        ));
    }
}
