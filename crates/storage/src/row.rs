//! Rows and row identities.

use crate::value::Value;
use std::fmt;

/// Internal identity of a stored row (heap slot number).
///
/// Stable for the lifetime of the row; never reused within a table's
/// lifetime so undo logs and triggers can refer to rows unambiguously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rid:{}", self.0)
    }
}

/// A single tuple: one value per schema column, in declaration order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Creates a row from its column values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The values, in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to the values (used by UPDATE execution).
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// The value at column position `i`, or NULL if out of range.
    ///
    /// Out-of-range access returns NULL rather than panicking because
    /// projection lists are validated before execution; a miss here means a
    /// ragged literal row in tests.
    pub fn get(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.values.get(i).unwrap_or(&NULL)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True if the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Consumes the row, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Approximate in-memory footprint, used by the buffer-pool model and
    /// the cache's memory accounting.
    pub fn byte_size(&self) -> usize {
        8 + self.values.iter().map(Value::byte_size).sum::<usize>()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Builds a [`Row`] from a list of values convertible to [`Value`].
///
/// ```
/// use genie_storage::row;
/// let r = row![1i64, "alice", true];
/// assert_eq!(r.arity(), 3);
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_out_of_range_is_null() {
        let r = Row::new(vec![Value::Int(1)]);
        assert_eq!(r.get(0), &Value::Int(1));
        assert!(r.get(5).is_null());
    }

    #[test]
    fn row_macro_converts() {
        let r = row![42i64, "bob", false];
        assert_eq!(r.get(0), &Value::Int(42));
        assert_eq!(r.get(1), &Value::Text("bob".into()));
        assert_eq!(r.get(2), &Value::Bool(false));
    }

    #[test]
    fn display_renders_tuple() {
        let r = row![1i64, "x"];
        assert_eq!(r.to_string(), "(1, 'x')");
    }

    #[test]
    fn byte_size_is_positive() {
        assert!(Row::default().byte_size() > 0);
        assert!(row![1i64].byte_size() > Row::default().byte_size());
    }

    #[test]
    fn from_iterator_collects() {
        let r: Row = (0..3).map(Value::Int).collect();
        assert_eq!(r.arity(), 3);
    }
}
