//! The sharded row/table lock manager behind multi-writer concurrency.
//!
//! Transactions follow strict two-phase locking over *logical* resources:
//! per-`(table, pk)` exclusive row locks for pk-targeted writes,
//! table-level locks for everything coarser (shared for scans,
//! intent-exclusive alongside row locks, exclusive for non-pk-targeted
//! writes). The engine's internal mutex remains only a short-duration
//! *latch* protecting the physical data structures; it is never held
//! while waiting for a lock here, so statement execution from many
//! threads interleaves at lock granularity.
//!
//! Conflicting requests block on the owning shard's condvar. Every
//! blocked request registers its waits-for edges in a global wait-for
//! graph; when an edge insertion closes a cycle, the *youngest* member of
//! the cycle (largest [`TxnId`] — transaction ids are allocated
//! monotonically, so the largest id has done the least work) is chosen as
//! the deadlock victim and its pending acquisition fails with
//! [`StorageError::Deadlock`]. The caller rolls the victim back; every
//! other cycle member proceeds.
//!
//! # Fair FIFO waiter queues
//!
//! Grants are *fair*: each resource keeps a FIFO queue of blocked
//! requests, and a new request — even a non-blocking `try_acquire` — is
//! refused while an earlier-queued request it conflicts with is still
//! waiting. Without the queue, a table-exclusive escalation could starve
//! forever behind an endless stream of mutually-compatible
//! intent-exclusive holders: each IX would be granted against holders
//! only, keeping the table busy so the X never got in. With the queue,
//! the X's arrival cuts the line — later IX requesters queue up behind
//! it, the in-flight IX holders drain, and the X proceeds. One
//! exception: a transaction that already holds any lock on the resource
//! jumps the queue (lock *upgrades* such as Shared → IntentExclusive
//! must not wait behind a queued stranger, which would manufacture
//! deadlocks); genuine upgrade deadlocks are still caught by the
//! wait-for graph, because blocked requests list earlier incompatible
//! waiters among their blockers.
//!
//! # Example
//!
//! ```
//! use genie_storage::lockmgr::{LockManager, LockMode};
//! use genie_storage::Value;
//!
//! let mgr = LockManager::new();
//! // Txn 1 write-locks row 7 of `wall_posts`; txn 2 can still lock row 8.
//! mgr.acquire(1, "wall_posts", Some(&Value::Int(7)), LockMode::Exclusive)
//!     .unwrap();
//! mgr.acquire(2, "wall_posts", Some(&Value::Int(8)), LockMode::Exclusive)
//!     .unwrap();
//! assert!(mgr.try_acquire(2, "wall_posts", Some(&Value::Int(7)), LockMode::Exclusive).is_none());
//! mgr.release_all(1);
//! assert!(mgr.try_acquire(2, "wall_posts", Some(&Value::Int(7)), LockMode::Exclusive).is_some());
//! mgr.release_all(2);
//! ```

use crate::error::{Result, StorageError};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Transaction identifier; allocated monotonically by the engine, so
/// ordering doubles as transaction age (larger = younger).
pub type TxnId = u64;

/// Number of independently-latched lock-table shards. Resources hash to
/// a shard by table name and pk, so unrelated hot rows do not contend on
/// one mutex.
const SHARDS: usize = 16;

/// Backstop poll interval while blocked: cross-shard victim
/// notifications are best-effort, so waiters re-check their state at
/// this cadence even without a wakeup.
const WAIT_TICK: Duration = Duration::from_millis(2);

/// Requested lock strength. Row-level requests (`pk = Some(..)`) only
/// ever use [`LockMode::Exclusive`]; table-level requests use all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockMode {
    /// Shared: concurrent with other shared and intent holders' rows —
    /// taken table-wide by scans so they never observe in-flight writes.
    Shared,
    /// Intent-exclusive: the holder writes individual rows (which it
    /// row-locks); compatible with other intent writers, conflicts with
    /// whole-table shared or exclusive use.
    IntentExclusive,
    /// Exclusive: sole access (non-pk-targeted write statements).
    Exclusive,
}

impl LockMode {
    /// Table-level compatibility matrix (`self` held vs `other`
    /// requested). Row-level locks are always exclusive–exclusive.
    fn compatible(self, other: LockMode) -> bool {
        use LockMode::{Exclusive, IntentExclusive, Shared};
        match (self, other) {
            (Shared, Shared) | (IntentExclusive, IntentExclusive) => true,
            (Exclusive, _) | (_, Exclusive) => false,
            (Shared, IntentExclusive) | (IntentExclusive, Shared) => false,
        }
    }
}

/// One lockable resource: a whole table (`pk == None`) or one row.
type Target = (String, Option<Value>);

#[derive(Default)]
struct Shard {
    /// Resource -> current holders. A transaction may hold several modes
    /// on one resource (e.g. `Shared` from a scan plus
    /// `IntentExclusive` from a later write) — each is kept.
    holders: BTreeMap<Target, Vec<(TxnId, LockMode)>>,
    /// Resource -> blocked requests in arrival order (the fairness
    /// queue). Entries carry a globally increasing sequence number; a
    /// request conflicts with every earlier-queued incompatible entry,
    /// so a stream of compatible holders cannot starve a queued
    /// escalation.
    waiters: BTreeMap<Target, Vec<(u64, TxnId, LockMode)>>,
}

impl Shard {
    /// True when `tid` holds any mode on `target` (upgrade requests jump
    /// the fairness queue).
    fn holds_any(&self, target: &Target, tid: TxnId) -> bool {
        self.holders
            .get(target)
            .is_some_and(|hs| hs.iter().any(|(t, _)| *t == tid))
    }

    /// Other transactions queued before `before_seq` (or at all, when
    /// `None`) whose requested mode conflicts with `mode`.
    fn queued_blockers(
        &self,
        target: &Target,
        tid: TxnId,
        mode: LockMode,
        before_seq: Option<u64>,
    ) -> Vec<TxnId> {
        let mut out = Vec::new();
        if let Some(q) = self.waiters.get(target) {
            for (seq, t, m) in q {
                if before_seq.is_some_and(|s| *seq >= s) {
                    break; // queue is in seq order
                }
                if *t != tid && !m.compatible(mode) && !out.contains(t) {
                    out.push(*t);
                }
            }
        }
        out
    }

    fn dequeue(&mut self, target: &Target, seq: u64) {
        if let Some(q) = self.waiters.get_mut(target) {
            q.retain(|(s, _, _)| *s != seq);
            if q.is_empty() {
                self.waiters.remove(target);
            }
        }
    }
}

#[derive(Default)]
struct WaitGraph {
    /// waiter -> the holders it is blocked on (rebuilt every wait round).
    edges: HashMap<TxnId, BTreeSet<TxnId>>,
    /// Transactions chosen as deadlock victims; their pending
    /// acquisition fails on the next wakeup.
    victims: HashSet<TxnId>,
}

impl WaitGraph {
    /// True if `from` can reach `to` over waits-for edges.
    fn reaches(&self, from: TxnId, to: TxnId) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == to {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = self.edges.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Collects the members of the cycle through `start` (assuming
    /// `reaches(h, start)` held for some already-inserted edge).
    fn cycle_members(&self, start: TxnId) -> Vec<TxnId> {
        // Every node on a path start -> ... -> start is a member; gather
        // nodes reachable from start that can reach start back.
        let mut reachable = HashSet::new();
        let mut stack = vec![start];
        while let Some(t) = stack.pop() {
            if !reachable.insert(t) {
                continue;
            }
            if let Some(next) = self.edges.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        reachable
            .into_iter()
            .filter(|&t| self.reaches(t, start))
            .collect()
    }
}

/// Point-in-time lock-manager counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Acquisitions granted without blocking.
    pub immediate_grants: u64,
    /// Acquisitions that blocked at least once before being granted.
    pub waits: u64,
    /// Deadlock victims aborted.
    pub deadlocks: u64,
}

/// Point-in-time *latch* counters — the physical-structure layer below
/// the logical locks above. The engine's latch hierarchy is a catalog
/// read-write latch over per-table read-write latches (see
/// `docs/ARCHITECTURE.md`); a "wait" here means an acquisition found the
/// latch held in a conflicting mode and had to block. Statements on
/// disjoint tables never conflict on table latches, which the
/// `concurrency_audit` disjoint-mix gate asserts as zero
/// `table_read_waits + table_write_waits`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatchStats {
    /// Catalog read-latch acquisitions that blocked (behind DDL, vacuum,
    /// or an escalated trigger-firing commit).
    pub catalog_read_waits: u64,
    /// Catalog write-latch acquisitions that blocked (DDL / vacuum /
    /// escalated commits waiting for statements to drain).
    pub catalog_write_waits: u64,
    /// Per-table read-latch acquisitions that blocked behind a writer.
    pub table_read_waits: u64,
    /// Per-table write-latch acquisitions that blocked.
    pub table_write_waits: u64,
}

impl LatchStats {
    /// Total blocked latch acquisitions across both levels.
    pub fn total_waits(&self) -> u64 {
        self.catalog_read_waits
            + self.catalog_write_waits
            + self.table_read_waits
            + self.table_write_waits
    }

    /// Blocked per-table latch acquisitions only — the disjoint-table
    /// scaling gate (catalog-level waits from vacuum or DDL are counted
    /// separately and do not indicate cross-table interference).
    pub fn table_waits(&self) -> u64 {
        self.table_read_waits + self.table_write_waits
    }
}

/// Live atomic counters behind [`LatchStats`]. Independent atomics so
/// the uncontended latch fast path (a single `try_read`/`try_write`)
/// never funnels through a statistics mutex.
#[derive(Debug, Default)]
pub struct LatchCounters {
    catalog_read_waits: AtomicU64,
    catalog_write_waits: AtomicU64,
    table_read_waits: AtomicU64,
    table_write_waits: AtomicU64,
}

impl LatchCounters {
    /// Records one blocked catalog read-latch acquisition.
    pub fn note_catalog_read_wait(&self) {
        self.catalog_read_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one blocked catalog write-latch acquisition.
    pub fn note_catalog_write_wait(&self) {
        self.catalog_write_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one blocked table read-latch acquisition.
    pub fn note_table_read_wait(&self) {
        self.table_read_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one blocked table write-latch acquisition.
    pub fn note_table_write_wait(&self) {
        self.table_write_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> LatchStats {
        LatchStats {
            catalog_read_waits: self.catalog_read_waits.load(Ordering::Relaxed),
            catalog_write_waits: self.catalog_write_waits.load(Ordering::Relaxed),
            table_read_waits: self.table_read_waits.load(Ordering::Relaxed),
            table_write_waits: self.table_write_waits.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters (between warm-up and measurement).
    pub fn reset(&self) {
        self.catalog_read_waits.store(0, Ordering::Relaxed);
        self.catalog_write_waits.store(0, Ordering::Relaxed);
        self.table_read_waits.store(0, Ordering::Relaxed);
        self.table_write_waits.store(0, Ordering::Relaxed);
    }
}

/// The engine-wide lock manager. One instance per [`crate::Database`];
/// see the module docs for the protocol. Counters are independent
/// atomics so the grant fast path never funnels all shards through one
/// statistics mutex.
pub struct LockManager {
    shards: Vec<(Mutex<Shard>, Condvar)>,
    graph: Mutex<WaitGraph>,
    /// Arrival order for the per-resource fairness queues.
    next_seq: AtomicU64,
    immediate_grants: AtomicU64,
    waits: AtomicU64,
    deadlocks: AtomicU64,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new()
    }
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager")
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Folds a resource into its shard index. `Value` carries floats, so it
/// cannot derive `Hash`; fold the discriminating bits manually.
fn shard_of(table: &str, pk: Option<&Value>) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for b in table.bytes() {
        mix(u64::from(b));
    }
    match pk {
        None => mix(0),
        Some(Value::Null) => mix(1),
        Some(Value::Int(i)) => mix(*i as u64 ^ 2),
        Some(Value::Float(f)) => mix(f.to_bits() ^ 3),
        Some(Value::Bool(b)) => mix(u64::from(*b) ^ 4),
        Some(Value::Timestamp(t)) => mix(*t as u64 ^ 5),
        Some(Value::Text(s)) => {
            for b in s.bytes() {
                mix(u64::from(b) ^ 6);
            }
        }
    }
    (h as usize) % SHARDS
}

impl LockManager {
    /// Creates an empty lock manager.
    pub fn new() -> Self {
        LockManager {
            shards: (0..SHARDS).map(|_| Default::default()).collect(),
            graph: Mutex::new(WaitGraph::default()),
            next_seq: AtomicU64::new(0),
            immediate_grants: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            deadlocks: AtomicU64::new(0),
        }
    }

    /// Non-blocking acquisition: `Some(())` if granted immediately,
    /// `None` on conflict (nothing is recorded in the wait graph).
    /// Respects the fairness queue: a request that conflicts with an
    /// already-queued waiter is refused even when the current holders
    /// would admit it, so the fast path cannot starve a queued
    /// escalation. Upgrades (the transaction already holds a mode on
    /// the resource) check holders only.
    pub fn try_acquire(
        &self,
        tid: TxnId,
        table: &str,
        pk: Option<&Value>,
        mode: LockMode,
    ) -> Option<()> {
        let (shard, _) = &self.shards[shard_of(table, pk)];
        let mut s = shard.lock().unwrap();
        let target: Target = (table.to_owned(), pk.cloned());
        let fair =
            s.holds_any(&target, tid) || s.queued_blockers(&target, tid, mode, None).is_empty();
        if fair && Self::conflicts(&s, &target, tid, mode).is_empty() {
            Self::grant(&mut s, target, tid, mode);
            self.immediate_grants.fetch_add(1, Ordering::Relaxed);
            Some(())
        } else {
            None
        }
    }

    /// Blocking acquisition under deadlock detection and FIFO fairness:
    /// the first refusal enqueues the request on the resource's waiter
    /// queue, later conflicting requests wait behind it, and it is
    /// granted once neither the holders nor any *earlier-queued* waiter
    /// conflicts.
    ///
    /// # Errors
    ///
    /// [`StorageError::Deadlock`] when this transaction is chosen as the
    /// victim of a waits-for cycle. The caller must roll the transaction
    /// back (which releases its locks and unblocks the cycle).
    pub fn acquire(
        &self,
        tid: TxnId,
        table: &str,
        pk: Option<&Value>,
        mode: LockMode,
    ) -> Result<()> {
        let (shard, cv) = &self.shards[shard_of(table, pk)];
        let target: Target = (table.to_owned(), pk.cloned());
        let mut s = shard.lock().unwrap();
        let mut waited = false;
        // Sequence number of this request's queue entry, once blocked.
        let mut my_seq: Option<u64> = None;
        loop {
            let mut blockers = Self::conflicts(&s, &target, tid, mode);
            // Upgrades jump the queue (waiting behind a stranger while
            // holding a lock the stranger needs would manufacture
            // deadlocks); everything else also waits for earlier queued
            // incompatible requests.
            if !s.holds_any(&target, tid) {
                for t in s.queued_blockers(&target, tid, mode, my_seq) {
                    if !blockers.contains(&t) {
                        blockers.push(t);
                    }
                }
            }
            if blockers.is_empty() {
                if let Some(seq) = my_seq {
                    s.dequeue(&target, seq);
                }
                Self::grant(&mut s, target, tid, mode);
                let mut g = self.graph.lock().unwrap();
                g.edges.remove(&tid);
                // A victim mark that raced with the grant is void: the
                // cycle resolved without this transaction aborting.
                g.victims.remove(&tid);
                drop(g);
                drop(s);
                if waited {
                    self.waits.fetch_add(1, Ordering::Relaxed);
                    // Our queue entry may have been the only thing
                    // refusing requests that are compatible with the
                    // holders; let them re-check.
                    cv.notify_all();
                } else {
                    self.immediate_grants.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(());
            }
            waited = true;
            if my_seq.is_none() && !s.holds_any(&target, tid) {
                let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                s.waiters
                    .entry(target.clone())
                    .or_default()
                    .push((seq, tid, mode));
                my_seq = Some(seq);
            }
            // Record who we wait for and look for a cycle through us.
            {
                let mut g = self.graph.lock().unwrap();
                if g.victims.remove(&tid) {
                    g.edges.remove(&tid);
                    if let Some(seq) = my_seq {
                        s.dequeue(&target, seq);
                    }
                    drop(s);
                    self.deadlocks.fetch_add(1, Ordering::Relaxed);
                    // Our departure may unblock queued requests.
                    cv.notify_all();
                    return Err(StorageError::Deadlock {
                        table: table.to_owned(),
                    });
                }
                g.edges.insert(tid, blockers.iter().copied().collect());
                if blockers.iter().any(|&b| g.reaches(b, tid)) {
                    let victim = g
                        .cycle_members(tid)
                        .into_iter()
                        .max()
                        .expect("cycle is non-empty");
                    if victim == tid {
                        g.edges.remove(&tid);
                        if let Some(seq) = my_seq {
                            s.dequeue(&target, seq);
                        }
                        drop(s);
                        self.deadlocks.fetch_add(1, Ordering::Relaxed);
                        cv.notify_all();
                        return Err(StorageError::Deadlock {
                            table: table.to_owned(),
                        });
                    }
                    g.victims.insert(victim);
                    drop(g);
                    // The victim may be parked on any shard; poke all.
                    self.notify_all_shards();
                }
            }
            // Park until a release (or the poll backstop) and re-check.
            let (guard, _) = cv.wait_timeout(s, WAIT_TICK).unwrap();
            s = guard;
        }
    }

    /// Releases exactly the given resources for `tid`, notifying only
    /// the affected shards — the cheap path for statement-duration
    /// (autocommit) locks, whose exact set the engine knows. The
    /// wait-graph needs no cleanup: a transaction releasing was granted,
    /// which already removed its edges.
    pub fn release_resources<'a>(
        &self,
        tid: TxnId,
        targets: impl IntoIterator<Item = (&'a str, Option<&'a Value>)>,
    ) {
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        for (table, pk) in targets {
            let idx = shard_of(table, pk);
            let target: Target = (table.to_owned(), pk.cloned());
            let mut s = self.shards[idx].0.lock().unwrap();
            if let Some(hs) = s.holders.get_mut(&target) {
                hs.retain(|(t, _)| *t != tid);
                if hs.is_empty() {
                    s.holders.remove(&target);
                }
            }
            touched.insert(idx);
        }
        for idx in touched {
            self.shards[idx].1.notify_all();
        }
    }

    /// Clears any wait-graph residue for `tid` (stale edges or a victim
    /// mark that raced a grant). O(1); pairs with
    /// [`LockManager::release_resources`] for transactions whose exact
    /// lock set the caller tracked.
    pub fn clear_waiter(&self, tid: TxnId) {
        let mut g = self.graph.lock().unwrap();
        g.edges.remove(&tid);
        g.victims.remove(&tid);
    }

    /// Releases every lock `tid` holds and clears its wait-graph state
    /// (the 2PL shrinking phase — called once, at commit or rollback).
    pub fn release_all(&self, tid: TxnId) {
        for (shard, _) in &self.shards {
            let mut s = shard.lock().unwrap();
            s.holders.retain(|_, hs| {
                hs.retain(|(t, _)| *t != tid);
                !hs.is_empty()
            });
        }
        let mut g = self.graph.lock().unwrap();
        g.edges.remove(&tid);
        g.victims.remove(&tid);
        drop(g);
        self.notify_all_shards();
    }

    /// Counters since construction (or the last [`LockManager::reset_stats`]).
    pub fn stats(&self) -> LockStats {
        LockStats {
            immediate_grants: self.immediate_grants.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters.
    pub fn reset_stats(&self) {
        self.immediate_grants.store(0, Ordering::Relaxed);
        self.waits.store(0, Ordering::Relaxed);
        self.deadlocks.store(0, Ordering::Relaxed);
    }

    /// Number of resources currently locked (diagnostics).
    pub fn locked_resources(&self) -> usize {
        self.shards
            .iter()
            .map(|(s, _)| s.lock().unwrap().holders.len())
            .sum()
    }

    fn notify_all_shards(&self) {
        for (_, cv) in &self.shards {
            cv.notify_all();
        }
    }

    /// Other transactions holding `target` in a mode incompatible with
    /// `(tid, mode)`. A transaction never conflicts with itself, so lock
    /// upgrades (Shared -> IntentExclusive on one table) only wait for
    /// *other* holders.
    fn conflicts(s: &Shard, target: &Target, tid: TxnId, mode: LockMode) -> Vec<TxnId> {
        let mut out = Vec::new();
        if let Some(hs) = s.holders.get(target) {
            for (t, m) in hs {
                if *t != tid && !m.compatible(mode) && !out.contains(t) {
                    out.push(*t);
                }
            }
        }
        out
    }

    fn grant(s: &mut Shard, target: Target, tid: TxnId, mode: LockMode) {
        let hs = s.holders.entry(target).or_default();
        if !hs.iter().any(|(t, m)| *t == tid && *m == mode) {
            hs.push((tid, mode));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn row_locks_on_distinct_rows_do_not_conflict() {
        let m = LockManager::new();
        m.acquire(1, "t", Some(&Value::Int(1)), LockMode::Exclusive)
            .unwrap();
        m.acquire(2, "t", Some(&Value::Int(2)), LockMode::Exclusive)
            .unwrap();
        assert!(m
            .try_acquire(2, "t", Some(&Value::Int(1)), LockMode::Exclusive)
            .is_none());
        m.release_all(1);
        m.release_all(2);
        assert_eq!(m.locked_resources(), 0);
    }

    #[test]
    fn intent_writers_share_a_table_but_scans_exclude_them() {
        let m = LockManager::new();
        m.acquire(1, "t", None, LockMode::IntentExclusive).unwrap();
        m.acquire(2, "t", None, LockMode::IntentExclusive).unwrap();
        assert!(m.try_acquire(3, "t", None, LockMode::Shared).is_none());
        m.release_all(1);
        assert!(m.try_acquire(3, "t", None, LockMode::Shared).is_none());
        m.release_all(2);
        assert!(m.try_acquire(3, "t", None, LockMode::Shared).is_some());
        m.release_all(3);
    }

    #[test]
    fn shared_scans_coexist() {
        let m = LockManager::new();
        m.acquire(1, "t", None, LockMode::Shared).unwrap();
        m.acquire(2, "t", None, LockMode::Shared).unwrap();
        assert!(m.try_acquire(3, "t", None, LockMode::Exclusive).is_none());
        m.release_all(1);
        m.release_all(2);
        m.release_all(3);
    }

    #[test]
    fn upgrade_does_not_self_conflict() {
        let m = LockManager::new();
        m.acquire(1, "t", None, LockMode::Shared).unwrap();
        // Same txn escalates to intent-exclusive: no self-deadlock.
        m.acquire(1, "t", None, LockMode::IntentExclusive).unwrap();
        m.release_all(1);
    }

    #[test]
    fn blocking_acquire_wakes_on_release() {
        let m = Arc::new(LockManager::new());
        m.acquire(1, "t", Some(&Value::Int(7)), LockMode::Exclusive)
            .unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            m2.acquire(2, "t", Some(&Value::Int(7)), LockMode::Exclusive)
                .unwrap();
            m2.release_all(2);
        });
        std::thread::sleep(Duration::from_millis(5));
        m.release_all(1);
        h.join().unwrap();
        assert!(m.stats().waits >= 1);
    }

    #[test]
    fn deadlock_aborts_exactly_the_youngest_victim() {
        let m = Arc::new(LockManager::new());
        m.acquire(1, "t", Some(&Value::Int(1)), LockMode::Exclusive)
            .unwrap();
        m.acquire(2, "t", Some(&Value::Int(2)), LockMode::Exclusive)
            .unwrap();
        // Txn 2 (younger) wants row 1 — blocks behind txn 1.
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            let r = m2.acquire(2, "t", Some(&Value::Int(1)), LockMode::Exclusive);
            if r.is_err() {
                m2.release_all(2);
            }
            r
        });
        std::thread::sleep(Duration::from_millis(5));
        // Txn 1 now wants row 2 — closes the cycle. Youngest (2) dies.
        let r1 = m.acquire(1, "t", Some(&Value::Int(2)), LockMode::Exclusive);
        let r2 = h.join().unwrap();
        assert!(r1.is_ok(), "older txn survives: {r1:?}");
        assert!(
            matches!(r2, Err(StorageError::Deadlock { .. })),
            "younger txn is the victim: {r2:?}"
        );
        m.release_all(1);
        assert_eq!(m.stats().deadlocks, 1);
        assert_eq!(m.locked_resources(), 0);
    }

    #[test]
    fn queued_escalation_cannot_be_starved_by_compatible_stream() {
        // Txn 1 holds IX. Txn 2 requests table-X and blocks (queued).
        // Without the fairness queue, txn 3's IX — compatible with txn
        // 1's IX — would be granted immediately, and an endless stream
        // of such IX holders would starve the X forever. With the
        // queue, txn 3 is refused while the X waits.
        let m = Arc::new(LockManager::new());
        m.acquire(1, "t", None, LockMode::IntentExclusive).unwrap();
        let m2 = Arc::clone(&m);
        let h = std::thread::spawn(move || {
            m2.acquire(2, "t", None, LockMode::Exclusive).unwrap();
            m2.release_all(2);
        });
        // Wait until the X request is queued.
        for _ in 0..1000 {
            let queued = m.shards.iter().any(|(s, _)| {
                s.lock()
                    .unwrap()
                    .waiters
                    .values()
                    .any(|q| q.iter().any(|(_, t, _)| *t == 2))
            });
            if queued {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // The fast path must now refuse a compatible IX: it would jump
        // the queued X.
        assert!(
            m.try_acquire(3, "t", None, LockMode::IntentExclusive)
                .is_none(),
            "IX must queue behind the waiting X, not starve it"
        );
        // Upgrades by an existing holder still jump the queue.
        assert!(m
            .try_acquire(1, "t", None, LockMode::IntentExclusive)
            .is_some());
        m.release_all(1);
        h.join().unwrap();
        // Once the X drained, the IX stream proceeds again.
        assert!(m
            .try_acquire(3, "t", None, LockMode::IntentExclusive)
            .is_some());
        m.release_all(3);
        assert_eq!(m.locked_resources(), 0);
    }

    #[test]
    fn blocking_requests_are_granted_fifo() {
        // Holder S; queue X (txn 2) then S (txn 3). The later S is
        // incompatible with the queued X, so it must not overtake it:
        // txn 3 finishes only after txn 2 got (and released) the lock.
        let m = Arc::new(LockManager::new());
        m.acquire(1, "t", None, LockMode::Shared).unwrap();
        let m2 = Arc::clone(&m);
        let x_order = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let xo2 = Arc::clone(&x_order);
        let h2 = std::thread::spawn(move || {
            m2.acquire(2, "t", None, LockMode::Exclusive).unwrap();
            xo2.store(2, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            m2.release_all(2);
        });
        // Ensure txn 2 is queued before txn 3 arrives.
        for _ in 0..1000 {
            let queued = m.shards.iter().any(|(s, _)| {
                s.lock()
                    .unwrap()
                    .waiters
                    .values()
                    .any(|q| q.iter().any(|(_, t, _)| *t == 2))
            });
            if queued {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let m3 = Arc::clone(&m);
        let xo3 = Arc::clone(&x_order);
        let h3 = std::thread::spawn(move || {
            m3.acquire(3, "t", None, LockMode::Shared).unwrap();
            let first = xo3.load(Ordering::SeqCst);
            m3.release_all(3);
            first
        });
        std::thread::sleep(Duration::from_millis(5));
        m.release_all(1); // X's turn first, then the S
        h2.join().unwrap();
        let seen_by_s = h3.join().unwrap();
        assert_eq!(seen_by_s, 2, "the queued X ran before the later S");
        assert_eq!(m.locked_resources(), 0);
    }

    #[test]
    fn stats_reset() {
        let m = LockManager::new();
        m.acquire(1, "t", None, LockMode::Shared).unwrap();
        assert_eq!(m.stats().immediate_grants, 1);
        m.reset_stats();
        assert_eq!(m.stats(), LockStats::default());
        m.release_all(1);
    }
}
