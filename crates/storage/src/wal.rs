//! Durable write-ahead logging: the append-only redo log, group commit,
//! fuzzy checkpoints, and the crash-recovery log scan.
//!
//! # Log format
//!
//! A durable database owns a directory containing numbered log
//! *segments* (`wal-00000001.log`, `wal-00000002.log`, …) plus at most
//! one checkpoint snapshot (`checkpoint.ckpt`). Segments are append-only
//! sequences of framed records:
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//!
//! The payload's first byte is the record kind: `1` = COMMIT (commit
//! epoch + the transaction's net coalesced row changes), `2` = CREATE
//! TABLE (full schema), `3` = CREATE INDEX. Everything is encoded with a
//! small self-contained binary codec (little-endian integers,
//! length-prefixed strings) — see [`WalRecord`].
//!
//! # Group commit
//!
//! Committers never write the log themselves. Under the engine's epoch
//! mutex they `Wal::enqueue` their sealed record (pure memory: frame +
//! checksum + queue push), then — after releasing every latch — park in
//! `Wal::wait_durable`. The first parked committer becomes the
//! *leader*: it drains the whole pending queue, writes the batch with a
//! single `write` + `fdatasync`, and wakes every member. N concurrent
//! committers therefore pay ~1 sync, not N. `SyncPolicy::PerCommit`
//! keeps the same protocol but drains one record per sync — the
//! baseline the `exp_wal` bench compares against.
//!
//! # Checkpoints and truncation
//!
//! A fuzzy checkpoint rotates to a fresh segment **first**, then reads
//! the checkpoint epoch `C` under the epoch mutex (so every record that
//! could have reached a sealed segment has epoch ≤ `C`), pins `C`
//! against vacuum, captures each table's rows visible at `C` one table
//! latch at a time, atomically replaces `checkpoint.ckpt`
//! (tmp + fsync + rename + dir fsync), and only then deletes the sealed
//! segments. A crash at any point leaves either the old checkpoint with
//! all segments or the new checkpoint with a strict suffix — never a
//! state recovery cannot replay.
//!
//! # Recovery
//!
//! `read_log` loads the checkpoint image and scans the segments in
//! order, stopping at the first torn or corrupt frame (short header,
//! implausible length, checksum mismatch, undecodable payload): that
//! point is the crash frontier, and `cleanup_log` truncates it plus
//! every later segment. `Database::open_with_recovery` then replays
//! COMMIT records in dense epoch order on top of the checkpoint image.
//! In-flight transactions never reach the log (only COMMIT serializes
//! changes), so they are discarded by construction.

use crate::error::{Result, StorageError};
use crate::exec::RowChange;
use crate::row::Row;
use crate::schema::{ColumnDef, IndexDef, TableSchema};
use crate::trigger::TriggerEvent;
use crate::value::{Value, ValueType};
use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Bytes of frame header preceding every record payload.
const FRAME_HEADER: usize = 8;
/// Upper bound on a single record payload; anything larger in a length
/// prefix is treated as corruption.
const MAX_RECORD_BYTES: usize = 1 << 28;
/// Segment file name prefix/suffix: `wal-<seq:08>.log`.
const SEGMENT_PREFIX: &str = "wal-";
const SEGMENT_SUFFIX: &str = ".log";
/// Checkpoint snapshot file, atomically replaced via rename.
const CHECKPOINT_FILE: &str = "checkpoint.ckpt";
const CHECKPOINT_TMP: &str = "checkpoint.tmp";
/// Magic prefix of the checkpoint file.
const CHECKPOINT_MAGIC: &[u8; 8] = b"GWCKPT01";

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-driven
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE 802.3 polynomial) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            put_u64(buf, *i as u64);
        }
        Value::Float(f) => {
            buf.push(2);
            put_u64(buf, f.to_bits());
        }
        Value::Text(s) => {
            buf.push(3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.push(4);
            buf.push(u8::from(*b));
        }
        Value::Timestamp(t) => {
            buf.push(5);
            put_u64(buf, *t as u64);
        }
    }
}

/// Encodes one row (arity + values). Also used by
/// `Database::content_digest` so digests and log bytes agree.
pub(crate) fn put_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.arity() as u32);
    for v in row.values() {
        put_value(buf, v);
    }
}

fn value_type_tag(ty: ValueType) -> u8 {
    match ty {
        ValueType::Int => 0,
        ValueType::Float => 1,
        ValueType::Text => 2,
        ValueType::Bool => 3,
        ValueType::Timestamp => 4,
    }
}

/// Encodes a full table schema (columns, primary key, foreign keys,
/// page hint). Also used by `Database::content_digest`.
pub(crate) fn put_schema(buf: &mut Vec<u8>, schema: &TableSchema) {
    put_str(buf, schema.name());
    put_str(buf, schema.primary_key());
    put_u32(buf, schema.columns().len() as u32);
    for c in schema.columns() {
        put_str(buf, &c.name);
        buf.push(value_type_tag(c.ty));
        buf.push(u8::from(c.not_null));
        buf.push(u8::from(c.unique));
    }
    put_u32(buf, schema.foreign_keys().len() as u32);
    for fk in schema.foreign_keys() {
        put_str(buf, &fk.name);
        put_str(buf, &fk.column);
        put_str(buf, &fk.ref_table);
        put_str(buf, &fk.ref_column);
    }
    put_u64(buf, schema.rows_per_page_hint as u64);
}

/// Encodes an index definition. Also used by `Database::content_digest`.
pub(crate) fn put_index_def(buf: &mut Vec<u8>, def: &IndexDef) {
    put_str(buf, &def.name);
    put_u32(buf, def.columns.len() as u32);
    for c in &def.columns {
        put_str(buf, c);
    }
    buf.push(u8::from(def.unique));
}

fn event_tag(ev: TriggerEvent) -> u8 {
    match ev {
        TriggerEvent::Insert => 0,
        TriggerEvent::Update => 1,
        TriggerEvent::Delete => 2,
    }
}

fn put_opt_row(buf: &mut Vec<u8>, row: Option<&Row>) {
    match row {
        None => buf.push(0),
        Some(r) => {
            buf.push(1);
            put_row(buf, r);
        }
    }
}

/// Decode cursor over a record payload.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn bad(msg: impl std::fmt::Display) -> StorageError {
    StorageError::Wal(format!("log decode: {msg}"))
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(bad("payload ends early"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str_(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| bad("non-UTF-8 string"))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.u64()? as i64),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => Value::Text(self.str_()?),
            4 => Value::Bool(self.u8()? != 0),
            5 => Value::Timestamp(self.u64()? as i64),
            t => return Err(bad(format!("unknown value tag {t}"))),
        })
    }

    fn row(&mut self) -> Result<Row> {
        let n = self.u32()? as usize;
        if n > MAX_RECORD_BYTES {
            return Err(bad("implausible row arity"));
        }
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(self.value()?);
        }
        Ok(Row::new(vals))
    }

    fn opt_row(&mut self) -> Result<Option<Row>> {
        Ok(match self.u8()? {
            0 => None,
            1 => Some(self.row()?),
            t => return Err(bad(format!("unknown option tag {t}"))),
        })
    }

    fn event(&mut self) -> Result<TriggerEvent> {
        Ok(match self.u8()? {
            0 => TriggerEvent::Insert,
            1 => TriggerEvent::Update,
            2 => TriggerEvent::Delete,
            t => return Err(bad(format!("unknown event tag {t}"))),
        })
    }

    fn value_type(&mut self) -> Result<ValueType> {
        Ok(match self.u8()? {
            0 => ValueType::Int,
            1 => ValueType::Float,
            2 => ValueType::Text,
            3 => ValueType::Bool,
            4 => ValueType::Timestamp,
            t => return Err(bad(format!("unknown type tag {t}"))),
        })
    }

    fn schema(&mut self) -> Result<TableSchema> {
        let name = self.str_()?;
        let pk = self.str_()?;
        let ncols = self.u32()? as usize;
        let mut b = TableSchema::builder(&name);
        for _ in 0..ncols {
            let cname = self.str_()?;
            let ty = self.value_type()?;
            let not_null = self.u8()? != 0;
            let unique = self.u8()? != 0;
            b = b.column(ColumnDef {
                name: cname,
                ty,
                not_null,
                unique,
            });
        }
        b = b.primary_key(pk);
        let nfks = self.u32()? as usize;
        let mut fk_names = Vec::with_capacity(nfks);
        for _ in 0..nfks {
            let fk_name = self.str_()?;
            let column = self.str_()?;
            let ref_table = self.str_()?;
            let ref_column = self.str_()?;
            fk_names.push(fk_name);
            b = b.foreign_key(column, ref_table, ref_column);
        }
        let hint = self.u64()? as usize;
        let schema = b.rows_per_page(hint).build()?;
        // The builder re-derives constraint names; every schema in this
        // system is builder-built, so they must round-trip exactly.
        for (fk, logged) in schema.foreign_keys().iter().zip(&fk_names) {
            if fk.name != *logged {
                return Err(bad(format!(
                    "foreign-key name {:?} does not round-trip (logged {logged:?})",
                    fk.name
                )));
            }
        }
        Ok(schema)
    }

    fn index_def(&mut self) -> Result<IndexDef> {
        let name = self.str_()?;
        let ncols = self.u32()? as usize;
        if ncols > MAX_RECORD_BYTES {
            return Err(bad("implausible index arity"));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            columns.push(self.str_()?);
        }
        let unique = self.u8()? != 0;
        Ok(IndexDef {
            name,
            columns,
            unique,
        })
    }

    fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes after record"))
        }
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One decoded log record.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// A committed transaction: its epoch plus the net coalesced row
    /// changes (one per touched `(table, pk)`).
    Commit {
        /// Commit epoch stamped into the MVCC version chains.
        epoch: u64,
        /// Net redo set, in first-touch order.
        changes: Vec<RowChange>,
    },
    /// `CREATE TABLE` with the full validated schema.
    CreateTable(TableSchema),
    /// `CREATE INDEX` on an existing table.
    CreateIndex {
        /// Owning table.
        table: String,
        /// The index definition.
        def: IndexDef,
    },
}

/// Serializes a COMMIT record payload with an epoch **placeholder** —
/// the epoch is only known once the commit holds the epoch mutex, where
/// [`patch_epoch`] stamps it in. Encoding the (potentially large)
/// change set happens before any global serialization point.
pub(crate) fn encode_commit(changes: &[RowChange]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + changes.len() * 32);
    buf.push(1);
    put_u64(&mut buf, 0); // epoch placeholder, see patch_epoch
    put_u32(&mut buf, changes.len() as u32);
    for ch in changes {
        put_str(&mut buf, &ch.table);
        buf.push(event_tag(ch.event));
        put_opt_row(&mut buf, ch.old.as_ref());
        put_opt_row(&mut buf, ch.new.as_ref());
    }
    buf
}

/// Stamps the allocated commit epoch into a payload produced by
/// [`encode_commit`]. Must run before the payload is framed (the frame
/// checksum covers the epoch).
pub(crate) fn patch_epoch(payload: &mut [u8], epoch: u64) {
    payload[1..9].copy_from_slice(&epoch.to_le_bytes());
}

/// Serializes a CREATE TABLE record payload.
pub(crate) fn encode_create_table(schema: &TableSchema) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    buf.push(2);
    put_schema(&mut buf, schema);
    buf
}

/// Serializes a CREATE INDEX record payload.
pub(crate) fn encode_create_index(table: &str, def: &IndexDef) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.push(3);
    put_str(&mut buf, table);
    put_index_def(&mut buf, def);
    buf
}

/// Decodes one record payload (the bytes covered by the frame CRC).
pub(crate) fn decode_record(payload: &[u8]) -> Result<WalRecord> {
    let mut c = Cur::new(payload);
    let rec = match c.u8()? {
        1 => {
            let epoch = c.u64()?;
            let n = c.u32()? as usize;
            if n > MAX_RECORD_BYTES {
                return Err(bad("implausible change count"));
            }
            let mut changes = Vec::with_capacity(n);
            for _ in 0..n {
                let table = c.str_()?;
                let event = c.event()?;
                let old = c.opt_row()?;
                let new = c.opt_row()?;
                changes.push(RowChange {
                    table,
                    event,
                    old,
                    new,
                });
            }
            WalRecord::Commit { epoch, changes }
        }
        2 => WalRecord::CreateTable(c.schema()?),
        3 => {
            let table = c.str_()?;
            let def = c.index_def()?;
            WalRecord::CreateIndex { table, def }
        }
        k => return Err(bad(format!("unknown record kind {k}"))),
    };
    c.done()?;
    Ok(rec)
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------------
// Configuration, tickets, stats
// ---------------------------------------------------------------------------

/// How the log writer turns pending records into durable bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Group commit: the leader drains the whole pending queue and pays
    /// one append + one sync for the batch (the default).
    #[default]
    GroupCommit,
    /// One append + one sync per record — the naive baseline that pays
    /// a full sync for every committer.
    PerCommit,
}

/// Tuning for a durable database's log writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Batch policy for the log writer.
    pub sync: SyncPolicy,
    /// Extra microseconds the group-commit leader holds the batch open
    /// before draining, letting concurrent committers join. `0` drains
    /// immediately (arrivals during the in-flight sync still batch).
    pub group_window_us: u64,
    /// Simulated device flush latency in microseconds, slept after every
    /// sync. In-memory page caches (tmpfs, dev laptops) make `fdatasync`
    /// nearly free, which would hide exactly the cost group commit
    /// amortizes; benches set this to a realistic device latency so the
    /// group-vs-per-commit comparison measures the protocol.
    pub sync_delay_us: u64,
    /// Take an automatic fuzzy checkpoint every this many commits
    /// (`0` = manual checkpoints only).
    pub checkpoint_every: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            sync: SyncPolicy::GroupCommit,
            group_window_us: 0,
            sync_delay_us: 0,
            checkpoint_every: 4096,
        }
    }
}

/// Handle for one enqueued record: redeemed via `Wal::wait_durable`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WalTicket {
    /// Queue sequence number (durable once `flushed_seq >= seq`).
    pub seq: u64,
    /// Commit epoch carried by the record (`0` for DDL records).
    pub epoch: u64,
    /// Framed bytes this record added to the log.
    pub bytes: u64,
}

/// Cumulative log-writer counters (see `Wal::stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (commits + DDL).
    pub records: u64,
    /// Framed bytes appended.
    pub bytes: u64,
    /// Physical sync operations performed.
    pub syncs: u64,
    /// Leader batches written (for group commit, `records / batches` is
    /// the achieved amortization).
    pub batches: u64,
    /// Segment rotations.
    pub rotations: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Sealed segments deleted by checkpoint truncation.
    pub segments_deleted: u64,
}

/// Result of one completed checkpoint (see `Database::checkpoint`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Epoch the snapshot captures; recovery replays only later epochs.
    pub epoch: u64,
    /// Bytes written to the checkpoint file.
    pub bytes: u64,
    /// Sealed log segments deleted after the snapshot landed.
    pub segments_deleted: u64,
    /// Tables captured.
    pub tables: u64,
    /// Total rows captured.
    pub rows: u64,
}

#[derive(Debug, Default)]
struct Counters {
    records: AtomicU64,
    bytes: AtomicU64,
    syncs: AtomicU64,
    batches: AtomicU64,
    rotations: AtomicU64,
    checkpoints: AtomicU64,
    segments_deleted: AtomicU64,
    commits_since_checkpoint: AtomicU64,
}

// ---------------------------------------------------------------------------
// The log writer
// ---------------------------------------------------------------------------

struct WalInner {
    file: File,
    segment_seq: u64,
    /// Framed records awaiting the next leader, in seq order.
    pending: VecDeque<(u64, Vec<u8>)>,
    /// Next ticket seq to hand out (starts at 1).
    next_seq: u64,
    /// Every seq `<= flushed_seq` is durable.
    flushed_seq: u64,
    /// A leader is currently writing a batch outside the mutex.
    leader: bool,
    /// Set on the first I/O error; the log is fail-stop from then on.
    poisoned: Option<String>,
}

/// The append-only redo log attached to a durable `Database`.
///
/// All engine interaction goes through three calls: `Wal::enqueue`
/// (under the epoch mutex, no I/O), `Wal::wait_durable` (after latch
/// release; group-commit leader election happens here), and the
/// checkpoint protocol (`rotate` + checkpoint file + truncation).
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    inner: Mutex<WalInner>,
    flushed_cv: Condvar,
    counters: Counters,
    /// Serializes checkpoints (auto checkpoints skip when contended).
    checkpoint_lock: Mutex<()>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> StorageError {
    StorageError::Wal(format!("{what} {}: {e}", path.display()))
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{seq:08}{SEGMENT_SUFFIX}"))
}

fn open_segment(dir: &Path, seq: u64) -> Result<File> {
    let path = segment_path(dir, seq);
    OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(&path)
        .map_err(|e| io_err("create log segment", &path, &e))
}

fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("sync log directory", dir, &e))
}

/// Lists log segments in `dir`, sorted by sequence number.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err("read log directory", dir, &e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read log directory", dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(SEGMENT_PREFIX)
            .and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
        else {
            continue;
        };
        if let Ok(seq) = stem.parse::<u64>() {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable();
    Ok(out)
}

impl Wal {
    /// Starts a **fresh** log in `dir` (created if absent).
    ///
    /// # Errors
    ///
    /// [`StorageError::Wal`] if `dir` already contains segments or a
    /// checkpoint — an existing log must go through recovery, never be
    /// silently overwritten.
    pub(crate) fn create(dir: &Path, cfg: WalConfig) -> Result<Wal> {
        fs::create_dir_all(dir).map_err(|e| io_err("create log directory", dir, &e))?;
        if !list_segments(dir)?.is_empty() || dir.join(CHECKPOINT_FILE).exists() {
            return Err(StorageError::Wal(format!(
                "directory {} already contains a write-ahead log; \
                 open it with Database::open_with_recovery",
                dir.display()
            )));
        }
        Wal::with_segment(dir.to_path_buf(), cfg, 1)
    }

    /// Resumes logging after recovery, appending to a brand-new segment
    /// `seq` (one past the highest segment the scan saw).
    pub(crate) fn resume(dir: &Path, cfg: WalConfig, seq: u64) -> Result<Wal> {
        fs::create_dir_all(dir).map_err(|e| io_err("create log directory", dir, &e))?;
        Wal::with_segment(dir.to_path_buf(), cfg, seq)
    }

    fn with_segment(dir: PathBuf, cfg: WalConfig, seq: u64) -> Result<Wal> {
        let file = open_segment(&dir, seq)?;
        sync_dir(&dir)?;
        Ok(Wal {
            dir,
            cfg,
            inner: Mutex::new(WalInner {
                file,
                segment_seq: seq,
                pending: VecDeque::new(),
                next_seq: 1,
                flushed_seq: 0,
                leader: false,
                poisoned: None,
            }),
            flushed_cv: Condvar::new(),
            counters: Counters::default(),
            checkpoint_lock: Mutex::new(()),
        })
    }

    /// The log directory.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Queues a sealed record (framed + checksummed) for the next
    /// leader. Pure memory — called under the engine's epoch mutex, so
    /// it must never block on I/O. Records with `epoch > 0` count
    /// toward the automatic-checkpoint cadence.
    pub(crate) fn enqueue(&self, payload: Vec<u8>, epoch: u64) -> Result<WalTicket> {
        if payload.len() > MAX_RECORD_BYTES {
            return Err(StorageError::Wal(format!(
                "record payload of {} bytes exceeds the {MAX_RECORD_BYTES}-byte limit",
                payload.len()
            )));
        }
        let framed = frame(&payload);
        let bytes = framed.len() as u64;
        let mut inner = self.inner.lock().expect("wal mutex");
        if let Some(msg) = &inner.poisoned {
            return Err(StorageError::Wal(msg.clone()));
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.pending.push_back((seq, framed));
        self.counters.records.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes.fetch_add(bytes, Ordering::Relaxed);
        if epoch > 0 {
            self.counters
                .commits_since_checkpoint
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(WalTicket { seq, epoch, bytes })
    }

    /// Parks until the ticket's record is durable, electing this thread
    /// as the batch leader when none is active. Returns the number of
    /// physical syncs this thread performed (0 when another leader
    /// flushed the record — the amortization group commit exists for).
    ///
    /// # Errors
    ///
    /// [`StorageError::Wal`] once the log is poisoned by an I/O error;
    /// the record may or may not be durable, and no later record will
    /// ever be.
    pub(crate) fn wait_durable(&self, ticket: &WalTicket) -> Result<u64> {
        let mut syncs = 0u64;
        let mut inner = self.inner.lock().expect("wal mutex");
        loop {
            if let Some(msg) = &inner.poisoned {
                return Err(StorageError::Wal(msg.clone()));
            }
            if inner.flushed_seq >= ticket.seq {
                return Ok(syncs);
            }
            if inner.leader {
                inner = self.flushed_cv.wait(inner).expect("wal cv");
                continue;
            }
            // Become the leader for the next batch.
            inner.leader = true;
            if self.cfg.sync == SyncPolicy::GroupCommit && self.cfg.group_window_us > 0 {
                // Hold the leader slot (not the mutex) open briefly so
                // concurrent committers can join this batch.
                drop(inner);
                std::thread::sleep(Duration::from_micros(self.cfg.group_window_us));
                inner = self.inner.lock().expect("wal mutex");
            }
            let batch: Vec<(u64, Vec<u8>)> = match self.cfg.sync {
                SyncPolicy::GroupCommit => inner.pending.drain(..).collect(),
                SyncPolicy::PerCommit => inner.pending.pop_front().into_iter().collect(),
            };
            let Some(&(high, _)) = batch.last() else {
                // Unreachable: an unflushed ticket implies a pending
                // record whenever no leader is in flight.
                inner.leader = false;
                self.flushed_cv.notify_all();
                continue;
            };
            let file = match inner.file.try_clone() {
                Ok(f) => f,
                Err(e) => return Err(self.poison(inner, format!("clone log handle: {e}"))),
            };
            drop(inner);

            let mut buf = Vec::with_capacity(batch.iter().map(|(_, b)| b.len()).sum());
            for (_, b) in &batch {
                buf.extend_from_slice(b);
            }
            let io = (&file).write_all(&buf).and_then(|()| file.sync_data());
            if self.cfg.sync_delay_us > 0 {
                std::thread::sleep(Duration::from_micros(self.cfg.sync_delay_us));
            }

            inner = self.inner.lock().expect("wal mutex");
            match io {
                Ok(()) => {
                    inner.flushed_seq = high;
                    inner.leader = false;
                    syncs += 1;
                    self.counters.syncs.fetch_add(1, Ordering::Relaxed);
                    self.counters.batches.fetch_add(1, Ordering::Relaxed);
                    self.flushed_cv.notify_all();
                }
                Err(e) => {
                    return Err(self.poison(inner, format!("append to log segment: {e}")));
                }
            }
        }
    }

    /// Poisons the log (fail-stop): every current and future caller
    /// gets the same error, and no commit after the failed batch will
    /// ever be reported durable.
    fn poison(&self, mut inner: MutexGuard<'_, WalInner>, msg: String) -> StorageError {
        inner.leader = false;
        inner.poisoned = Some(msg.clone());
        self.flushed_cv.notify_all();
        StorageError::Wal(msg)
    }

    /// Drains and syncs everything currently enqueued.
    pub(crate) fn flush_all(&self) -> Result<u64> {
        let seq = {
            let inner = self.inner.lock().expect("wal mutex");
            inner.next_seq - 1
        };
        self.wait_durable(&WalTicket {
            seq,
            epoch: 0,
            bytes: 0,
        })
    }

    /// Seals the current segment (sync) and switches appends to a fresh
    /// one. Waits out any in-flight leader so no write can land in the
    /// sealed segment afterwards. Returns the new segment's seq.
    pub(crate) fn rotate(&self) -> Result<u64> {
        let mut inner = self.inner.lock().expect("wal mutex");
        while inner.leader {
            inner = self.flushed_cv.wait(inner).expect("wal cv");
        }
        if let Some(msg) = &inner.poisoned {
            return Err(StorageError::Wal(msg.clone()));
        }
        if let Err(e) = inner.file.sync_data() {
            return Err(self.poison(inner, format!("sync segment before rotate: {e}")));
        }
        let seq = inner.segment_seq + 1;
        let file = match open_segment(&self.dir, seq) {
            Ok(f) => f,
            Err(e) => return Err(self.poison(inner, e.to_string())),
        };
        inner.file = file;
        inner.segment_seq = seq;
        drop(inner);
        sync_dir(&self.dir)?;
        self.counters.rotations.fetch_add(1, Ordering::Relaxed);
        Ok(seq)
    }

    /// Deletes every sealed segment with seq `< below` (checkpoint
    /// truncation). Returns how many were removed.
    pub(crate) fn delete_segments_below(&self, below: u64) -> Result<u64> {
        let mut deleted = 0u64;
        for (seq, path) in list_segments(&self.dir)? {
            if seq < below {
                fs::remove_file(&path).map_err(|e| io_err("delete sealed segment", &path, &e))?;
                deleted += 1;
            }
        }
        if deleted > 0 {
            sync_dir(&self.dir)?;
            self.counters
                .segments_deleted
                .fetch_add(deleted, Ordering::Relaxed);
        }
        Ok(deleted)
    }

    /// Whether the automatic-checkpoint commit budget is spent.
    pub(crate) fn checkpoint_due(&self) -> bool {
        self.cfg.checkpoint_every > 0
            && self
                .counters
                .commits_since_checkpoint
                .load(Ordering::Relaxed)
                >= self.cfg.checkpoint_every
    }

    /// Claims the checkpoint slot, resetting the auto-checkpoint budget.
    /// Non-blocking callers (the auto path) get `None` when another
    /// checkpoint is already running.
    pub(crate) fn checkpoint_begin(&self, blocking: bool) -> Option<MutexGuard<'_, ()>> {
        let guard = if blocking {
            Some(self.checkpoint_lock.lock().expect("checkpoint mutex"))
        } else {
            self.checkpoint_lock.try_lock().ok()
        };
        if guard.is_some() {
            self.counters
                .commits_since_checkpoint
                .store(0, Ordering::Relaxed);
        }
        guard
    }

    /// Marks a completed checkpoint in the counters.
    pub(crate) fn note_checkpoint(&self) {
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the cumulative log-writer counters.
    pub(crate) fn stats(&self) -> WalStats {
        WalStats {
            records: self.counters.records.load(Ordering::Relaxed),
            bytes: self.counters.bytes.load(Ordering::Relaxed),
            syncs: self.counters.syncs.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            rotations: self.counters.rotations.load(Ordering::Relaxed),
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            segments_deleted: self.counters.segments_deleted.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint snapshot file
// ---------------------------------------------------------------------------

/// One table inside a checkpoint image.
#[derive(Debug, Clone)]
pub(crate) struct TableImage {
    /// Full schema (implicit unique indexes are re-derived from it).
    pub schema: TableSchema,
    /// Secondary indexes present at capture time.
    pub indexes: Vec<IndexDef>,
    /// Rows visible at the checkpoint epoch, in primary-key order.
    pub rows: Vec<Row>,
}

/// A decoded checkpoint snapshot: the database state at `epoch`.
#[derive(Debug, Clone)]
pub(crate) struct CheckpointImage {
    /// Every commit with epoch `<= epoch` is folded into the rows.
    pub epoch: u64,
    /// Captured tables, in catalog (sorted-name) order.
    pub tables: Vec<TableImage>,
}

/// Atomically replaces the checkpoint file in `dir` with `image`
/// (tmp + fsync + rename + dir fsync). Returns bytes written.
pub(crate) fn write_checkpoint(dir: &Path, image: &CheckpointImage) -> Result<u64> {
    let mut payload = Vec::with_capacity(4096);
    put_u64(&mut payload, image.epoch);
    put_u32(&mut payload, image.tables.len() as u32);
    for t in &image.tables {
        put_schema(&mut payload, &t.schema);
        put_u32(&mut payload, t.indexes.len() as u32);
        for def in &t.indexes {
            put_index_def(&mut payload, def);
        }
        put_u32(&mut payload, t.rows.len() as u32);
        for row in &t.rows {
            put_row(&mut payload, row);
        }
    }
    let mut bytes = Vec::with_capacity(CHECKPOINT_MAGIC.len() + FRAME_HEADER + payload.len());
    bytes.extend_from_slice(CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&frame(&payload));

    let tmp = dir.join(CHECKPOINT_TMP);
    let path = dir.join(CHECKPOINT_FILE);
    let mut f = File::create(&tmp).map_err(|e| io_err("create checkpoint tmp", &tmp, &e))?;
    f.write_all(&bytes)
        .and_then(|()| f.sync_data())
        .map_err(|e| io_err("write checkpoint tmp", &tmp, &e))?;
    drop(f);
    fs::rename(&tmp, &path).map_err(|e| io_err("publish checkpoint", &path, &e))?;
    sync_dir(dir)?;
    Ok(bytes.len() as u64)
}

/// Loads the checkpoint file from `dir`, if one exists.
///
/// # Errors
///
/// A present-but-corrupt checkpoint is a hard error: the rename
/// protocol never leaves one behind, so corruption here means the
/// store itself is damaged and silent fallback would lose data.
pub(crate) fn read_checkpoint(dir: &Path) -> Result<Option<CheckpointImage>> {
    let path = dir.join(CHECKPOINT_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read checkpoint", &path, &e)),
    };
    let rest = bytes
        .strip_prefix(CHECKPOINT_MAGIC.as_slice())
        .ok_or_else(|| bad("checkpoint magic mismatch"))?;
    if rest.len() < FRAME_HEADER {
        return Err(bad("checkpoint frame truncated"));
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    let payload = rest
        .get(FRAME_HEADER..FRAME_HEADER + len)
        .ok_or_else(|| bad("checkpoint payload truncated"))?;
    if crc32(payload) != crc {
        return Err(bad("checkpoint checksum mismatch"));
    }
    let mut c = Cur::new(payload);
    let epoch = c.u64()?;
    let ntables = c.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let schema = c.schema()?;
        let nidx = c.u32()? as usize;
        let mut indexes = Vec::with_capacity(nidx);
        for _ in 0..nidx {
            indexes.push(c.index_def()?);
        }
        let nrows = c.u32()? as usize;
        let mut rows = Vec::with_capacity(nrows.min(1 << 20));
        for _ in 0..nrows {
            rows.push(c.row()?);
        }
        tables.push(TableImage {
            schema,
            indexes,
            rows,
        });
    }
    c.done()?;
    Ok(Some(CheckpointImage { epoch, tables }))
}

// ---------------------------------------------------------------------------
// Recovery scan
// ---------------------------------------------------------------------------

/// The first invalid byte of the log: the crash frontier.
#[derive(Debug, Clone)]
pub(crate) struct TornTail {
    /// Segment containing the torn/corrupt frame.
    pub segment: u64,
    /// That segment's path.
    pub path: PathBuf,
    /// Byte offset of the first invalid frame; the file is truncated
    /// here by `cleanup_log`.
    pub offset: u64,
    /// Human-readable corruption classification.
    pub reason: String,
    /// Later segments, unreachable past the frontier; deleted wholesale.
    pub drop_after: Vec<PathBuf>,
}

/// Everything `read_log` learned about a log directory.
#[derive(Debug)]
pub(crate) struct LogScan {
    /// Checkpoint image, when one exists.
    pub checkpoint: Option<CheckpointImage>,
    /// Valid records across all segments, in append order, stopping at
    /// the crash frontier.
    pub records: Vec<WalRecord>,
    /// The crash frontier, if the tail was torn or corrupt.
    pub truncate: Option<TornTail>,
    /// Segment seq the resumed log should append to (one past the
    /// highest existing segment).
    pub next_segment: u64,
    /// Segments visited.
    pub segments_scanned: u64,
    /// Bytes visited.
    pub bytes_scanned: u64,
}

fn parse_segment(bytes: &[u8]) -> (Vec<WalRecord>, Option<(u64, String)>) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos == bytes.len() {
            return (records, None);
        }
        if bytes.len() - pos < FRAME_HEADER {
            return (records, Some((pos as u64, "truncated frame header".into())));
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if len == 0 || len > MAX_RECORD_BYTES {
            return (
                records,
                Some((pos as u64, format!("implausible record length {len}"))),
            );
        }
        if bytes.len() - pos - FRAME_HEADER < len {
            return (records, Some((pos as u64, "truncated record body".into())));
        }
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
        if crc32(payload) != crc {
            return (records, Some((pos as u64, "checksum mismatch".into())));
        }
        match decode_record(payload) {
            Ok(r) => records.push(r),
            Err(e) => {
                return (
                    records,
                    Some((pos as u64, format!("undecodable record: {e}"))),
                )
            }
        }
        pos += FRAME_HEADER + len;
    }
}

/// Scans a log directory: checkpoint + every valid record up to the
/// crash frontier. Pure read — call `cleanup_log` to make the
/// truncation decision durable before resuming appends.
pub(crate) fn read_log(dir: &Path) -> Result<LogScan> {
    let checkpoint = read_checkpoint(dir)?;
    let segments = list_segments(dir)?;
    let mut scan = LogScan {
        checkpoint,
        records: Vec::new(),
        truncate: None,
        next_segment: segments.last().map_or(1, |(s, _)| s + 1),
        segments_scanned: 0,
        bytes_scanned: 0,
    };
    for (i, (seq, path)) in segments.iter().enumerate() {
        let bytes = fs::read(path).map_err(|e| io_err("read log segment", path, &e))?;
        scan.segments_scanned += 1;
        scan.bytes_scanned += bytes.len() as u64;
        let (records, stop) = parse_segment(&bytes);
        scan.records.extend(records);
        if let Some((offset, reason)) = stop {
            scan.truncate = Some(TornTail {
                segment: *seq,
                path: path.clone(),
                offset,
                reason,
                drop_after: segments[i + 1..].iter().map(|(_, p)| p.clone()).collect(),
            });
            break;
        }
    }
    Ok(scan)
}

/// Makes a scan's truncation decision durable: truncates the torn
/// segment at the crash frontier and deletes every later segment, so a
/// subsequent crash + re-recovery sees exactly the same prefix.
pub(crate) fn cleanup_log(scan: &LogScan) -> Result<()> {
    let Some(tail) = &scan.truncate else {
        return Ok(());
    };
    let f = OpenOptions::new()
        .write(true)
        .open(&tail.path)
        .map_err(|e| io_err("open torn segment", &tail.path, &e))?;
    f.set_len(tail.offset)
        .and_then(|()| f.sync_data())
        .map_err(|e| io_err("truncate torn segment", &tail.path, &e))?;
    for p in &tail.drop_after {
        fs::remove_file(p).map_err(|e| io_err("delete post-crash segment", p, &e))?;
    }
    if let Some(parent) = tail.path.parent() {
        sync_dir(parent)?;
    }
    Ok(())
}

/// What `Database::open_with_recovery` did to bring the store back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint image recovery started from (0 = none).
    pub checkpoint_epoch: u64,
    /// COMMIT records replayed on top of the checkpoint.
    pub replayed_commits: u64,
    /// COMMIT records skipped because the checkpoint already covered
    /// their epoch.
    pub skipped_commits: u64,
    /// DDL records applied (idempotently).
    pub ddl_records: u64,
    /// The recovered `commit_epoch`: every commit `<=` this survived,
    /// nothing later ever existed.
    pub recovered_epoch: u64,
    /// Log segments scanned.
    pub segments_scanned: u64,
    /// Log bytes scanned.
    pub bytes_scanned: u64,
    /// Where the log was cut, when the tail was torn or corrupt:
    /// `(segment seq, byte offset, reason)`.
    pub truncated: Option<(u64, u64, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    static TMP_SEQ: AtomicU32 = AtomicU32::new(0);

    /// Process-unique scratch directory (removed by `Scratch::drop`).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir = std::env::temp_dir().join(format!(
                "genie-wal-{tag}-{}-{}",
                std::process::id(),
                TMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_schema() -> TableSchema {
        TableSchema::builder("wall")
            .pk("post_id")
            .column(ColumnDef::new("user_id", ValueType::Int).not_null())
            .column(ColumnDef::new("slug", ValueType::Text).unique())
            .column(ColumnDef::new("score", ValueType::Float))
            .column(ColumnDef::new("hot", ValueType::Bool))
            .column(ColumnDef::new("at", ValueType::Timestamp).not_null())
            .foreign_key("user_id", "users", "id")
            .rows_per_page(32)
            .build()
            .unwrap()
    }

    fn sample_changes() -> Vec<RowChange> {
        let old = Row::new(vec![
            Value::Int(1),
            Value::Int(7),
            Value::Text("a".into()),
            Value::Float(1.5),
            Value::Bool(true),
            Value::Timestamp(99),
        ]);
        let new = Row::new(vec![
            Value::Int(1),
            Value::Int(7),
            Value::Text("b".into()),
            Value::Null,
            Value::Bool(false),
            Value::Timestamp(100),
        ]);
        vec![
            RowChange {
                table: "wall".into(),
                event: TriggerEvent::Insert,
                old: None,
                new: Some(new.clone()),
            },
            RowChange {
                table: "wall".into(),
                event: TriggerEvent::Update,
                old: Some(old.clone()),
                new: Some(new),
            },
            RowChange {
                table: "wall".into(),
                event: TriggerEvent::Delete,
                old: Some(old),
                new: None,
            },
        ]
    }

    #[test]
    fn crc32_matches_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn commit_record_roundtrips_through_codec() {
        let changes = sample_changes();
        let mut payload = encode_commit(&changes);
        patch_epoch(&mut payload, 42);
        match decode_record(&payload).unwrap() {
            WalRecord::Commit {
                epoch,
                changes: got,
            } => {
                assert_eq!(epoch, 42);
                assert_eq!(got.len(), changes.len());
                for (g, w) in got.iter().zip(&changes) {
                    assert_eq!(g.table, w.table);
                    assert_eq!(g.event, w.event);
                    assert_eq!(g.old, w.old);
                    assert_eq!(g.new, w.new);
                }
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn ddl_records_roundtrip_through_codec() {
        let schema = sample_schema();
        match decode_record(&encode_create_table(&schema)).unwrap() {
            WalRecord::CreateTable(got) => assert_eq!(got, schema),
            other => panic!("wrong record: {other:?}"),
        }
        let def = IndexDef {
            name: "wall_user".into(),
            columns: vec!["user_id".into(), "at".into()],
            unique: false,
        };
        match decode_record(&encode_create_index("wall", &def)).unwrap() {
            WalRecord::CreateIndex { table, def: got } => {
                assert_eq!(table, "wall");
                assert_eq!(got, def);
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[9, 1, 2, 3]).is_err());
        let mut payload = encode_commit(&sample_changes());
        patch_epoch(&mut payload, 1);
        payload.push(0); // trailing byte
        assert!(decode_record(&payload).is_err());
    }

    fn flush_records(wal: &Wal, payloads: &[Vec<u8>], epoch_base: u64) {
        for (i, p) in payloads.iter().enumerate() {
            let t = wal.enqueue(p.clone(), epoch_base + i as u64 + 1).unwrap();
            wal.wait_durable(&t).unwrap();
        }
    }

    fn commit_payload(epoch: u64) -> Vec<u8> {
        let mut p = encode_commit(&[]);
        patch_epoch(&mut p, epoch);
        p
    }

    #[test]
    fn scan_reads_back_appended_records_across_rotation() {
        let s = Scratch::new("scan");
        let wal = Wal::create(&s.0, WalConfig::default()).unwrap();
        flush_records(&wal, &[commit_payload(1), commit_payload(2)], 0);
        wal.rotate().unwrap();
        flush_records(&wal, &[commit_payload(3)], 2);

        let scan = read_log(&s.0).unwrap();
        assert!(scan.truncate.is_none());
        assert_eq!(scan.segments_scanned, 2);
        assert_eq!(scan.next_segment, 3);
        let epochs: Vec<u64> = scan
            .records
            .iter()
            .map(|r| match r {
                WalRecord::Commit { epoch, .. } => *epoch,
                other => panic!("wrong record: {other:?}"),
            })
            .collect();
        assert_eq!(epochs, vec![1, 2, 3]);
    }

    #[test]
    fn torn_tail_is_detected_and_cleanly_truncated() {
        let s = Scratch::new("torn");
        let wal = Wal::create(&s.0, WalConfig::default()).unwrap();
        flush_records(&wal, &[commit_payload(1), commit_payload(2)], 0);
        drop(wal);

        // Tear the tail mid-record: keep record 1 plus a few bytes.
        let seg = segment_path(&s.0, 1);
        let bytes = fs::read(&seg).unwrap();
        let first_len =
            FRAME_HEADER + u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len((first_len + 3) as u64).unwrap();
        drop(f);

        let scan = read_log(&s.0).unwrap();
        assert_eq!(scan.records.len(), 1);
        let tail = scan.truncate.as_ref().expect("torn tail detected");
        assert_eq!(tail.offset, first_len as u64);
        assert!(tail.reason.contains("truncated"));
        cleanup_log(&scan).unwrap();

        // After cleanup the log scans clean with the same prefix.
        let rescan = read_log(&s.0).unwrap();
        assert!(rescan.truncate.is_none());
        assert_eq!(rescan.records.len(), 1);
        assert_eq!(fs::metadata(&seg).unwrap().len(), first_len as u64);
    }

    #[test]
    fn corrupted_checksum_stops_the_scan_and_drops_later_segments() {
        let s = Scratch::new("crc");
        let wal = Wal::create(&s.0, WalConfig::default()).unwrap();
        flush_records(&wal, &[commit_payload(1), commit_payload(2)], 0);
        wal.rotate().unwrap();
        flush_records(&wal, &[commit_payload(3)], 2);
        drop(wal);

        // Flip one payload byte inside record 2 of segment 1.
        let seg = segment_path(&s.0, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let first_len =
            FRAME_HEADER + u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        bytes[first_len + FRAME_HEADER] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();

        let scan = read_log(&s.0).unwrap();
        assert_eq!(scan.records.len(), 1, "scan stops at the corrupt frame");
        let tail = scan.truncate.as_ref().unwrap();
        assert!(tail.reason.contains("checksum"));
        assert_eq!(tail.drop_after.len(), 1, "segment 2 is unreachable");
        cleanup_log(&scan).unwrap();
        assert!(!segment_path(&s.0, 2).exists());
    }

    #[test]
    fn truncated_length_prefix_is_a_torn_tail() {
        let s = Scratch::new("lenpfx");
        let wal = Wal::create(&s.0, WalConfig::default()).unwrap();
        flush_records(&wal, &[commit_payload(1)], 0);
        drop(wal);
        let seg = segment_path(&s.0, 1);
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[0x10, 0x00, 0x00]); // 3 bytes of a length prefix
        fs::write(&seg, &bytes).unwrap();
        let scan = read_log(&s.0).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.truncate.as_ref().unwrap().reason.contains("header"));
    }

    #[test]
    fn create_refuses_to_overwrite_an_existing_log() {
        let s = Scratch::new("exists");
        let wal = Wal::create(&s.0, WalConfig::default()).unwrap();
        drop(wal);
        let err = Wal::create(&s.0, WalConfig::default()).unwrap_err();
        assert!(err.to_string().contains("already contains"));
    }

    #[test]
    fn per_commit_policy_pays_one_sync_per_record() {
        let s = Scratch::new("percommit");
        let cfg = WalConfig {
            sync: SyncPolicy::PerCommit,
            ..WalConfig::default()
        };
        let wal = Wal::create(&s.0, cfg).unwrap();
        flush_records(
            &wal,
            &[commit_payload(1), commit_payload(2), commit_payload(3)],
            0,
        );
        let stats = wal.stats();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.syncs, 3, "per-commit: one sync each");
        assert_eq!(stats.batches, 3);
    }

    #[test]
    fn group_commit_batches_concurrent_committers() {
        let s = Scratch::new("group");
        let cfg = WalConfig {
            sync: SyncPolicy::GroupCommit,
            sync_delay_us: 500,
            ..WalConfig::default()
        };
        let wal = Arc::new(Wal::create(&s.0, cfg).unwrap());
        let threads = 8;
        let per_thread = 10;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    let mut syncs = 0;
                    for i in 0..per_thread {
                        let epoch = (t * per_thread + i + 1) as u64;
                        let ticket = wal.enqueue(commit_payload(epoch), epoch).unwrap();
                        syncs += wal.wait_durable(&ticket).unwrap();
                    }
                    syncs
                })
            })
            .collect();
        let total_syncs: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let stats = wal.stats();
        assert_eq!(stats.records, (threads * per_thread) as u64);
        assert_eq!(stats.syncs, total_syncs, "every sync is attributed");
        assert!(
            stats.syncs < stats.records,
            "8 contending writers must share at least one batch \
             ({} syncs for {} records)",
            stats.syncs,
            stats.records
        );
        // Every record is durable and scans back in order.
        let scan = read_log(&s.0).unwrap();
        assert!(scan.truncate.is_none());
        assert_eq!(scan.records.len(), threads * per_thread);
    }

    #[test]
    fn checkpoint_image_roundtrips_and_truncates_only_sealed_segments() {
        let s = Scratch::new("ckpt");
        let wal = Wal::create(&s.0, WalConfig::default()).unwrap();
        flush_records(&wal, &[commit_payload(1), commit_payload(2)], 0);

        // Checkpoint protocol: rotate first, then capture, then truncate.
        let new_seg = wal.rotate().unwrap();
        let image = CheckpointImage {
            epoch: 2,
            tables: vec![TableImage {
                schema: sample_schema(),
                indexes: vec![IndexDef {
                    name: "wall_user".into(),
                    columns: vec!["user_id".into()],
                    unique: false,
                }],
                rows: vec![Row::new(vec![
                    Value::Int(1),
                    Value::Int(7),
                    Value::Text("a".into()),
                    Value::Float(0.5),
                    Value::Bool(true),
                    Value::Timestamp(5),
                ])],
            }],
        };
        write_checkpoint(&s.0, &image).unwrap();
        let deleted = wal.delete_segments_below(new_seg).unwrap();
        assert_eq!(deleted, 1);

        // Records after the checkpoint land in the surviving segment.
        flush_records(&wal, &[commit_payload(3)], 2);

        let scan = read_log(&s.0).unwrap();
        let ck = scan.checkpoint.expect("checkpoint loaded");
        assert_eq!(ck.epoch, 2);
        assert_eq!(ck.tables.len(), 1);
        assert_eq!(ck.tables[0].schema, image.tables[0].schema);
        assert_eq!(ck.tables[0].indexes, image.tables[0].indexes);
        assert_eq!(ck.tables[0].rows, image.tables[0].rows);
        assert_eq!(
            scan.records.len(),
            1,
            "only the post-checkpoint record remains in the log"
        );
    }

    #[test]
    fn corrupt_checkpoint_is_a_hard_error() {
        let s = Scratch::new("badckpt");
        fs::create_dir_all(&s.0).unwrap();
        write_checkpoint(
            &s.0,
            &CheckpointImage {
                epoch: 1,
                tables: vec![],
            },
        )
        .unwrap();
        let path = s.0.join(CHECKPOINT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes[CHECKPOINT_MAGIC.len() + FRAME_HEADER] ^= 0xFF; // first payload byte
        fs::write(&path, &bytes).unwrap();
        assert!(read_checkpoint(&s.0).is_err());
    }

    #[test]
    fn auto_checkpoint_budget_counts_only_commits() {
        let s = Scratch::new("budget");
        let cfg = WalConfig {
            checkpoint_every: 2,
            ..WalConfig::default()
        };
        let wal = Wal::create(&s.0, cfg).unwrap();
        assert!(!wal.checkpoint_due());
        let t = wal
            .enqueue(encode_create_table(&sample_schema()), 0)
            .unwrap();
        wal.wait_durable(&t).unwrap();
        assert!(!wal.checkpoint_due(), "DDL does not spend the budget");
        flush_records(&wal, &[commit_payload(1), commit_payload(2)], 0);
        assert!(wal.checkpoint_due());
        let guard = wal.checkpoint_begin(false).expect("slot free");
        assert!(!wal.checkpoint_due(), "claiming the slot resets the budget");
        assert!(
            wal.checkpoint_begin(false).is_none(),
            "concurrent auto checkpoint skips"
        );
        drop(guard);
    }

    #[test]
    fn rotation_waits_for_inflight_leader_and_seals_the_segment() {
        let s = Scratch::new("rotseal");
        let cfg = WalConfig {
            sync_delay_us: 300,
            ..WalConfig::default()
        };
        let wal = Arc::new(Wal::create(&s.0, cfg).unwrap());
        let writer = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                for e in 1..=20u64 {
                    let t = wal.enqueue(commit_payload(e), e).unwrap();
                    wal.wait_durable(&t).unwrap();
                }
            })
        };
        for _ in 0..3 {
            wal.rotate().unwrap();
        }
        writer.join().unwrap();
        wal.flush_all().unwrap();
        let scan = read_log(&s.0).unwrap();
        assert!(scan.truncate.is_none(), "no record spans a rotation");
        assert_eq!(scan.records.len(), 20);
    }
}
