//! Per-statement cost reports.
//!
//! The engine executes functionally (in memory, instantly) but records what
//! a disk-backed DBMS would have done: rows scanned, index probes, buffer
//! pool hits/misses, WAL appends, trigger work. The benchmark harness feeds
//! these reports to a cost model which converts them into simulated service
//! time on contended resources — this is how the reproduction recreates the
//! paper's "NoCache is CPU-bound, cached cases are disk-bound" dynamics
//! without 2011 hardware.

use std::ops::AddAssign;

/// What one statement cost, in physical-operation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Rows visited by scans (sequential or via index postings).
    pub rows_scanned: u64,
    /// Rows produced to the client.
    pub rows_returned: u64,
    /// Rows inserted, updated, or deleted.
    pub rows_written: u64,
    /// B-tree probe operations (one per index lookup).
    pub index_probes: u64,
    /// Buffer-pool page hits (page already resident).
    pub page_hits: u64,
    /// Buffer-pool page misses (a disk read in a real system).
    pub page_misses: u64,
    /// Dirty pages written back on eviction (disk writes).
    pub page_writebacks: u64,
    /// WAL appends: one redo record per *writing* commit (one per write
    /// statement when autocommitted, one per transaction commit
    /// otherwise). Read-only commits and rolled-back transactions
    /// append nothing.
    pub wal_appends: u64,
    /// Framed bytes this commit's redo record added to the log —
    /// measured from the log writer, `0` without a durable log.
    pub wal_bytes: u64,
    /// Physical log syncs **this thread performed** while waiting for
    /// durability. Under group commit most committers ride a leader's
    /// batch and report `0`; the per-commit baseline reports `1` per
    /// writing commit. Summed across threads this equals the log
    /// writer's sync count exactly.
    pub wal_syncs: u64,
    /// Number of trigger bodies fired.
    pub triggers_fired: u64,
    /// Cache operations performed from inside trigger bodies.
    pub trigger_cache_ops: u64,
    /// Remote cache connections opened from inside trigger bodies — the
    /// dominant trigger overhead in the paper's §5.3 microbenchmark.
    pub trigger_connections: u64,
    /// Rows the trigger bodies themselves scanned when they queried the DB.
    pub trigger_rows_scanned: u64,
    /// Sort operations (ORDER BY without a usable index).
    pub sorts: u64,
    /// Rows fed into sorts.
    pub sort_rows: u64,
}

impl CostReport {
    /// An empty report.
    pub fn new() -> Self {
        CostReport::default()
    }

    /// Total page traffic (hits + misses).
    pub fn page_touches(&self) -> u64 {
        self.page_hits + self.page_misses
    }

    /// True if the statement performed no physical work (e.g. served
    /// entirely from cache at a higher layer).
    pub fn is_empty(&self) -> bool {
        *self == CostReport::default()
    }
}

impl AddAssign for CostReport {
    fn add_assign(&mut self, rhs: CostReport) {
        self.rows_scanned += rhs.rows_scanned;
        self.rows_returned += rhs.rows_returned;
        self.rows_written += rhs.rows_written;
        self.index_probes += rhs.index_probes;
        self.page_hits += rhs.page_hits;
        self.page_misses += rhs.page_misses;
        self.page_writebacks += rhs.page_writebacks;
        self.wal_appends += rhs.wal_appends;
        self.wal_bytes += rhs.wal_bytes;
        self.wal_syncs += rhs.wal_syncs;
        self.triggers_fired += rhs.triggers_fired;
        self.trigger_cache_ops += rhs.trigger_cache_ops;
        self.trigger_connections += rhs.trigger_connections;
        self.trigger_rows_scanned += rhs.trigger_rows_scanned;
        self.sorts += rhs.sorts;
        self.sort_rows += rhs.sort_rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = CostReport {
            rows_scanned: 2,
            page_misses: 1,
            ..Default::default()
        };
        a += CostReport {
            rows_scanned: 3,
            page_hits: 5,
            triggers_fired: 1,
            ..Default::default()
        };
        assert_eq!(a.rows_scanned, 5);
        assert_eq!(a.page_touches(), 6);
        assert_eq!(a.triggers_fired, 1);
    }

    #[test]
    fn default_is_empty() {
        assert!(CostReport::new().is_empty());
        let r = CostReport {
            wal_appends: 1,
            ..Default::default()
        };
        assert!(!r.is_empty());
    }
}
