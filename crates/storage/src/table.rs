//! Heap tables with B-tree secondary indexes and multi-version rows.
//!
//! Rows are stored in a `BTreeMap<RowId, Row>` heap ordered by insertion;
//! every table has an implicit unique index on its primary key plus any
//! number of secondary indexes (`BTreeMap<Vec<Value>, BTreeSet<RowId>>`).
//! All index maintenance happens inside the write methods, so the
//! executor can never leave an index stale.
//!
//! # Versioning (MVCC)
//!
//! The heap always holds the *newest* version of each row — committed,
//! or uncommitted by exactly one writer (writers serialize per row via
//! the engine's 2PL row locks). Two side structures carry history:
//!
//! * `meta`: the newest version's begin epoch and, while uncommitted,
//!   its writer transaction. A row with no entry is an ancient
//!   committed row (begin epoch 0) — vacuum collapses settled rows
//!   back to this zero-cost state.
//! * `history`: superseded committed versions, each valid over a
//!   half-open epoch interval `[begin, end)`; the interval end stays
//!   pending (attributed to the superseding writer) until that writer
//!   commits.
//!
//! Index and pk entries are **append-only with respect to version
//! churn**: a versioned update/delete adds entries for the new image but
//! keeps the old image's entries so snapshot scans can still find the
//! old version. Every snapshot read therefore re-checks that the version
//! it resolved actually carries the key the entry promised (stale
//! entries filter out, and a row that moved between two keys of one scan
//! can never be returned twice). [`Table::vacuum`] physically removes
//! entries once no live snapshot can reach their version. The
//! *unversioned* write methods ([`Table::insert`], [`Table::update`],
//! [`Table::delete`]) keep exact physical maintenance and no history —
//! they exist for direct single-threaded table use and tests; the engine
//! itself always goes through the `*_txn` variants.

use crate::error::{Result, StorageError};
use crate::lockmgr::TxnId;
use crate::row::{Row, RowId};
use crate::schema::{IndexDef, TableSchema};
use crate::stats::ColumnStats;
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};

/// A point-in-time read view: every read resolves the newest version
/// whose begin epoch is `<= epoch` and that was not yet superseded at
/// `epoch` — plus, when `writer` is set, that transaction's own
/// uncommitted writes. Obtained from the engine (transactions pin one at
/// BEGIN; autocommit statements use the latest committed epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Commit epoch this snapshot reads at (inclusive).
    pub epoch: u64,
    /// Transaction whose uncommitted writes are visible (its own).
    pub writer: Option<TxnId>,
}

impl Snapshot {
    /// True when `self` may see the uncommitted writes of `tid`.
    fn owns(&self, tid: TxnId) -> bool {
        self.writer == Some(tid)
    }
}

/// When a superseded version stopped being current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VersionEnd {
    /// Superseded by a version that committed at this epoch (the
    /// interval is `[begin, end)` — snapshots at `end` or later no
    /// longer see it).
    At(u64),
    /// Superseded by this still-uncommitted transaction: every snapshot
    /// except that writer's own still sees this version.
    Pending(TxnId),
}

/// One superseded committed row image.
#[derive(Debug, Clone)]
struct OldVersion {
    /// Commit epoch at which this image became current.
    begin: u64,
    /// When (and by whom) it stopped being current.
    end: VersionEnd,
    row: Row,
}

/// Version metadata for the newest (heap) image of a row. Absent meta
/// means "committed at epoch 0".
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    /// Commit epoch of the heap image; meaningless while `writer` is set.
    begin: u64,
    /// The transaction whose uncommitted write the heap image is.
    writer: Option<TxnId>,
}

/// Pending statistics deltas applied in a batch once this many queue
/// entries accumulate (or earlier: at statement/commit boundaries via
/// [`Table::flush_stats`], and lazily whenever the planner reads a
/// selectivity). Bounds both queue memory and estimate staleness.
const STAT_EPOCH: usize = 256;

/// Per-column statistics plus the epoch queue of not-yet-applied row
/// deltas. Behind a mutex so planner reads (`&Table`) can refresh lazily;
/// uncontended in practice — the engine serializes on the database lock.
#[derive(Debug)]
struct TableStats {
    cols: Vec<ColumnStats>,
    /// (added?, row image). An insert queues `(true, row)`, a delete
    /// `(false, row)`, an update one of each.
    pending: Vec<(bool, Row)>,
}

impl TableStats {
    /// Queues one delta. An exact inverse still in the queue cancels
    /// instead — a transaction that inserts then rolls back (undo delete),
    /// or churns the same row, never touches the sketches at all.
    fn queue(&mut self, add: bool, row: &Row) {
        if let Some(i) = self
            .pending
            .iter()
            .rposition(|(a, r)| *a != add && r == row)
        {
            self.pending.remove(i);
            return;
        }
        self.pending.push((add, row.clone()));
        if self.pending.len() >= STAT_EPOCH {
            self.apply_pending();
        }
    }

    fn apply_pending(&mut self) {
        for (add, row) in self.pending.drain(..) {
            for (s, v) in self.cols.iter_mut().zip(row.values()) {
                if add {
                    s.add(v);
                } else {
                    s.remove(v);
                }
            }
        }
    }
}

/// A live secondary index.
#[derive(Debug, Clone)]
pub struct Index {
    def: IndexDef,
    /// Column positions of the key, precomputed from the schema.
    key_pos: Vec<usize>,
    map: BTreeMap<Vec<Value>, BTreeSet<RowId>>,
}

impl Index {
    /// The index definition.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    fn key_of(&self, row: &Row) -> Vec<Value> {
        self.key_pos.iter().map(|&p| row.get(p).clone()).collect()
    }
}

/// Flattens per-key posting blocks into one rid list. `reverse` flips
/// the *key* order only: rows sharing an index key stay in rid (heap)
/// order, which is the tie order the executor's stable sort produces —
/// so ordered index scans and scan+sort return identical row sequences,
/// with or without the index.
fn flatten_key_blocks(blocks: Vec<Vec<RowId>>, reverse: bool) -> Vec<RowId> {
    let mut out = Vec::with_capacity(blocks.iter().map(Vec::len).sum());
    if reverse {
        for block in blocks.into_iter().rev() {
            out.extend(block);
        }
    } else {
        for block in blocks {
            out.extend(block);
        }
    }
    out
}

/// True when a `(lo, hi)` pair describes an empty interval —
/// `BTreeMap::range` panics on inverted bounds instead of yielding
/// nothing.
fn range_is_empty(lo: &std::ops::Bound<Value>, hi: &std::ops::Bound<Value>) -> bool {
    use std::ops::Bound as B;
    match (lo, hi) {
        (B::Included(a), B::Included(b)) => a > b,
        (B::Included(a), B::Excluded(b)) | (B::Excluded(a), B::Included(b)) => a >= b,
        (B::Excluded(a), B::Excluded(b)) => a >= b,
        (B::Unbounded, _) | (_, B::Unbounded) => false,
    }
}

/// A heap table plus its indexes.
#[derive(Debug)]
pub struct Table {
    schema: TableSchema,
    /// Dense id assigned by the catalog; keys buffer-pool pages.
    id: u32,
    rows: BTreeMap<RowId, Row>,
    next_rid: u64,
    /// Implicit unique index: pk value -> row ids that ever carried it
    /// (newest last). At most one is *live* at any snapshot; stale ids
    /// linger until [`Table::vacuum`] so older snapshots can still probe
    /// deleted or moved rows by primary key.
    pk_index: BTreeMap<Value, Vec<RowId>>,
    indexes: Vec<Index>,
    /// Version metadata for heap rows written since the last vacuum
    /// horizon; rows absent here are committed-at-epoch-0.
    meta: BTreeMap<RowId, RowMeta>,
    /// Superseded committed versions, oldest first per row.
    history: BTreeMap<RowId, Vec<OldVersion>>,
    /// Per-column statistics, parallel to the schema's column list. Row
    /// mutations queue deltas; the sketches/histograms refresh in epochs
    /// (queue overflow, statement/commit boundaries, planner reads)
    /// instead of on every row write.
    stats: Mutex<TableStats>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            schema: self.schema.clone(),
            id: self.id,
            rows: self.rows.clone(),
            next_rid: self.next_rid,
            pk_index: self.pk_index.clone(),
            indexes: self.indexes.clone(),
            meta: self.meta.clone(),
            history: self.history.clone(),
            stats: Mutex::new({
                let s = self.stats.lock();
                TableStats {
                    cols: s.cols.clone(),
                    pending: s.pending.clone(),
                }
            }),
        }
    }
}

impl Table {
    /// Creates an empty table with catalog id `id`.
    pub fn new(schema: TableSchema, id: u32) -> Self {
        let cols = schema
            .columns()
            .iter()
            .map(|c| ColumnStats::new(c.ty))
            .collect();
        Table {
            schema,
            id,
            rows: BTreeMap::new(),
            next_rid: 0,
            pk_index: BTreeMap::new(),
            indexes: Vec::new(),
            meta: BTreeMap::new(),
            history: BTreeMap::new(),
            stats: Mutex::new(TableStats {
                cols,
                pending: Vec::new(),
            }),
        }
    }

    fn stats_add(&mut self, row: &Row) {
        self.stats.get_mut().queue(true, row);
    }

    fn stats_remove(&mut self, row: &Row) {
        self.stats.get_mut().queue(false, row);
    }

    /// Applies every queued statistics delta now. The engine calls this at
    /// statement (autocommit) and commit boundaries, so estimates never
    /// lag committed data by more than one epoch. Takes `&self` — the
    /// queue lives behind its own mutex, so concurrent enqueuers (writer
    /// threads under their table latches) and lazy planner-side flushes
    /// never race.
    pub fn flush_stats(&self) {
        self.stats.lock().apply_pending();
    }

    /// Reads `column`'s statistics through `f`, refreshing queued deltas
    /// first (lazy epoch boundary), so the planner always sees numbers
    /// current as of the last mutation.
    pub fn with_column_stats<T>(
        &self,
        column: &str,
        f: impl FnOnce(&ColumnStats) -> T,
    ) -> Option<T> {
        let pos = self.schema.column_pos(column)?;
        let mut stats = self.stats.lock();
        if !stats.pending.is_empty() {
            stats.apply_pending();
        }
        stats.cols.get(pos).map(f)
    }

    /// Queued statistics deltas not yet folded into the estimators
    /// (diagnostics and tests).
    pub fn pending_stat_deltas(&self) -> usize {
        self.stats.lock().pending.len()
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The catalog id (used for buffer-pool page keys).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The heap page number a row lives on (model; see [`crate::bufferpool`]).
    pub fn page_of(&self, rid: RowId) -> u64 {
        rid.0 / self.schema.rows_per_page_hint as u64
    }

    /// Validates a row against the schema: arity, type compatibility
    /// (coercing where allowed), NOT NULL.
    ///
    /// # Errors
    ///
    /// Returns the specific constraint error; the row is not modified on
    /// failure.
    pub fn validate(&self, row: &Row) -> Result<Row> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::TypeMismatch {
                column: format!("{}(*)", self.schema.name()),
                expected: format!("{} columns", self.schema.arity()),
                got: format!("{} columns", row.arity()),
            });
        }
        let mut out = Vec::with_capacity(row.arity());
        for (col, v) in self.schema.columns().iter().zip(row.values()) {
            if v.is_null() {
                if col.not_null {
                    return Err(StorageError::NullViolation(format!(
                        "{}.{}",
                        self.schema.name(),
                        col.name
                    )));
                }
                out.push(Value::Null);
                continue;
            }
            match v.coerce_to(col.ty) {
                Some(cv) => out.push(cv),
                None => {
                    return Err(StorageError::TypeMismatch {
                        column: format!("{}.{}", self.schema.name(), col.name),
                        expected: col.ty.to_string(),
                        got: format!("{v}"),
                    })
                }
            }
        }
        Ok(Row::new(out))
    }

    /// The live (heap-current) row id carrying `pk`, if any. Stale
    /// entries from version churn are skipped by re-checking the heap
    /// image actually has that key.
    fn live_pk(&self, pk: &Value) -> Option<RowId> {
        let pos = self.schema.primary_key_pos();
        self.pk_index
            .get(pk)?
            .iter()
            .rev()
            .copied()
            .find(|rid| self.rows.get(rid).is_some_and(|r| r.get(pos) == pk))
    }

    /// True when a *live* row other than `exclude` carries `key` on the
    /// unique index `idx` — the uniqueness predicate under versioning,
    /// where entries may reference dead versions.
    fn live_unique_conflict(&self, idx: &Index, key: &[Value], exclude: Option<RowId>) -> bool {
        idx.map.get(key).is_some_and(|set| {
            set.iter().any(|&r| {
                Some(r) != exclude
                    && self.rows.get(&r).is_some_and(|row| {
                        idx.key_pos.iter().zip(key).all(|(&p, kv)| row.get(p) == kv)
                    })
            })
        })
    }

    fn pk_entry_add(&mut self, pk: &Value, rid: RowId) {
        if pk.is_null() {
            return;
        }
        let v = self.pk_index.entry(pk.clone()).or_default();
        if !v.contains(&rid) {
            v.push(rid);
        }
    }

    fn pk_entry_remove(&mut self, pk: &Value, rid: RowId) {
        if pk.is_null() {
            return;
        }
        if let Some(v) = self.pk_index.get_mut(pk) {
            v.retain(|&r| r != rid);
            if v.is_empty() {
                self.pk_index.remove(pk);
            }
        }
    }

    fn index_entries_add(&mut self, rid: RowId, row: &Row) {
        for idx in &mut self.indexes {
            let key = idx.key_of(row);
            idx.map.entry(key).or_default().insert(rid);
        }
    }

    fn index_entries_remove(&mut self, rid: RowId, row: &Row) {
        for idx in &mut self.indexes {
            let key = idx.key_of(row);
            if let Some(set) = idx.map.get_mut(&key) {
                set.remove(&rid);
                if set.is_empty() {
                    idx.map.remove(&key);
                }
            }
        }
    }

    /// Shared pk/unique constraint gate for inserts.
    fn check_insert_constraints(&self, row: &Row) -> Result<()> {
        let pk = row.get(self.schema.primary_key_pos());
        if !pk.is_null() && self.live_pk(pk).is_some() {
            return Err(StorageError::UniqueViolation {
                index: format!("{}_pkey", self.schema.name()),
                key: pk.to_string(),
            });
        }
        self.check_unique_secondary(row, None)
    }

    /// Unique-secondary-index gate shared by the versioned and
    /// unversioned insert paths: a conflict exists only against *live*
    /// rows actually carrying the key.
    fn check_unique_secondary(&self, row: &Row, exclude: Option<RowId>) -> Result<()> {
        for idx in &self.indexes {
            if idx.def.unique {
                let key = idx.key_of(row);
                if !key.iter().any(Value::is_null) && self.live_unique_conflict(idx, &key, exclude)
                {
                    return Err(StorageError::UniqueViolation {
                        index: idx.def.name.clone(),
                        key: format!("{key:?}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// The versioned half of the unique-secondary gate. It only ever
    /// raises the *retryable* [`StorageError::WriteConflict`] — genuine
    /// duplicates stay with the plain checks — for key collisions whose
    /// outcome depends on a concurrent transaction or snapshot:
    ///
    /// * a **live** row carrying the key that is another transaction's
    ///   uncommitted write (it may roll back, so aborting with a
    ///   permanent `UniqueViolation` would be spurious);
    /// * a not-yet-vacuumed **version** carrying the key that is either
    ///   pending supersession/deletion by another transaction (whose
    ///   rollback would bring the key back alongside ours) or still
    ///   visible to this snapshot (a ghost a newer commit removed —
    ///   committing would put two rows with one unique key into our own
    ///   snapshot).
    ///
    /// Call it *before* the plain checks so races classify as
    /// retryable. `old` (an update's pre-image) skips indexes whose key
    /// did not change — the row already holds those keys legitimately.
    fn check_unique_secondary_versioned(
        &self,
        row: &Row,
        old: Option<&Row>,
        exclude: Option<RowId>,
        tid: TxnId,
        snap: &Snapshot,
    ) -> Result<()> {
        for idx in &self.indexes {
            if !idx.def.unique {
                continue;
            }
            let key = idx.key_of(row);
            if key.iter().any(Value::is_null) {
                continue;
            }
            if old.is_some_and(|o| idx.key_of(o) == key) {
                continue;
            }
            let Some(set) = idx.map.get(&key) else {
                continue;
            };
            for &rid in set {
                if Some(rid) == exclude {
                    continue;
                }
                let conflict = StorageError::WriteConflict {
                    table: self.schema.name().to_owned(),
                    key: format!("{key:?}"),
                };
                // Live image carrying the key, uncommitted by another
                // transaction: the collision is unresolved — retry.
                let live_carries = self
                    .rows
                    .get(&rid)
                    .is_some_and(|r| idx.key_pos.iter().zip(&key).all(|(&p, kv)| r.get(p) == kv));
                if live_carries {
                    if let Some(m) = self.meta.get(&rid) {
                        if m.writer.is_some_and(|w| w != tid) {
                            return Err(conflict);
                        }
                    }
                    continue; // committed or own: the plain checks decide
                }
                let Some(chain) = self.history.get(&rid) else {
                    continue;
                };
                for v in chain.iter().rev() {
                    let carries = idx
                        .key_pos
                        .iter()
                        .zip(&key)
                        .all(|(&p, kv)| v.row.get(p) == kv);
                    if !carries {
                        continue;
                    }
                    let blocked = match v.end {
                        VersionEnd::Pending(t) => t != tid,
                        VersionEnd::At(e) => e > snap.epoch,
                    };
                    if blocked {
                        return Err(conflict);
                    }
                }
            }
        }
        Ok(())
    }

    /// Inserts a row, enforcing PK and unique-index constraints.
    ///
    /// Returns the new row's heap id. Unversioned: the row is visible to
    /// every snapshot (begin epoch 0); the engine uses
    /// [`Table::insert_txn`] instead.
    ///
    /// # Errors
    ///
    /// [`StorageError::UniqueViolation`] on a duplicate key; validation
    /// errors per [`Table::validate`].
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        let row = self.validate(&row)?;
        self.check_insert_constraints(&row)?;
        let rid = RowId(self.next_rid);
        self.next_rid += 1;
        let pk = row.get(self.schema.primary_key_pos()).clone();
        self.pk_entry_add(&pk, rid);
        self.index_entries_add(rid, &row);
        self.stats_add(&row);
        self.rows.insert(rid, row);
        Ok(rid)
    }

    /// Reinserts a row under a specific id (test/reseed path).
    ///
    /// Bypasses validation — the row was valid when it was first stored.
    #[cfg(test)]
    pub(crate) fn restore(&mut self, rid: RowId, row: Row) {
        let pk = row.get(self.schema.primary_key_pos()).clone();
        self.pk_entry_add(&pk, rid);
        self.index_entries_add(rid, &row);
        self.next_rid = self.next_rid.max(rid.0 + 1);
        self.stats_add(&row);
        self.rows.insert(rid, row);
    }

    /// Fetches the *newest* image of a row by heap id, committed or not.
    /// Snapshot readers use [`Table::visible`] instead.
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.rows.get(&rid)
    }

    /// Looks up the live (newest-version) row id by primary-key value.
    pub fn find_pk(&self, pk: &Value) -> Option<RowId> {
        self.live_pk(pk)
    }

    /// Replaces the row at `rid`, maintaining all indexes.
    ///
    /// Returns the previous row image.
    ///
    /// # Errors
    ///
    /// Validation and uniqueness errors as for insert; unknown `rid`
    /// reports an internal error via [`StorageError::Eval`].
    pub fn update(&mut self, rid: RowId, new_row: Row) -> Result<Row> {
        let new_row = self.validate(&new_row)?;
        let old_row = self
            .rows
            .get(&rid)
            .cloned()
            .ok_or_else(|| StorageError::Eval(format!("update of missing row {rid}")))?;
        self.check_update_constraints(rid, &old_row, &new_row)?;
        // Constraints hold; apply exact physical index maintenance.
        let pk_pos = self.schema.primary_key_pos();
        let (old_pk, new_pk) = (old_row.get(pk_pos).clone(), new_row.get(pk_pos).clone());
        if old_pk != new_pk {
            self.pk_entry_remove(&old_pk, rid);
            self.pk_entry_add(&new_pk, rid);
        }
        self.reindex(rid, &old_row, &new_row);
        self.stats_remove(&old_row);
        self.stats_add(&new_row);
        self.rows.insert(rid, new_row);
        Ok(old_row)
    }

    /// Shared pk/unique constraint gate for updates (old image -> new).
    fn check_update_constraints(&self, rid: RowId, old_row: &Row, new_row: &Row) -> Result<()> {
        let pk_pos = self.schema.primary_key_pos();
        let (old_pk, new_pk) = (old_row.get(pk_pos), new_row.get(pk_pos));
        if old_pk != new_pk && !new_pk.is_null() {
            if let Some(other) = self.live_pk(new_pk) {
                if other != rid {
                    return Err(StorageError::UniqueViolation {
                        index: format!("{}_pkey", self.schema.name()),
                        key: new_pk.to_string(),
                    });
                }
            }
        }
        for idx in &self.indexes {
            if idx.def.unique {
                let new_key = idx.key_of(new_row);
                if new_key != idx.key_of(old_row)
                    && !new_key.iter().any(Value::is_null)
                    && self.live_unique_conflict(idx, &new_key, Some(rid))
                {
                    return Err(StorageError::UniqueViolation {
                        index: idx.def.name.clone(),
                        key: format!("{new_key:?}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Moves `rid`'s secondary-index entries from `old_row`'s keys to
    /// `new_row`'s (exact physical maintenance; no-op per index when the
    /// key did not change).
    fn reindex(&mut self, rid: RowId, old_row: &Row, new_row: &Row) {
        for idx in &mut self.indexes {
            let old_key = idx.key_of(old_row);
            let new_key = idx.key_of(new_row);
            if old_key != new_key {
                if let Some(set) = idx.map.get_mut(&old_key) {
                    set.remove(&rid);
                    if set.is_empty() {
                        idx.map.remove(&old_key);
                    }
                }
                idx.map.entry(new_key).or_default().insert(rid);
            }
        }
    }

    /// Deletes the row at `rid`, returning its final image. Unversioned:
    /// the row vanishes for every snapshot; the engine uses
    /// [`Table::delete_txn`] instead.
    pub fn delete(&mut self, rid: RowId) -> Option<Row> {
        let row = self.rows.remove(&rid)?;
        let pk = row.get(self.schema.primary_key_pos()).clone();
        self.pk_entry_remove(&pk, rid);
        self.index_entries_remove(rid, &row);
        self.meta.remove(&rid);
        self.stats_remove(&row);
        Some(row)
    }

    /// Iterates over `(RowId, &Row)` in heap order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().map(|(r, row)| (*r, row))
    }

    // ----- MVCC: snapshot reads -----

    /// Resolves the version of `rid` visible to `snap`: the heap image
    /// when it is the snapshot's own uncommitted write or committed at
    /// `snap.epoch` or earlier; otherwise the newest history version
    /// whose `[begin, end)` interval covers the snapshot. `None` when no
    /// version is visible (row did not exist yet, or was deleted before
    /// the snapshot).
    pub fn visible(&self, rid: RowId, snap: &Snapshot) -> Option<&Row> {
        if let Some(r) = self.rows.get(&rid) {
            match self.meta.get(&rid) {
                None => return Some(r), // settled committed row
                Some(m) => match m.writer {
                    Some(w) => {
                        if snap.owns(w) {
                            return Some(r);
                        }
                    }
                    None => {
                        if m.begin <= snap.epoch {
                            return Some(r);
                        }
                    }
                },
            }
        }
        // Newest version with begin <= snap decides: if it ended for
        // this snapshot, every older version ended even earlier.
        let chain = self.history.get(&rid)?;
        for v in chain.iter().rev() {
            if v.begin > snap.epoch {
                continue;
            }
            let ended = match v.end {
                VersionEnd::At(e) => e <= snap.epoch,
                VersionEnd::Pending(t) => snap.owns(t),
            };
            return if ended { None } else { Some(&v.row) };
        }
        None
    }

    /// One-pass foreign-key probe: resolves `pk` against `snap` and
    /// reports whether a live heap row also carries it — the two facts
    /// the FK check needs, from a single walk of the key's entry list.
    pub fn fk_probe(&self, pk: &Value, snap: &Snapshot) -> (Option<RowId>, bool) {
        let pos = self.schema.primary_key_pos();
        let Some(rids) = self.pk_index.get(pk) else {
            return (None, false);
        };
        let mut visible = None;
        let mut live = false;
        for &rid in rids.iter().rev() {
            if !live && self.rows.get(&rid).is_some_and(|r| r.get(pos) == pk) {
                live = true;
            }
            if visible.is_none() && self.visible(rid, snap).is_some_and(|r| r.get(pos) == pk) {
                visible = Some(rid);
            }
            if live && visible.is_some() {
                break;
            }
        }
        (visible, live)
    }

    /// Snapshot-aware primary-key probe: the row id whose visible
    /// version carries `pk`, if any (at most one can).
    pub fn find_pk_visible(&self, pk: &Value, snap: &Snapshot) -> Option<RowId> {
        let pos = self.schema.primary_key_pos();
        self.pk_index
            .get(pk)?
            .iter()
            .rev()
            .copied()
            .find(|&rid| self.visible(rid, snap).is_some_and(|r| r.get(pos) == pk))
    }

    /// Candidate row ids for a snapshot full scan, in heap (row-id)
    /// order: every heap row plus rows whose only remaining versions are
    /// not-yet-vacuumed history (e.g. pending deletes older snapshots
    /// still see). May include ids with no visible version — callers
    /// resolve each through [`Table::visible`] anyway, so filtering here
    /// would pay the visibility predicate twice per row.
    pub fn scan_rids(&self) -> Vec<RowId> {
        if self.history.is_empty() {
            return self.rows.keys().copied().collect();
        }
        let mut rids: Vec<RowId> = self.rows.keys().copied().collect();
        rids.extend(
            self.history
                .keys()
                .copied()
                .filter(|r| !self.rows.contains_key(r)),
        );
        rids.sort_unstable();
        rids
    }

    /// Number of rows visible to `snap` (exact; used by the COUNT(*)
    /// pushdown so counts honor the snapshot without touching the heap).
    pub fn visible_len(&self, snap: &Snapshot) -> usize {
        if self.meta.is_empty() && self.history.is_empty() {
            return self.rows.len();
        }
        let mut n = self.rows.len();
        for rid in self.meta.keys() {
            if self.rows.contains_key(rid) && self.visible(*rid, snap).is_none() {
                n -= 1;
            }
        }
        for rid in self.history.keys() {
            if !self.rows.contains_key(rid) && self.visible(*rid, snap).is_some() {
                n += 1;
            }
        }
        n
    }

    // ----- durability: checkpoint capture and physical redo apply -----

    /// Clones every row visible to `snap`, sorted by primary key — the
    /// fuzzy-checkpoint capture. Sound under concurrent writers because
    /// MVCC visibility at a fixed epoch is stable: committed versions
    /// `<= snap.epoch` are immutable and `snap` owns no pending writes,
    /// so whatever interleaving the capture races with, each row
    /// resolves to the same image (the engine pins `snap.epoch` against
    /// vacuum for the capture's duration).
    pub fn snapshot_rows(&self, snap: &Snapshot) -> Vec<Row> {
        let pk_pos = self.schema.primary_key_pos();
        let mut rows: Vec<Row> = self
            .scan_rids()
            .into_iter()
            .filter_map(|rid| self.visible(rid, snap).cloned())
            .collect();
        rows.sort_by(|a, b| a.get(pk_pos).cmp(b.get(pk_pos)));
        rows
    }

    /// Physical redo apply (recovery): installs a logged post-image as
    /// an unversioned row (begin epoch 0 — visible to every snapshot,
    /// exactly right for state rebuilt below the recovered
    /// `commit_epoch`). Full index/statistics maintenance and
    /// constraint checks run; replay orders a record's deletes before
    /// its inserts, so constraints are evaluated against the record's
    /// *final* state and committed data always passes.
    pub(crate) fn recover_insert(&mut self, row: Row) -> Result<RowId> {
        self.insert(row)
    }

    /// Physical redo apply (recovery): removes the row whose primary
    /// key matches a logged pre-image. Pre-images come from a committed
    /// snapshot, so the key resolves to exactly one live row.
    ///
    /// # Errors
    ///
    /// [`StorageError::Wal`] when the row is missing — the log and the
    /// rebuilt state disagree, which recovery must not paper over.
    pub(crate) fn recover_delete(&mut self, old: &Row) -> Result<Row> {
        let pk = old.get(self.schema.primary_key_pos());
        let rid = self.find_pk(pk).ok_or_else(|| {
            StorageError::Wal(format!(
                "recovery: no live row with {} = {pk} in table {:?}",
                self.schema.primary_key(),
                self.schema.name()
            ))
        })?;
        self.delete(rid).ok_or_else(|| {
            StorageError::Wal(format!(
                "recovery: row {rid} vanished mid-replay in table {:?}",
                self.schema.name()
            ))
        })
    }

    /// Entry filter shared by the snapshot scan variants: keep `rid`
    /// only when its visible version actually carries the index `key`
    /// the entry promised. This drops stale entries (the version moved
    /// away from the key, or is invisible to the snapshot) and
    /// guarantees a row is returned at most once per scan.
    fn vis_keep_idx(&self, vis: Option<&Snapshot>, idx: &Index, key: &[Value], rid: RowId) -> bool {
        match vis {
            None => true,
            Some(s) => self
                .visible(rid, s)
                .is_some_and(|r| idx.key_pos.iter().zip(key).all(|(&p, kv)| r.get(p) == kv)),
        }
    }

    // ----- MVCC: versioned writes (engine path) -----

    /// First-updater-wins gate for a versioned write against `rid`'s
    /// newest version: `Ok(true)` when the heap image is the writer's
    /// own uncommitted version (mutate in place), `Ok(false)` when it is
    /// committed and visible to the writer's snapshot (start a new
    /// version), [`StorageError::WriteConflict`] when a version the
    /// snapshot cannot see already superseded the one it read.
    fn write_gate(&self, rid: RowId, tid: TxnId, snap: &Snapshot) -> Result<bool> {
        match self.meta.get(&rid) {
            None => Ok(false),
            Some(m) => match m.writer {
                Some(w) if w == tid => Ok(true),
                Some(_) => Err(self.write_conflict(rid)),
                None if m.begin > snap.epoch => Err(self.write_conflict(rid)),
                None => Ok(false),
            },
        }
    }

    fn write_conflict(&self, rid: RowId) -> StorageError {
        let pos = self.schema.primary_key_pos();
        let key = self
            .rows
            .get(&rid)
            .map(|r| r.get(pos).to_string())
            .unwrap_or_else(|| format!("{rid}"));
        StorageError::WriteConflict {
            table: self.schema.name().to_owned(),
            key,
        }
    }

    /// Versioned insert by transaction `tid` reading at `snap`: the new
    /// row is uncommitted (visible only to `tid`) until
    /// [`Table::commit_rows`] stamps it.
    ///
    /// # Errors
    ///
    /// [`StorageError::WriteConflict`] when the primary key is held by a
    /// version newer than the snapshot (first-updater-wins);
    /// [`StorageError::UniqueViolation`] for genuine duplicates;
    /// validation errors per [`Table::validate`].
    pub fn insert_txn(&mut self, row: Row, tid: TxnId, snap: &Snapshot) -> Result<RowId> {
        let row = self.validate(&row)?;
        let pk = row.get(self.schema.primary_key_pos()).clone();
        if !pk.is_null() {
            if let Some(holder) = self.live_pk(&pk) {
                let newer_version = match self.meta.get(&holder) {
                    Some(m) => match m.writer {
                        Some(w) => w != tid,
                        None => m.begin > snap.epoch,
                    },
                    None => false,
                };
                return Err(if newer_version {
                    self.write_conflict(holder)
                } else {
                    StorageError::UniqueViolation {
                        index: format!("{}_pkey", self.schema.name()),
                        key: pk.to_string(),
                    }
                });
            }
            // No live holder, but the key may still be *visible* to this
            // snapshot through a not-yet-vacuumed deleted version (the
            // delete committed after the snapshot). Inserting would put
            // two rows with one primary key into a single snapshot —
            // first-updater-wins instead.
            if let Some(ghost) = self.find_pk_visible(&pk, snap) {
                return Err(self.write_conflict(ghost));
            }
        }
        // Versioned gate first: races with uncommitted writers and
        // snapshot ghosts classify as retryable WriteConflict; genuine
        // duplicates then report UniqueViolation.
        self.check_unique_secondary_versioned(&row, None, None, tid, snap)?;
        self.check_unique_secondary(&row, None)?;
        let rid = RowId(self.next_rid);
        self.next_rid += 1;
        self.meta.insert(
            rid,
            RowMeta {
                begin: 0,
                writer: Some(tid),
            },
        );
        self.pk_entry_add(&pk, rid);
        self.index_entries_add(rid, &row);
        self.stats_add(&row);
        self.rows.insert(rid, row);
        Ok(rid)
    }

    /// Versioned update: pushes the committed pre-image into history
    /// (end pending on `tid`) and installs the new image as `tid`'s
    /// uncommitted version; a second write by the same transaction
    /// mutates its own version in place. Returns the pre-image and
    /// whether a history version was pushed (the undo log needs it).
    ///
    /// # Errors
    ///
    /// [`StorageError::WriteConflict`] per the write gate;
    /// constraint/validation errors as for [`Table::update`].
    pub fn update_txn(
        &mut self,
        rid: RowId,
        new_row: Row,
        tid: TxnId,
        snap: &Snapshot,
    ) -> Result<(Row, bool)> {
        let new_row = self.validate(&new_row)?;
        let in_place = self.write_gate(rid, tid, snap)?;
        let old_row = match self.rows.get(&rid) {
            Some(r) => r.clone(),
            // No newest image but the snapshot matched the row: a newer
            // committed transaction deleted it — first-updater-wins,
            // same as an update racing an update.
            None if self.history.contains_key(&rid) => return Err(self.write_conflict(rid)),
            None => return Err(StorageError::Eval(format!("update of missing row {rid}"))),
        };
        // Versioned gates first (retryable conflicts), then the plain
        // constraint checks (permanent violations).
        self.check_unique_secondary_versioned(&new_row, Some(&old_row), Some(rid), tid, snap)?;
        let pk_pos = self.schema.primary_key_pos();
        let new_pk = new_row.get(pk_pos).clone();
        // A pk move needs the same conflict classification as an
        // insert: a live holder that is another transaction's
        // uncommitted row (or newer than our snapshot) is a retryable
        // conflict, and the target key may still be visible to this
        // snapshot through a deleted version a newer transaction
        // committed (ghost).
        if new_pk != *old_row.get(pk_pos) && !new_pk.is_null() {
            if let Some(holder) = self.live_pk(&new_pk) {
                if holder != rid {
                    let newer_version = match self.meta.get(&holder) {
                        Some(m) => match m.writer {
                            Some(w) => w != tid,
                            None => m.begin > snap.epoch,
                        },
                        None => false,
                    };
                    if newer_version {
                        return Err(self.write_conflict(holder));
                    }
                    // Committed-and-visible holder: fall through to
                    // check_update_constraints' UniqueViolation.
                }
            } else if let Some(ghost) = self.find_pk_visible(&new_pk, snap) {
                if ghost != rid {
                    return Err(self.write_conflict(ghost));
                }
            }
        }
        self.check_update_constraints(rid, &old_row, &new_row)?;
        if in_place {
            // Own uncommitted image: nobody else can see it, so move its
            // entries physically — except keys a committed history
            // version still needs.
            self.retire_version_entries(rid, &old_row, false, Some(&new_row));
        } else {
            let begin = self.meta.get(&rid).map(|m| m.begin).unwrap_or(0);
            self.history.entry(rid).or_default().push(OldVersion {
                begin,
                end: VersionEnd::Pending(tid),
                row: old_row.clone(),
            });
            self.meta.insert(
                rid,
                RowMeta {
                    begin: 0,
                    writer: Some(tid),
                },
            );
            // Old entries stay: they serve the history version until
            // vacuum. New entries are appended below.
        }
        self.pk_entry_add(&new_pk, rid);
        self.index_entries_add(rid, &new_row);
        self.stats_remove(&old_row);
        self.stats_add(&new_row);
        self.rows.insert(rid, new_row);
        Ok((old_row, !in_place))
    }

    /// Versioned delete: the committed image moves to history (end
    /// pending on `tid`) and stays visible to every other snapshot until
    /// the transaction commits; deleting the transaction's own
    /// uncommitted image removes it physically. Returns the image and
    /// whether a history version was pushed.
    ///
    /// # Errors
    ///
    /// [`StorageError::WriteConflict`] per the write gate.
    pub fn delete_txn(&mut self, rid: RowId, tid: TxnId, snap: &Snapshot) -> Result<(Row, bool)> {
        let in_place = self.write_gate(rid, tid, snap)?;
        let row = match self.rows.remove(&rid) {
            Some(r) => r,
            // Deleted by a newer committed transaction (see update_txn).
            None if self.history.contains_key(&rid) => return Err(self.write_conflict(rid)),
            None => return Err(StorageError::Eval(format!("delete of missing row {rid}"))),
        };
        self.stats_remove(&row);
        if in_place {
            self.meta.remove(&rid);
            self.retire_version_entries(rid, &row, false, None);
            Ok((row, false))
        } else {
            let begin = self.meta.get(&rid).map(|m| m.begin).unwrap_or(0);
            self.history.entry(rid).or_default().push(OldVersion {
                begin,
                end: VersionEnd::Pending(tid),
                row: row.clone(),
            });
            self.meta.remove(&rid);
            // pk and index entries stay for the history version.
            Ok((row, true))
        }
    }

    /// Commit stamping: every version `tid` wrote on these rows becomes
    /// committed at `epoch` — new images get `begin = epoch`, superseded
    /// images get `end = epoch`. Runs under this table's write latch (or
    /// the exclusive catalog latch), before the commit epoch is
    /// published, so the flip is atomic for readers of this table.
    pub fn commit_rows<I: IntoIterator<Item = RowId>>(&mut self, rids: I, tid: TxnId, epoch: u64) {
        for rid in rids {
            if let Some(m) = self.meta.get_mut(&rid) {
                if m.writer == Some(tid) {
                    *m = RowMeta {
                        begin: epoch,
                        writer: None,
                    };
                }
            }
            if let Some(chain) = self.history.get_mut(&rid) {
                for v in chain.iter_mut() {
                    if v.end == VersionEnd::Pending(tid) {
                        v.end = VersionEnd::At(epoch);
                    }
                }
            }
        }
    }

    /// Rolls back an uncommitted [`Table::insert_txn`]: the row never
    /// existed for anyone, so its entries are removed physically.
    pub(crate) fn undo_insert(&mut self, rid: RowId) {
        let Some(row) = self.rows.remove(&rid) else {
            return;
        };
        self.meta.remove(&rid);
        self.stats_remove(&row);
        let pk = row.get(self.schema.primary_key_pos()).clone();
        self.pk_entry_remove(&pk, rid);
        self.index_entries_remove(rid, &row);
    }

    /// Rolls back an uncommitted [`Table::update_txn`]: restores the
    /// pre-image and (when the update pushed a history version) pops it
    /// back into the heap's metadata.
    pub(crate) fn undo_update(&mut self, rid: RowId, before: Row, pushed: bool, tid: TxnId) {
        let replaced = self.rows.insert(rid, before.clone());
        if let Some(new_image) = &replaced {
            self.stats_remove(new_image);
        }
        self.stats_add(&before);
        if pushed {
            self.pop_pending_version(rid, tid);
        }
        if let Some(new_image) = replaced {
            self.retire_version_entries(rid, &new_image, false, Some(&before));
        }
        let pk = before.get(self.schema.primary_key_pos()).clone();
        self.pk_entry_add(&pk, rid);
        self.index_entries_add(rid, &before);
    }

    /// Rolls back an uncommitted [`Table::delete_txn`].
    pub(crate) fn undo_delete(&mut self, rid: RowId, row: Row, pushed: bool, tid: TxnId) {
        self.stats_add(&row);
        if pushed {
            self.pop_pending_version(rid, tid);
        } else {
            self.meta.insert(
                rid,
                RowMeta {
                    begin: 0,
                    writer: Some(tid),
                },
            );
        }
        let pk = row.get(self.schema.primary_key_pos()).clone();
        self.pk_entry_add(&pk, rid);
        self.index_entries_add(rid, &row);
        self.rows.insert(rid, row);
    }

    /// Pops the history version `tid` left pending on `rid` back into
    /// the heap metadata (rollback of the superseding write).
    fn pop_pending_version(&mut self, rid: RowId, tid: TxnId) {
        let Some(chain) = self.history.get_mut(&rid) else {
            debug_assert!(false, "undo expected a pushed version for {rid}");
            return;
        };
        let Some(pos) = chain
            .iter()
            .rposition(|v| v.end == VersionEnd::Pending(tid))
        else {
            debug_assert!(false, "undo expected a pending version for {rid}");
            return;
        };
        let popped = chain.remove(pos);
        if chain.is_empty() {
            self.history.remove(&rid);
        }
        if popped.begin == 0 {
            // Absent meta *means* committed-at-0: restore the implicit
            // state rather than an equivalent explicit entry.
            self.meta.remove(&rid);
        } else {
            self.meta.insert(
                rid,
                RowMeta {
                    begin: popped.begin,
                    writer: None,
                },
            );
        }
    }

    /// Removes `gone`'s pk and index entries for `rid` — except keys
    /// that a retained history version, the current heap image (when
    /// `keep_heap`), or `also_keep` still carries, which snapshot
    /// readers still need to find.
    fn retire_version_entries(
        &mut self,
        rid: RowId,
        gone: &Row,
        keep_heap: bool,
        also_keep: Option<&Row>,
    ) {
        let hist = self.history.get(&rid);
        let heap = if keep_heap { self.rows.get(&rid) } else { None };
        let also_keep = also_keep.or(heap);
        let pk_pos = self.schema.primary_key_pos();
        let gone_pk = gone.get(pk_pos).clone();
        let pk_kept = also_keep.is_some_and(|r| r.get(pk_pos) == &gone_pk)
            || hist.is_some_and(|c| c.iter().any(|v| v.row.get(pk_pos) == &gone_pk));
        // Decide every removal first (immutable borrows of history and
        // indexes), then apply (mutable) — and compare key columns in
        // place rather than materializing history row clones.
        let retired: Vec<Option<Vec<Value>>> = self
            .indexes
            .iter()
            .map(|idx| {
                let key = idx.key_of(gone);
                let kept = also_keep
                    .is_some_and(|r| idx.key_pos.iter().zip(&key).all(|(&p, kv)| r.get(p) == kv))
                    || hist.is_some_and(|c| {
                        c.iter().any(|v| {
                            idx.key_pos
                                .iter()
                                .zip(&key)
                                .all(|(&p, kv)| v.row.get(p) == kv)
                        })
                    });
                (!kept).then_some(key)
            })
            .collect();
        if !pk_kept {
            self.pk_entry_remove(&gone_pk, rid);
        }
        for (idx, key) in self.indexes.iter_mut().zip(retired) {
            if let Some(key) = key {
                if let Some(set) = idx.map.get_mut(&key) {
                    set.remove(&rid);
                    if set.is_empty() {
                        idx.map.remove(&key);
                    }
                }
            }
        }
    }

    // ----- MVCC: vacuum -----

    /// Prunes history versions no snapshot at or after `horizon` can
    /// see (their end epoch is `<= horizon`), removes the index/pk
    /// entries that served only those versions, and collapses settled
    /// row metadata back to the implicit committed state. Uncommitted
    /// versions and versions still visible at the horizon are never
    /// touched. Returns the number of versions pruned.
    pub fn vacuum(&mut self, horizon: u64) -> u64 {
        let mut pruned = 0u64;
        let rids: Vec<RowId> = self.history.keys().copied().collect();
        for rid in rids {
            let mut chain = self.history.remove(&rid).unwrap_or_default();
            let (dead, live): (Vec<OldVersion>, Vec<OldVersion>) = chain
                .drain(..)
                .partition(|v| matches!(v.end, VersionEnd::At(e) if e <= horizon));
            if !live.is_empty() {
                self.history.insert(rid, live);
            }
            pruned += dead.len() as u64;
            for v in dead {
                self.retire_version_entries(rid, &v.row, true, None);
            }
        }
        // Settled committed rows (begin at or below the horizon, no
        // remaining history) revert to the zero-cost implicit state.
        let Table { meta, history, .. } = self;
        meta.retain(|rid, m| m.writer.is_some() || m.begin > horizon || history.contains_key(rid));
        pruned
    }

    /// Superseded versions currently retained (diagnostics and tests).
    pub fn history_versions(&self) -> usize {
        self.history.values().map(Vec::len).sum()
    }

    /// Heap rows carrying explicit version metadata — uncommitted
    /// writes plus committed rows vacuum has not yet settled
    /// (diagnostics and tests).
    pub fn versioned_rows(&self) -> usize {
        self.meta.len()
    }

    /// Creates a secondary index, backfilling existing rows.
    ///
    /// # Errors
    ///
    /// [`StorageError::AlreadyExists`] for a duplicate name; unknown
    /// columns report [`StorageError::UnknownColumn`]; a unique index over
    /// data that already contains duplicates reports
    /// [`StorageError::UniqueViolation`].
    pub fn create_index(&mut self, def: IndexDef) -> Result<()> {
        if self.indexes.iter().any(|i| i.def.name == def.name) {
            return Err(StorageError::AlreadyExists(def.name));
        }
        let key_pos: Vec<usize> = def
            .columns
            .iter()
            .map(|c| self.schema.require_column(c))
            .collect::<Result<_>>()?;
        let mut idx = Index {
            def,
            key_pos,
            map: BTreeMap::new(),
        };
        for (rid, row) in &self.rows {
            let key = idx.key_of(row);
            let set = idx.map.entry(key.clone()).or_default();
            if idx.def.unique && !set.is_empty() && !key.iter().any(Value::is_null) {
                return Err(StorageError::UniqueViolation {
                    index: idx.def.name.clone(),
                    key: format!("{key:?}"),
                });
            }
            set.insert(*rid);
        }
        // Backfill retained history versions too, so index scans by a
        // snapshot older than the newest images still find their rows
        // (dead versions never count toward uniqueness — every unique
        // check is liveness-aware; vacuum reclaims these entries with
        // their versions).
        for (rid, chain) in &self.history {
            for v in chain {
                let key = idx.key_of(&v.row);
                idx.map.entry(key).or_default().insert(*rid);
            }
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// The index whose key columns exactly match `columns`, if any.
    pub fn index_on(&self, columns: &[String]) -> Option<&Index> {
        self.indexes.iter().find(|i| i.def.columns == columns)
    }

    /// The index named `name`, if any.
    pub fn index_by_name(&self, name: &str) -> Option<&Index> {
        self.indexes.iter().find(|i| i.def.name == name)
    }

    /// The index whose key is a prefix of `columns` usable for an
    /// equality lookup on all its key columns.
    ///
    /// Fully deterministic: prefers the widest covering index, then the
    /// most selective (most distinct keys) — e.g. for
    /// `WHERE to_user_id = ? AND status = ?` the FK index beats the
    /// low-cardinality status index — and finally the lexicographically
    /// smallest index name, so equal-width equal-selectivity candidates
    /// never flip-flop between runs.
    pub fn best_index_for(&self, eq_columns: &[&str]) -> Option<&Index> {
        self.indexes
            .iter()
            .filter(|i| {
                i.def
                    .columns
                    .iter()
                    .all(|c| eq_columns.contains(&c.as_str()))
            })
            .max_by_key(|i| {
                (
                    i.def.columns.len(),
                    i.distinct_keys(),
                    std::cmp::Reverse(i.def.name.as_str()),
                )
            })
    }

    /// Row ids matching an exact key on `idx` (newest-version view).
    pub fn index_lookup(&self, idx: &Index, key: &[Value]) -> Vec<RowId> {
        self.index_lookup_impl(idx, key, None)
    }

    /// Snapshot-aware [`Table::index_lookup`]: only rows whose version
    /// visible to `snap` carries `key`.
    pub fn index_lookup_visible(&self, idx: &Index, key: &[Value], snap: &Snapshot) -> Vec<RowId> {
        self.index_lookup_impl(idx, key, Some(snap))
    }

    fn index_lookup_impl(&self, idx: &Index, key: &[Value], vis: Option<&Snapshot>) -> Vec<RowId> {
        idx.map
            .get(key)
            .map(|s| {
                s.iter()
                    .copied()
                    .filter(|&rid| self.vis_keep_idx(vis, idx, key, rid))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Row ids whose primary key falls in `[from, to]`, in key order
    /// (reversed when `reverse`).
    pub fn pk_range_scan(
        &self,
        from: &crate::plan::Bound,
        to: &crate::plan::Bound,
        reverse: bool,
    ) -> Vec<RowId> {
        self.pk_range_scan_impl(from, to, reverse, None)
    }

    /// Snapshot-aware [`Table::pk_range_scan`].
    pub fn pk_range_scan_visible(
        &self,
        from: &crate::plan::Bound,
        to: &crate::plan::Bound,
        reverse: bool,
        snap: &Snapshot,
    ) -> Vec<RowId> {
        self.pk_range_scan_impl(from, to, reverse, Some(snap))
    }

    fn pk_range_scan_impl(
        &self,
        from: &crate::plan::Bound,
        to: &crate::plan::Bound,
        reverse: bool,
        vis: Option<&Snapshot>,
    ) -> Vec<RowId> {
        use std::ops::Bound as B;
        let lo = match from {
            crate::plan::Bound::Unbounded => B::Unbounded,
            crate::plan::Bound::Included(v) => B::Included(v.clone()),
            crate::plan::Bound::Excluded(v) => B::Excluded(v.clone()),
        };
        let hi = match to {
            crate::plan::Bound::Unbounded => B::Unbounded,
            crate::plan::Bound::Included(v) => B::Included(v.clone()),
            crate::plan::Bound::Excluded(v) => B::Excluded(v.clone()),
        };
        if range_is_empty(&lo, &hi) {
            return Vec::new();
        }
        let pos = self.schema.primary_key_pos();
        let mut out: Vec<RowId> = Vec::new();
        // At most one id per key can match its entry: the live one (no
        // snapshot) or the one whose visible version carries the key.
        for (pk, rids) in self.pk_index.range((lo, hi)) {
            let hit = rids.iter().rev().copied().find(|&rid| match vis {
                None => self.rows.get(&rid).is_some_and(|r| r.get(pos) == pk),
                Some(s) => self.visible(rid, s).is_some_and(|r| r.get(pos) == pk),
            });
            out.extend(hit);
        }
        if reverse {
            out.reverse();
        }
        out
    }

    /// Row ids from `idx` whose key starts with `eq_prefix` and whose
    /// next key column lies within `[from, to]`, in full key order
    /// (reversed when `reverse`).
    pub fn index_range_scan(
        &self,
        idx: &Index,
        eq_prefix: &[Value],
        from: &crate::plan::Bound,
        to: &crate::plan::Bound,
        reverse: bool,
    ) -> Vec<RowId> {
        self.index_range_scan_impl(idx, eq_prefix, from, to, reverse, None)
    }

    /// Snapshot-aware [`Table::index_range_scan`].
    pub fn index_range_scan_visible(
        &self,
        idx: &Index,
        eq_prefix: &[Value],
        from: &crate::plan::Bound,
        to: &crate::plan::Bound,
        reverse: bool,
        snap: &Snapshot,
    ) -> Vec<RowId> {
        self.index_range_scan_impl(idx, eq_prefix, from, to, reverse, Some(snap))
    }

    #[allow(clippy::too_many_arguments)]
    fn index_range_scan_impl(
        &self,
        idx: &Index,
        eq_prefix: &[Value],
        from: &crate::plan::Bound,
        to: &crate::plan::Bound,
        reverse: bool,
        vis: Option<&Snapshot>,
    ) -> Vec<RowId> {
        use std::ops::Bound as B;
        let p = eq_prefix.len();
        debug_assert!(p < idx.def.columns.len(), "range column must exist");
        // Start at the first key >= prefix + lower endpoint; keys sharing
        // the endpoint value but carrying longer suffixes sort after the
        // bare endpoint key, so Included over the extended prefix is a
        // correct lower bound for Excluded endpoints too (the equal run
        // is skipped below).
        let start: B<Vec<Value>> = match from {
            crate::plan::Bound::Unbounded => {
                if p == 0 {
                    B::Unbounded
                } else {
                    B::Included(eq_prefix.to_vec())
                }
            }
            crate::plan::Bound::Included(v) | crate::plan::Bound::Excluded(v) => {
                let mut k = eq_prefix.to_vec();
                k.push(v.clone());
                B::Included(k)
            }
        };
        let mut blocks: Vec<Vec<RowId>> = Vec::new();
        for (key, rids) in idx.map.range((start, B::Unbounded)) {
            if key.len() <= p || key[..p] != eq_prefix[..] {
                break;
            }
            let kv = &key[p];
            if let crate::plan::Bound::Excluded(v) = from {
                if kv == v {
                    continue;
                }
            }
            match to {
                crate::plan::Bound::Included(v) => {
                    if kv > v {
                        break;
                    }
                }
                crate::plan::Bound::Excluded(v) => {
                    if kv >= v {
                        break;
                    }
                }
                crate::plan::Bound::Unbounded => {}
            }
            blocks.push(
                rids.iter()
                    .copied()
                    .filter(|&rid| self.vis_keep_idx(vis, idx, key, rid))
                    .collect(),
            );
        }
        flatten_key_blocks(blocks, reverse)
    }

    /// Row ids from `idx` whose key starts with `prefix` (a proper prefix
    /// of the key columns), in full key order (reversed when `reverse`).
    pub fn index_prefix_scan(&self, idx: &Index, prefix: &[Value], reverse: bool) -> Vec<RowId> {
        self.index_prefix_scan_impl(idx, prefix, reverse, None)
    }

    /// Snapshot-aware [`Table::index_prefix_scan`].
    pub fn index_prefix_scan_visible(
        &self,
        idx: &Index,
        prefix: &[Value],
        reverse: bool,
        snap: &Snapshot,
    ) -> Vec<RowId> {
        self.index_prefix_scan_impl(idx, prefix, reverse, Some(snap))
    }

    fn index_prefix_scan_impl(
        &self,
        idx: &Index,
        prefix: &[Value],
        reverse: bool,
        vis: Option<&Snapshot>,
    ) -> Vec<RowId> {
        use std::ops::Bound as B;
        let p = prefix.len();
        let start: B<Vec<Value>> = if p == 0 {
            B::Unbounded
        } else {
            B::Included(prefix.to_vec())
        };
        let mut blocks: Vec<Vec<RowId>> = Vec::new();
        for (key, rids) in idx.map.range((start, B::Unbounded)) {
            if key.len() < p || key[..p] != prefix[..] {
                break;
            }
            blocks.push(
                rids.iter()
                    .copied()
                    .filter(|&rid| self.vis_keep_idx(vis, idx, key, rid))
                    .collect(),
            );
        }
        flatten_key_blocks(blocks, reverse)
    }

    /// Row ids matching any of `keys` on `idx`'s first key column, in
    /// key order (`keys` must be sorted; reversed when `reverse`). Used
    /// for `IN (...)` and OR-equality chains.
    pub fn index_multi_lookup(&self, idx: &Index, keys: &[Value], reverse: bool) -> Vec<RowId> {
        self.index_multi_lookup_impl(idx, keys, reverse, None)
    }

    /// Snapshot-aware [`Table::index_multi_lookup`].
    pub fn index_multi_lookup_visible(
        &self,
        idx: &Index,
        keys: &[Value],
        reverse: bool,
        snap: &Snapshot,
    ) -> Vec<RowId> {
        self.index_multi_lookup_impl(idx, keys, reverse, Some(snap))
    }

    fn index_multi_lookup_impl(
        &self,
        idx: &Index,
        keys: &[Value],
        reverse: bool,
        vis: Option<&Snapshot>,
    ) -> Vec<RowId> {
        let mut out = Vec::new();
        let ordered_keys: Vec<&Value> = if reverse {
            keys.iter().rev().collect()
        } else {
            keys.iter().collect()
        };
        if idx.def.columns.len() == 1 {
            // Within one key, postings stay in rid (heap) order even when
            // the key order is reversed — see flatten_key_blocks.
            for key in ordered_keys {
                if let Some(set) = idx.map.get(std::slice::from_ref(key)) {
                    out.extend(set.iter().copied().filter(|&rid| {
                        self.vis_keep_idx(vis, idx, std::slice::from_ref(key), rid)
                    }));
                }
            }
        } else {
            for key in ordered_keys {
                out.extend(self.index_prefix_scan_impl(
                    idx,
                    std::slice::from_ref(key),
                    reverse,
                    vis,
                ));
            }
        }
        out
    }

    /// Row ids from `idx` whose key starts with `eq_prefix` and whose
    /// next key column equals any of `keys` — the multi-range scan behind
    /// `a = ? AND b IN (...)` on an `(a, b, ...)` index. `keys` must be
    /// sorted; key blocks come back in full key order (reversed when
    /// `reverse`), so the result is index-key ordered.
    pub fn index_in_scan(
        &self,
        idx: &Index,
        eq_prefix: &[Value],
        keys: &[Value],
        reverse: bool,
    ) -> Vec<RowId> {
        self.index_in_scan_impl(idx, eq_prefix, keys, reverse, None)
    }

    /// Snapshot-aware [`Table::index_in_scan`].
    pub fn index_in_scan_visible(
        &self,
        idx: &Index,
        eq_prefix: &[Value],
        keys: &[Value],
        reverse: bool,
        snap: &Snapshot,
    ) -> Vec<RowId> {
        self.index_in_scan_impl(idx, eq_prefix, keys, reverse, Some(snap))
    }

    fn index_in_scan_impl(
        &self,
        idx: &Index,
        eq_prefix: &[Value],
        keys: &[Value],
        reverse: bool,
        vis: Option<&Snapshot>,
    ) -> Vec<RowId> {
        let p = eq_prefix.len();
        debug_assert!(p < idx.def.columns.len(), "IN column must exist");
        let full = p + 1 == idx.def.columns.len();
        let ordered_keys: Vec<&Value> = if reverse {
            keys.iter().rev().collect()
        } else {
            keys.iter().collect()
        };
        let mut out = Vec::new();
        let mut probe: Vec<Value> = Vec::with_capacity(p + 1);
        for k in ordered_keys {
            probe.clear();
            probe.extend_from_slice(eq_prefix);
            probe.push((*k).clone());
            if full {
                if let Some(set) = idx.map.get(&probe) {
                    // Postings stay in rid (heap) order within one key.
                    out.extend(
                        set.iter()
                            .copied()
                            .filter(|&rid| self.vis_keep_idx(vis, idx, &probe, rid)),
                    );
                }
            } else {
                out.extend(self.index_prefix_scan_impl(idx, &probe, reverse, vis));
            }
        }
        out
    }

    /// All secondary indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Removes every row (used by tests and reseeding); indexes are kept
    /// but emptied, and row ids are *not* reused.
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.pk_index.clear();
        self.meta.clear();
        self.history.clear();
        for idx in &mut self.indexes {
            idx.map.clear();
        }
        let stats = self.stats.get_mut();
        stats.pending.clear();
        for s in &mut stats.cols {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::ValueType;

    fn users_table() -> Table {
        let schema = TableSchema::builder("users")
            .pk("id")
            .column(ColumnDef::new("name", ValueType::Text).not_null())
            .column(ColumnDef::new("email", ValueType::Text).unique())
            .column(ColumnDef::new("age", ValueType::Int))
            .build()
            .unwrap();
        let mut t = Table::new(schema, 1);
        t.create_index(IndexDef {
            name: "users_email".into(),
            columns: vec!["email".into()],
            unique: true,
        })
        .unwrap();
        t.create_index(IndexDef {
            name: "users_age".into(),
            columns: vec!["age".into()],
            unique: false,
        })
        .unwrap();
        t
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "alice", "a@x", 30i64]).unwrap();
        assert_eq!(t.get(rid).unwrap().get(1), &Value::Text("alice".into()));
        assert_eq!(t.len(), 1);
        assert_eq!(t.find_pk(&Value::Int(1)), Some(rid));
    }

    #[test]
    fn pk_duplicate_rejected() {
        let mut t = users_table();
        t.insert(row![1i64, "a", "a@x", 1i64]).unwrap();
        let err = t.insert(row![1i64, "b", "b@x", 2i64]).unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
        assert_eq!(t.len(), 1, "failed insert must not leave residue");
    }

    #[test]
    fn unique_index_rejected() {
        let mut t = users_table();
        t.insert(row![1i64, "a", "same@x", 1i64]).unwrap();
        let err = t.insert(row![2i64, "b", "same@x", 2i64]).unwrap_err();
        assert!(err.to_string().contains("users_email"));
    }

    #[test]
    fn unique_index_allows_nulls() {
        let mut t = users_table();
        t.insert(row![1i64, "a", Value::Null, 1i64]).unwrap();
        t.insert(row![2i64, "b", Value::Null, 2i64]).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn not_null_enforced() {
        let mut t = users_table();
        let err = t.insert(row![1i64, Value::Null, "a@x", 1i64]).unwrap_err();
        assert!(matches!(err, StorageError::NullViolation(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = users_table();
        let err = t.insert(row![1i64, "a"]).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn type_coercion_on_insert() {
        let schema = TableSchema::builder("m")
            .pk("id")
            .column(ColumnDef::new("score", ValueType::Float))
            .build()
            .unwrap();
        let mut t = Table::new(schema, 2);
        let rid = t.insert(row![1i64, 5i64]).unwrap();
        assert_eq!(t.get(rid).unwrap().get(1), &Value::Float(5.0));
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 30i64]).unwrap();
        t.insert(row![2i64, "b", "b@x", 30i64]).unwrap();
        let idx = t.index_on(&["age".to_string()]).unwrap();
        assert_eq!(t.index_lookup(idx, &[Value::Int(30)]).len(), 2);
        let old = t.update(rid, row![1i64, "a", "a@x", 31i64]).unwrap();
        assert_eq!(old.get(3), &Value::Int(30));
        let idx = t.index_on(&["age".to_string()]).unwrap();
        assert_eq!(t.index_lookup(idx, &[Value::Int(30)]).len(), 1);
        assert_eq!(t.index_lookup(idx, &[Value::Int(31)]).len(), 1);
    }

    #[test]
    fn update_to_conflicting_unique_rejected_without_damage() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 1i64]).unwrap();
        t.insert(row![2i64, "b", "b@x", 2i64]).unwrap();
        let err = t.update(rid, row![1i64, "a", "b@x", 1i64]).unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
        // Old index entries intact.
        let idx = t.index_on(&["email".to_string()]).unwrap();
        assert_eq!(t.index_lookup(idx, &[Value::Text("a@x".into())]).len(), 1);
    }

    #[test]
    fn update_pk_change() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 1i64]).unwrap();
        t.update(rid, row![9i64, "a", "a@x", 1i64]).unwrap();
        assert_eq!(t.find_pk(&Value::Int(9)), Some(rid));
        assert_eq!(t.find_pk(&Value::Int(1)), None);
    }

    #[test]
    fn delete_removes_everywhere() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 30i64]).unwrap();
        let row = t.delete(rid).unwrap();
        assert_eq!(row.get(0), &Value::Int(1));
        assert!(t.is_empty());
        assert_eq!(t.find_pk(&Value::Int(1)), None);
        let idx = t.index_on(&["age".to_string()]).unwrap();
        assert!(t.index_lookup(idx, &[Value::Int(30)]).is_empty());
        assert!(t.delete(rid).is_none(), "double delete returns None");
    }

    #[test]
    fn restore_preserves_rid_and_indexes() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 30i64]).unwrap();
        let row = t.delete(rid).unwrap();
        t.restore(rid, row);
        assert_eq!(t.find_pk(&Value::Int(1)), Some(rid));
        let idx = t.index_on(&["age".to_string()]).unwrap();
        assert_eq!(t.index_lookup(idx, &[Value::Int(30)]), vec![rid]);
    }

    #[test]
    fn create_index_backfills() {
        let mut t = users_table();
        t.insert(row![1i64, "a", "a@x", 10i64]).unwrap();
        t.insert(row![2i64, "b", "b@x", 10i64]).unwrap();
        t.create_index(IndexDef {
            name: "users_name".into(),
            columns: vec!["name".into()],
            unique: false,
        })
        .unwrap();
        let idx = t.index_on(&["name".to_string()]).unwrap();
        assert_eq!(t.index_lookup(idx, &[Value::Text("a".into())]).len(), 1);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = users_table();
        let err = t
            .create_index(IndexDef {
                name: "users_email".into(),
                columns: vec!["name".into()],
                unique: false,
            })
            .unwrap_err();
        assert!(matches!(err, StorageError::AlreadyExists(_)));
    }

    #[test]
    fn unique_backfill_over_duplicates_fails() {
        let mut t = users_table();
        t.insert(row![1i64, "same", "a@x", 1i64]).unwrap();
        t.insert(row![2i64, "same", "b@x", 2i64]).unwrap();
        let err = t
            .create_index(IndexDef {
                name: "users_name_u".into(),
                columns: vec!["name".into()],
                unique: true,
            })
            .unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
    }

    #[test]
    fn best_index_prefers_widest_match() {
        let schema = TableSchema::builder("t")
            .pk("id")
            .column(ColumnDef::new("a", ValueType::Int))
            .column(ColumnDef::new("b", ValueType::Int))
            .build()
            .unwrap();
        let mut t = Table::new(schema, 3);
        t.create_index(IndexDef {
            name: "t_a".into(),
            columns: vec!["a".into()],
            unique: false,
        })
        .unwrap();
        t.create_index(IndexDef {
            name: "t_ab".into(),
            columns: vec!["a".into(), "b".into()],
            unique: false,
        })
        .unwrap();
        let best = t.best_index_for(&["a", "b"]).unwrap();
        assert_eq!(best.def().name, "t_ab");
        let only_a = t.best_index_for(&["a"]).unwrap();
        assert_eq!(only_a.def().name, "t_a");
        assert!(
            t.best_index_for(&["b"]).is_none()
                || t.best_index_for(&["b"]).unwrap().def().columns == vec!["b".to_string()]
        );
    }

    #[test]
    fn best_index_breaks_ties_by_selectivity() {
        let schema = TableSchema::builder("inv")
            .pk("id")
            .column(ColumnDef::new("to_user", ValueType::Int))
            .column(ColumnDef::new("status", ValueType::Int))
            .build()
            .unwrap();
        let mut t = Table::new(schema, 9);
        t.create_index(IndexDef {
            name: "inv_status".into(),
            columns: vec!["status".into()],
            unique: false,
        })
        .unwrap();
        t.create_index(IndexDef {
            name: "inv_to_user".into(),
            columns: vec!["to_user".into()],
            unique: false,
        })
        .unwrap();
        // Many users, two statuses: the user index is far more selective.
        for i in 0..100i64 {
            t.insert(row![i, i % 50, i % 2]).unwrap();
        }
        let best = t.best_index_for(&["to_user", "status"]).unwrap();
        assert_eq!(best.def().name, "inv_to_user");
    }

    #[test]
    fn best_index_tie_breaks_by_name() {
        let schema = TableSchema::builder("t")
            .pk("id")
            .column(ColumnDef::new("a", ValueType::Int))
            .column(ColumnDef::new("b", ValueType::Int))
            .build()
            .unwrap();
        let mut t = Table::new(schema, 7);
        // Two single-column indexes over columns with identical
        // cardinality: width and selectivity tie, so the name decides —
        // deterministically, regardless of creation order.
        t.create_index(IndexDef {
            name: "t_zz".into(),
            columns: vec!["a".into()],
            unique: false,
        })
        .unwrap();
        t.create_index(IndexDef {
            name: "t_aa".into(),
            columns: vec!["b".into()],
            unique: false,
        })
        .unwrap();
        for i in 0..10i64 {
            t.insert(row![i, i % 5, i % 5]).unwrap();
        }
        assert_eq!(t.best_index_for(&["a", "b"]).unwrap().def().name, "t_aa");

        // Same table with the indexes created in the opposite order
        // picks the same winner.
        let schema = TableSchema::builder("t")
            .pk("id")
            .column(ColumnDef::new("a", ValueType::Int))
            .column(ColumnDef::new("b", ValueType::Int))
            .build()
            .unwrap();
        let mut t2 = Table::new(schema, 8);
        t2.create_index(IndexDef {
            name: "t_aa".into(),
            columns: vec!["b".into()],
            unique: false,
        })
        .unwrap();
        t2.create_index(IndexDef {
            name: "t_zz".into(),
            columns: vec!["a".into()],
            unique: false,
        })
        .unwrap();
        for i in 0..10i64 {
            t2.insert(row![i, i % 5, i % 5]).unwrap();
        }
        assert_eq!(t2.best_index_for(&["a", "b"]).unwrap().def().name, "t_aa");
    }

    #[test]
    fn page_of_groups_rows() {
        let schema = TableSchema::builder("t")
            .pk("id")
            .rows_per_page(4)
            .build()
            .unwrap();
        let t = Table::new(schema, 4);
        assert_eq!(t.page_of(RowId(0)), 0);
        assert_eq!(t.page_of(RowId(3)), 0);
        assert_eq!(t.page_of(RowId(4)), 1);
    }

    fn snap(epoch: u64) -> Snapshot {
        Snapshot {
            epoch,
            writer: None,
        }
    }

    fn snap_w(epoch: u64, tid: u64) -> Snapshot {
        Snapshot {
            epoch,
            writer: Some(tid),
        }
    }

    #[test]
    fn versioned_update_serves_old_and_new_snapshots() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 30i64]).unwrap();
        // Txn 7 at snapshot epoch 0 updates the age; commit at epoch 1.
        let (before, pushed) = t
            .update_txn(rid, row![1i64, "a", "a@x", 31i64], 7, &snap_w(0, 7))
            .unwrap();
        assert_eq!(before.get(3), &Value::Int(30));
        assert!(pushed, "superseding a committed version pushes history");
        // Uncommitted: only the writer sees the new image.
        assert_eq!(t.visible(rid, &snap(0)).unwrap().get(3), &Value::Int(30));
        assert_eq!(
            t.visible(rid, &snap_w(0, 7)).unwrap().get(3),
            &Value::Int(31)
        );
        t.commit_rows([rid], 7, 1);
        // Old snapshot keeps the old version; new snapshot sees the new.
        assert_eq!(t.visible(rid, &snap(0)).unwrap().get(3), &Value::Int(30));
        assert_eq!(t.visible(rid, &snap(1)).unwrap().get(3), &Value::Int(31));
        // The stale age-30 index entry filters out per snapshot.
        let idx_name = "users_age".to_owned();
        let idx = t.index_by_name(&idx_name).unwrap();
        assert_eq!(
            t.index_lookup_visible(idx, &[Value::Int(30)], &snap(1)),
            vec![]
        );
        let idx = t.index_by_name(&idx_name).unwrap();
        assert_eq!(
            t.index_lookup_visible(idx, &[Value::Int(30)], &snap(0)),
            vec![rid]
        );
    }

    #[test]
    fn versioned_delete_stays_visible_until_snapshot_passes() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 30i64]).unwrap();
        let (_, pushed) = t.delete_txn(rid, 9, &snap_w(0, 9)).unwrap();
        assert!(pushed);
        assert!(
            t.visible(rid, &snap_w(0, 9)).is_none(),
            "own delete visible"
        );
        assert!(t.visible(rid, &snap(0)).is_some(), "others still see it");
        t.commit_rows([rid], 9, 1);
        assert!(t.visible(rid, &snap(0)).is_some());
        assert!(t.visible(rid, &snap(1)).is_none());
        assert_eq!(t.visible_len(&snap(0)), 1);
        assert_eq!(t.visible_len(&snap(1)), 0);
        assert_eq!(t.find_pk_visible(&Value::Int(1), &snap(0)), Some(rid));
        assert_eq!(t.find_pk_visible(&Value::Int(1), &snap(1)), None);
    }

    #[test]
    fn write_gate_rejects_stale_snapshots() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 30i64]).unwrap();
        t.update_txn(rid, row![1i64, "a", "a@x", 31i64], 3, &snap_w(0, 3))
            .unwrap();
        t.commit_rows([rid], 3, 1);
        // Txn 4 still reads at epoch 0: first-updater-wins.
        let err = t
            .update_txn(rid, row![1i64, "a", "a@x", 32i64], 4, &snap_w(0, 4))
            .unwrap_err();
        assert!(matches!(err, StorageError::WriteConflict { .. }));
        let err = t.delete_txn(rid, 4, &snap_w(0, 4)).unwrap_err();
        assert!(matches!(err, StorageError::WriteConflict { .. }));
        // A fresh snapshot proceeds.
        t.update_txn(rid, row![1i64, "a", "a@x", 32i64], 4, &snap_w(1, 4))
            .unwrap();
    }

    #[test]
    fn vacuum_prunes_only_below_horizon_and_settles_meta() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 0i64]).unwrap();
        for e in 1..=4u64 {
            t.update_txn(
                rid,
                row![1i64, "a", "a@x", e as i64],
                100 + e,
                &snap_w(e - 1, 100 + e),
            )
            .unwrap();
            t.commit_rows([rid], 100 + e, e);
        }
        assert_eq!(t.history_versions(), 4);
        // Horizon 2: versions ending at or before epoch 2 die, the rest
        // stay (a snapshot at epoch 2 still needs the [2, 3) version).
        assert_eq!(t.vacuum(2), 2);
        assert_eq!(t.history_versions(), 2);
        assert_eq!(t.visible(rid, &snap(2)).unwrap().get(3), &Value::Int(2));
        assert_eq!(t.visible(rid, &snap(4)).unwrap().get(3), &Value::Int(4));
        // Horizon 4: everything settles, meta collapses to implicit.
        t.vacuum(4);
        assert_eq!(t.history_versions(), 0);
        assert_eq!(t.versioned_rows(), 0);
        assert_eq!(t.visible(rid, &snap(4)).unwrap().get(3), &Value::Int(4));
    }

    #[test]
    fn undo_restores_exact_version_state() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 30i64]).unwrap();
        let (before, pushed) = t
            .update_txn(rid, row![1i64, "a", "a@x", 31i64], 5, &snap_w(0, 5))
            .unwrap();
        t.undo_update(rid, before, pushed, 5);
        assert_eq!(t.history_versions(), 0, "pending version popped back");
        assert_eq!(t.versioned_rows(), 0, "meta restored to committed");
        assert_eq!(t.visible(rid, &snap(0)).unwrap().get(3), &Value::Int(30));
        // Delete + undo round-trips the same way.
        let (row, pushed) = t.delete_txn(rid, 6, &snap_w(0, 6)).unwrap();
        t.undo_delete(rid, row, pushed, 6);
        assert_eq!(t.visible(rid, &snap(0)).unwrap().get(0), &Value::Int(1));
        assert_eq!(t.find_pk(&Value::Int(1)), Some(rid));
        // Insert + undo leaves no trace at all.
        let rid2 = t
            .insert_txn(row![2i64, "b", "b@x", 9i64], 8, &snap_w(0, 8))
            .unwrap();
        t.undo_insert(rid2);
        assert!(t.get(rid2).is_none());
        assert_eq!(t.find_pk(&Value::Int(2)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn truncate_clears_but_keeps_rid_monotone() {
        let mut t = users_table();
        t.insert(row![1i64, "a", "a@x", 1i64]).unwrap();
        t.truncate();
        assert!(t.is_empty());
        let rid = t.insert(row![1i64, "a", "a@x", 1i64]).unwrap();
        assert!(rid.0 >= 1, "row ids are not reused after truncate");
    }
}
