//! Heap tables with B-tree secondary indexes.
//!
//! Rows are stored in a `BTreeMap<RowId, Row>` heap ordered by insertion;
//! every table has an implicit unique index on its primary key plus any
//! number of secondary indexes (`BTreeMap<Vec<Value>, BTreeSet<RowId>>`).
//! All index maintenance happens inside [`Table::insert`],
//! [`Table::update`], and [`Table::delete`], so the executor can never
//! leave an index stale.

use crate::error::{Result, StorageError};
use crate::row::{Row, RowId};
use crate::schema::{IndexDef, TableSchema};
use crate::stats::ColumnStats;
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};

/// Pending statistics deltas applied in a batch once this many queue
/// entries accumulate (or earlier: at statement/commit boundaries via
/// [`Table::flush_stats`], and lazily whenever the planner reads a
/// selectivity). Bounds both queue memory and estimate staleness.
const STAT_EPOCH: usize = 256;

/// Per-column statistics plus the epoch queue of not-yet-applied row
/// deltas. Behind a mutex so planner reads (`&Table`) can refresh lazily;
/// uncontended in practice — the engine serializes on the database lock.
#[derive(Debug)]
struct TableStats {
    cols: Vec<ColumnStats>,
    /// (added?, row image). An insert queues `(true, row)`, a delete
    /// `(false, row)`, an update one of each.
    pending: Vec<(bool, Row)>,
}

impl TableStats {
    /// Queues one delta. An exact inverse still in the queue cancels
    /// instead — a transaction that inserts then rolls back (undo delete),
    /// or churns the same row, never touches the sketches at all.
    fn queue(&mut self, add: bool, row: &Row) {
        if let Some(i) = self
            .pending
            .iter()
            .rposition(|(a, r)| *a != add && r == row)
        {
            self.pending.remove(i);
            return;
        }
        self.pending.push((add, row.clone()));
        if self.pending.len() >= STAT_EPOCH {
            self.apply_pending();
        }
    }

    fn apply_pending(&mut self) {
        for (add, row) in self.pending.drain(..) {
            for (s, v) in self.cols.iter_mut().zip(row.values()) {
                if add {
                    s.add(v);
                } else {
                    s.remove(v);
                }
            }
        }
    }
}

/// A live secondary index.
#[derive(Debug, Clone)]
pub struct Index {
    def: IndexDef,
    /// Column positions of the key, precomputed from the schema.
    key_pos: Vec<usize>,
    map: BTreeMap<Vec<Value>, BTreeSet<RowId>>,
}

impl Index {
    /// The index definition.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    fn key_of(&self, row: &Row) -> Vec<Value> {
        self.key_pos.iter().map(|&p| row.get(p).clone()).collect()
    }
}

/// Flattens per-key posting blocks into one rid list. `reverse` flips
/// the *key* order only: rows sharing an index key stay in rid (heap)
/// order, which is the tie order the executor's stable sort produces —
/// so ordered index scans and scan+sort return identical row sequences,
/// with or without the index.
fn flatten_key_blocks(blocks: Vec<Vec<RowId>>, reverse: bool) -> Vec<RowId> {
    let mut out = Vec::with_capacity(blocks.iter().map(Vec::len).sum());
    if reverse {
        for block in blocks.into_iter().rev() {
            out.extend(block);
        }
    } else {
        for block in blocks {
            out.extend(block);
        }
    }
    out
}

/// True when a `(lo, hi)` pair describes an empty interval —
/// `BTreeMap::range` panics on inverted bounds instead of yielding
/// nothing.
fn range_is_empty(lo: &std::ops::Bound<Value>, hi: &std::ops::Bound<Value>) -> bool {
    use std::ops::Bound as B;
    match (lo, hi) {
        (B::Included(a), B::Included(b)) => a > b,
        (B::Included(a), B::Excluded(b)) | (B::Excluded(a), B::Included(b)) => a >= b,
        (B::Excluded(a), B::Excluded(b)) => a >= b,
        (B::Unbounded, _) | (_, B::Unbounded) => false,
    }
}

/// A heap table plus its indexes.
#[derive(Debug)]
pub struct Table {
    schema: TableSchema,
    /// Dense id assigned by the catalog; keys buffer-pool pages.
    id: u32,
    rows: BTreeMap<RowId, Row>,
    next_rid: u64,
    /// Implicit unique index: pk value -> row id.
    pk_index: BTreeMap<Value, RowId>,
    indexes: Vec<Index>,
    /// Per-column statistics, parallel to the schema's column list. Row
    /// mutations queue deltas; the sketches/histograms refresh in epochs
    /// (queue overflow, statement/commit boundaries, planner reads)
    /// instead of on every row write.
    stats: Mutex<TableStats>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            schema: self.schema.clone(),
            id: self.id,
            rows: self.rows.clone(),
            next_rid: self.next_rid,
            pk_index: self.pk_index.clone(),
            indexes: self.indexes.clone(),
            stats: Mutex::new({
                let s = self.stats.lock();
                TableStats {
                    cols: s.cols.clone(),
                    pending: s.pending.clone(),
                }
            }),
        }
    }
}

impl Table {
    /// Creates an empty table with catalog id `id`.
    pub fn new(schema: TableSchema, id: u32) -> Self {
        let cols = schema
            .columns()
            .iter()
            .map(|c| ColumnStats::new(c.ty))
            .collect();
        Table {
            schema,
            id,
            rows: BTreeMap::new(),
            next_rid: 0,
            pk_index: BTreeMap::new(),
            indexes: Vec::new(),
            stats: Mutex::new(TableStats {
                cols,
                pending: Vec::new(),
            }),
        }
    }

    fn stats_add(&mut self, row: &Row) {
        self.stats.get_mut().queue(true, row);
    }

    fn stats_remove(&mut self, row: &Row) {
        self.stats.get_mut().queue(false, row);
    }

    /// Applies every queued statistics delta now. The engine calls this at
    /// statement (autocommit) and commit boundaries, so estimates never
    /// lag committed data by more than one epoch. Takes `&self` — the
    /// queue lives behind its own mutex, so concurrent enqueuers (writer
    /// threads under the engine latch) and lazy planner-side flushes
    /// never race.
    pub fn flush_stats(&self) {
        self.stats.lock().apply_pending();
    }

    /// Reads `column`'s statistics through `f`, refreshing queued deltas
    /// first (lazy epoch boundary), so the planner always sees numbers
    /// current as of the last mutation.
    pub fn with_column_stats<T>(
        &self,
        column: &str,
        f: impl FnOnce(&ColumnStats) -> T,
    ) -> Option<T> {
        let pos = self.schema.column_pos(column)?;
        let mut stats = self.stats.lock();
        if !stats.pending.is_empty() {
            stats.apply_pending();
        }
        stats.cols.get(pos).map(f)
    }

    /// Queued statistics deltas not yet folded into the estimators
    /// (diagnostics and tests).
    pub fn pending_stat_deltas(&self) -> usize {
        self.stats.lock().pending.len()
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The catalog id (used for buffer-pool page keys).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The heap page number a row lives on (model; see [`crate::bufferpool`]).
    pub fn page_of(&self, rid: RowId) -> u64 {
        rid.0 / self.schema.rows_per_page_hint as u64
    }

    /// Validates a row against the schema: arity, type compatibility
    /// (coercing where allowed), NOT NULL.
    ///
    /// # Errors
    ///
    /// Returns the specific constraint error; the row is not modified on
    /// failure.
    pub fn validate(&self, row: &Row) -> Result<Row> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::TypeMismatch {
                column: format!("{}(*)", self.schema.name()),
                expected: format!("{} columns", self.schema.arity()),
                got: format!("{} columns", row.arity()),
            });
        }
        let mut out = Vec::with_capacity(row.arity());
        for (col, v) in self.schema.columns().iter().zip(row.values()) {
            if v.is_null() {
                if col.not_null {
                    return Err(StorageError::NullViolation(format!(
                        "{}.{}",
                        self.schema.name(),
                        col.name
                    )));
                }
                out.push(Value::Null);
                continue;
            }
            match v.coerce_to(col.ty) {
                Some(cv) => out.push(cv),
                None => {
                    return Err(StorageError::TypeMismatch {
                        column: format!("{}.{}", self.schema.name(), col.name),
                        expected: col.ty.to_string(),
                        got: format!("{v}"),
                    })
                }
            }
        }
        Ok(Row::new(out))
    }

    /// Inserts a row, enforcing PK and unique-index constraints.
    ///
    /// Returns the new row's heap id.
    ///
    /// # Errors
    ///
    /// [`StorageError::UniqueViolation`] on a duplicate key; validation
    /// errors per [`Table::validate`].
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        let row = self.validate(&row)?;
        let pk = row.get(self.schema.primary_key_pos()).clone();
        if !pk.is_null() && self.pk_index.contains_key(&pk) {
            return Err(StorageError::UniqueViolation {
                index: format!("{}_pkey", self.schema.name()),
                key: pk.to_string(),
            });
        }
        for idx in &self.indexes {
            if idx.def.unique {
                let key = idx.key_of(&row);
                if !key.iter().any(Value::is_null) {
                    if let Some(set) = idx.map.get(&key) {
                        if !set.is_empty() {
                            return Err(StorageError::UniqueViolation {
                                index: idx.def.name.clone(),
                                key: format!("{key:?}"),
                            });
                        }
                    }
                }
            }
        }
        let rid = RowId(self.next_rid);
        self.next_rid += 1;
        if !pk.is_null() {
            self.pk_index.insert(pk, rid);
        }
        for idx in &mut self.indexes {
            let key = idx.key_of(&row);
            idx.map.entry(key).or_default().insert(rid);
        }
        self.stats_add(&row);
        self.rows.insert(rid, row);
        Ok(rid)
    }

    /// Reinserts a row under a specific id (transaction rollback path).
    ///
    /// Bypasses validation — the row was valid when it was first stored.
    pub(crate) fn restore(&mut self, rid: RowId, row: Row) {
        let pk = row.get(self.schema.primary_key_pos()).clone();
        if !pk.is_null() {
            self.pk_index.insert(pk, rid);
        }
        for idx in &mut self.indexes {
            let key = idx.key_of(&row);
            idx.map.entry(key).or_default().insert(rid);
        }
        self.next_rid = self.next_rid.max(rid.0 + 1);
        self.stats_add(&row);
        self.rows.insert(rid, row);
    }

    /// Fetches a row by heap id.
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.rows.get(&rid)
    }

    /// Looks up a row id by primary-key value.
    pub fn find_pk(&self, pk: &Value) -> Option<RowId> {
        self.pk_index.get(pk).copied()
    }

    /// Replaces the row at `rid`, maintaining all indexes.
    ///
    /// Returns the previous row image.
    ///
    /// # Errors
    ///
    /// Validation and uniqueness errors as for insert; unknown `rid`
    /// reports an internal error via [`StorageError::Eval`].
    pub fn update(&mut self, rid: RowId, new_row: Row) -> Result<Row> {
        let new_row = self.validate(&new_row)?;
        let old_row = self
            .rows
            .get(&rid)
            .cloned()
            .ok_or_else(|| StorageError::Eval(format!("update of missing row {rid}")))?;
        let pk_pos = self.schema.primary_key_pos();
        let (old_pk, new_pk) = (old_row.get(pk_pos), new_row.get(pk_pos));
        if old_pk != new_pk && !new_pk.is_null() && self.pk_index.contains_key(new_pk) {
            return Err(StorageError::UniqueViolation {
                index: format!("{}_pkey", self.schema.name()),
                key: new_pk.to_string(),
            });
        }
        for idx in &self.indexes {
            if idx.def.unique {
                let new_key = idx.key_of(&new_row);
                if new_key != idx.key_of(&old_row) && !new_key.iter().any(Value::is_null) {
                    if let Some(set) = idx.map.get(&new_key) {
                        if set.iter().any(|r| *r != rid) {
                            return Err(StorageError::UniqueViolation {
                                index: idx.def.name.clone(),
                                key: format!("{new_key:?}"),
                            });
                        }
                    }
                }
            }
        }
        // Constraints hold; apply index maintenance.
        if old_pk != new_pk {
            self.pk_index.remove(old_pk);
            if !new_pk.is_null() {
                self.pk_index.insert(new_pk.clone(), rid);
            }
        }
        for idx in &mut self.indexes {
            let old_key = idx.key_of(&old_row);
            let new_key = idx.key_of(&new_row);
            if old_key != new_key {
                if let Some(set) = idx.map.get_mut(&old_key) {
                    set.remove(&rid);
                    if set.is_empty() {
                        idx.map.remove(&old_key);
                    }
                }
                idx.map.entry(new_key).or_default().insert(rid);
            }
        }
        self.stats_remove(&old_row);
        self.stats_add(&new_row);
        self.rows.insert(rid, new_row);
        Ok(old_row)
    }

    /// Deletes the row at `rid`, returning its final image.
    pub fn delete(&mut self, rid: RowId) -> Option<Row> {
        let row = self.rows.remove(&rid)?;
        let pk = row.get(self.schema.primary_key_pos());
        if !pk.is_null() {
            self.pk_index.remove(pk);
        }
        for idx in &mut self.indexes {
            let key = idx.key_of(&row);
            if let Some(set) = idx.map.get_mut(&key) {
                set.remove(&rid);
                if set.is_empty() {
                    idx.map.remove(&key);
                }
            }
        }
        self.stats_remove(&row);
        Some(row)
    }

    /// Iterates over `(RowId, &Row)` in heap order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().map(|(r, row)| (*r, row))
    }

    /// Creates a secondary index, backfilling existing rows.
    ///
    /// # Errors
    ///
    /// [`StorageError::AlreadyExists`] for a duplicate name; unknown
    /// columns report [`StorageError::UnknownColumn`]; a unique index over
    /// data that already contains duplicates reports
    /// [`StorageError::UniqueViolation`].
    pub fn create_index(&mut self, def: IndexDef) -> Result<()> {
        if self.indexes.iter().any(|i| i.def.name == def.name) {
            return Err(StorageError::AlreadyExists(def.name));
        }
        let key_pos: Vec<usize> = def
            .columns
            .iter()
            .map(|c| self.schema.require_column(c))
            .collect::<Result<_>>()?;
        let mut idx = Index {
            def,
            key_pos,
            map: BTreeMap::new(),
        };
        for (rid, row) in &self.rows {
            let key = idx.key_of(row);
            let set = idx.map.entry(key.clone()).or_default();
            if idx.def.unique && !set.is_empty() && !key.iter().any(Value::is_null) {
                return Err(StorageError::UniqueViolation {
                    index: idx.def.name.clone(),
                    key: format!("{key:?}"),
                });
            }
            set.insert(*rid);
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// The index whose key columns exactly match `columns`, if any.
    pub fn index_on(&self, columns: &[String]) -> Option<&Index> {
        self.indexes.iter().find(|i| i.def.columns == columns)
    }

    /// The index named `name`, if any.
    pub fn index_by_name(&self, name: &str) -> Option<&Index> {
        self.indexes.iter().find(|i| i.def.name == name)
    }

    /// The index whose key is a prefix of `columns` usable for an
    /// equality lookup on all its key columns.
    ///
    /// Fully deterministic: prefers the widest covering index, then the
    /// most selective (most distinct keys) — e.g. for
    /// `WHERE to_user_id = ? AND status = ?` the FK index beats the
    /// low-cardinality status index — and finally the lexicographically
    /// smallest index name, so equal-width equal-selectivity candidates
    /// never flip-flop between runs.
    pub fn best_index_for(&self, eq_columns: &[&str]) -> Option<&Index> {
        self.indexes
            .iter()
            .filter(|i| {
                i.def
                    .columns
                    .iter()
                    .all(|c| eq_columns.contains(&c.as_str()))
            })
            .max_by_key(|i| {
                (
                    i.def.columns.len(),
                    i.distinct_keys(),
                    std::cmp::Reverse(i.def.name.as_str()),
                )
            })
    }

    /// Row ids matching an exact key on `idx`.
    pub fn index_lookup(&self, idx: &Index, key: &[Value]) -> Vec<RowId> {
        idx.map
            .get(key)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Row ids whose primary key falls in `[from, to]`, in key order
    /// (reversed when `reverse`).
    pub fn pk_range_scan(
        &self,
        from: &crate::plan::Bound,
        to: &crate::plan::Bound,
        reverse: bool,
    ) -> Vec<RowId> {
        use std::ops::Bound as B;
        let lo = match from {
            crate::plan::Bound::Unbounded => B::Unbounded,
            crate::plan::Bound::Included(v) => B::Included(v.clone()),
            crate::plan::Bound::Excluded(v) => B::Excluded(v.clone()),
        };
        let hi = match to {
            crate::plan::Bound::Unbounded => B::Unbounded,
            crate::plan::Bound::Included(v) => B::Included(v.clone()),
            crate::plan::Bound::Excluded(v) => B::Excluded(v.clone()),
        };
        if range_is_empty(&lo, &hi) {
            return Vec::new();
        }
        let mut out: Vec<RowId> = self.pk_index.range((lo, hi)).map(|(_, r)| *r).collect();
        if reverse {
            out.reverse();
        }
        out
    }

    /// Row ids from `idx` whose key starts with `eq_prefix` and whose
    /// next key column lies within `[from, to]`, in full key order
    /// (reversed when `reverse`).
    pub fn index_range_scan(
        &self,
        idx: &Index,
        eq_prefix: &[Value],
        from: &crate::plan::Bound,
        to: &crate::plan::Bound,
        reverse: bool,
    ) -> Vec<RowId> {
        use std::ops::Bound as B;
        let p = eq_prefix.len();
        debug_assert!(p < idx.def.columns.len(), "range column must exist");
        // Start at the first key >= prefix + lower endpoint; keys sharing
        // the endpoint value but carrying longer suffixes sort after the
        // bare endpoint key, so Included over the extended prefix is a
        // correct lower bound for Excluded endpoints too (the equal run
        // is skipped below).
        let start: B<Vec<Value>> = match from {
            crate::plan::Bound::Unbounded => {
                if p == 0 {
                    B::Unbounded
                } else {
                    B::Included(eq_prefix.to_vec())
                }
            }
            crate::plan::Bound::Included(v) | crate::plan::Bound::Excluded(v) => {
                let mut k = eq_prefix.to_vec();
                k.push(v.clone());
                B::Included(k)
            }
        };
        let mut blocks: Vec<Vec<RowId>> = Vec::new();
        for (key, rids) in idx.map.range((start, B::Unbounded)) {
            if key.len() <= p || key[..p] != eq_prefix[..] {
                break;
            }
            let kv = &key[p];
            if let crate::plan::Bound::Excluded(v) = from {
                if kv == v {
                    continue;
                }
            }
            match to {
                crate::plan::Bound::Included(v) => {
                    if kv > v {
                        break;
                    }
                }
                crate::plan::Bound::Excluded(v) => {
                    if kv >= v {
                        break;
                    }
                }
                crate::plan::Bound::Unbounded => {}
            }
            blocks.push(rids.iter().copied().collect());
        }
        flatten_key_blocks(blocks, reverse)
    }

    /// Row ids from `idx` whose key starts with `prefix` (a proper prefix
    /// of the key columns), in full key order (reversed when `reverse`).
    pub fn index_prefix_scan(&self, idx: &Index, prefix: &[Value], reverse: bool) -> Vec<RowId> {
        use std::ops::Bound as B;
        let p = prefix.len();
        let start: B<Vec<Value>> = if p == 0 {
            B::Unbounded
        } else {
            B::Included(prefix.to_vec())
        };
        let mut blocks: Vec<Vec<RowId>> = Vec::new();
        for (key, rids) in idx.map.range((start, B::Unbounded)) {
            if key.len() < p || key[..p] != prefix[..] {
                break;
            }
            blocks.push(rids.iter().copied().collect());
        }
        flatten_key_blocks(blocks, reverse)
    }

    /// Row ids matching any of `keys` on `idx`'s first key column, in
    /// key order (`keys` must be sorted; reversed when `reverse`). Used
    /// for `IN (...)` and OR-equality chains.
    pub fn index_multi_lookup(&self, idx: &Index, keys: &[Value], reverse: bool) -> Vec<RowId> {
        let mut out = Vec::new();
        let ordered_keys: Vec<&Value> = if reverse {
            keys.iter().rev().collect()
        } else {
            keys.iter().collect()
        };
        if idx.def.columns.len() == 1 {
            // Within one key, postings stay in rid (heap) order even when
            // the key order is reversed — see flatten_key_blocks.
            for key in ordered_keys {
                if let Some(set) = idx.map.get(std::slice::from_ref(key)) {
                    out.extend(set.iter().copied());
                }
            }
        } else {
            for key in ordered_keys {
                out.extend(self.index_prefix_scan(idx, std::slice::from_ref(key), reverse));
            }
        }
        out
    }

    /// Row ids from `idx` whose key starts with `eq_prefix` and whose
    /// next key column equals any of `keys` — the multi-range scan behind
    /// `a = ? AND b IN (...)` on an `(a, b, ...)` index. `keys` must be
    /// sorted; key blocks come back in full key order (reversed when
    /// `reverse`), so the result is index-key ordered.
    pub fn index_in_scan(
        &self,
        idx: &Index,
        eq_prefix: &[Value],
        keys: &[Value],
        reverse: bool,
    ) -> Vec<RowId> {
        let p = eq_prefix.len();
        debug_assert!(p < idx.def.columns.len(), "IN column must exist");
        let full = p + 1 == idx.def.columns.len();
        let ordered_keys: Vec<&Value> = if reverse {
            keys.iter().rev().collect()
        } else {
            keys.iter().collect()
        };
        let mut out = Vec::new();
        let mut probe: Vec<Value> = Vec::with_capacity(p + 1);
        for k in ordered_keys {
            probe.clear();
            probe.extend_from_slice(eq_prefix);
            probe.push((*k).clone());
            if full {
                if let Some(set) = idx.map.get(&probe) {
                    // Postings stay in rid (heap) order within one key.
                    out.extend(set.iter().copied());
                }
            } else {
                out.extend(self.index_prefix_scan(idx, &probe, reverse));
            }
        }
        out
    }

    /// All secondary indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Removes every row (used by tests and reseeding); indexes are kept
    /// but emptied, and row ids are *not* reused.
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.pk_index.clear();
        for idx in &mut self.indexes {
            idx.map.clear();
        }
        let stats = self.stats.get_mut();
        stats.pending.clear();
        for s in &mut stats.cols {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::ValueType;

    fn users_table() -> Table {
        let schema = TableSchema::builder("users")
            .pk("id")
            .column(ColumnDef::new("name", ValueType::Text).not_null())
            .column(ColumnDef::new("email", ValueType::Text).unique())
            .column(ColumnDef::new("age", ValueType::Int))
            .build()
            .unwrap();
        let mut t = Table::new(schema, 1);
        t.create_index(IndexDef {
            name: "users_email".into(),
            columns: vec!["email".into()],
            unique: true,
        })
        .unwrap();
        t.create_index(IndexDef {
            name: "users_age".into(),
            columns: vec!["age".into()],
            unique: false,
        })
        .unwrap();
        t
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "alice", "a@x", 30i64]).unwrap();
        assert_eq!(t.get(rid).unwrap().get(1), &Value::Text("alice".into()));
        assert_eq!(t.len(), 1);
        assert_eq!(t.find_pk(&Value::Int(1)), Some(rid));
    }

    #[test]
    fn pk_duplicate_rejected() {
        let mut t = users_table();
        t.insert(row![1i64, "a", "a@x", 1i64]).unwrap();
        let err = t.insert(row![1i64, "b", "b@x", 2i64]).unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
        assert_eq!(t.len(), 1, "failed insert must not leave residue");
    }

    #[test]
    fn unique_index_rejected() {
        let mut t = users_table();
        t.insert(row![1i64, "a", "same@x", 1i64]).unwrap();
        let err = t.insert(row![2i64, "b", "same@x", 2i64]).unwrap_err();
        assert!(err.to_string().contains("users_email"));
    }

    #[test]
    fn unique_index_allows_nulls() {
        let mut t = users_table();
        t.insert(row![1i64, "a", Value::Null, 1i64]).unwrap();
        t.insert(row![2i64, "b", Value::Null, 2i64]).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn not_null_enforced() {
        let mut t = users_table();
        let err = t.insert(row![1i64, Value::Null, "a@x", 1i64]).unwrap_err();
        assert!(matches!(err, StorageError::NullViolation(_)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = users_table();
        let err = t.insert(row![1i64, "a"]).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn type_coercion_on_insert() {
        let schema = TableSchema::builder("m")
            .pk("id")
            .column(ColumnDef::new("score", ValueType::Float))
            .build()
            .unwrap();
        let mut t = Table::new(schema, 2);
        let rid = t.insert(row![1i64, 5i64]).unwrap();
        assert_eq!(t.get(rid).unwrap().get(1), &Value::Float(5.0));
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 30i64]).unwrap();
        t.insert(row![2i64, "b", "b@x", 30i64]).unwrap();
        let idx = t.index_on(&["age".to_string()]).unwrap();
        assert_eq!(t.index_lookup(idx, &[Value::Int(30)]).len(), 2);
        let old = t.update(rid, row![1i64, "a", "a@x", 31i64]).unwrap();
        assert_eq!(old.get(3), &Value::Int(30));
        let idx = t.index_on(&["age".to_string()]).unwrap();
        assert_eq!(t.index_lookup(idx, &[Value::Int(30)]).len(), 1);
        assert_eq!(t.index_lookup(idx, &[Value::Int(31)]).len(), 1);
    }

    #[test]
    fn update_to_conflicting_unique_rejected_without_damage() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 1i64]).unwrap();
        t.insert(row![2i64, "b", "b@x", 2i64]).unwrap();
        let err = t.update(rid, row![1i64, "a", "b@x", 1i64]).unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
        // Old index entries intact.
        let idx = t.index_on(&["email".to_string()]).unwrap();
        assert_eq!(t.index_lookup(idx, &[Value::Text("a@x".into())]).len(), 1);
    }

    #[test]
    fn update_pk_change() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 1i64]).unwrap();
        t.update(rid, row![9i64, "a", "a@x", 1i64]).unwrap();
        assert_eq!(t.find_pk(&Value::Int(9)), Some(rid));
        assert_eq!(t.find_pk(&Value::Int(1)), None);
    }

    #[test]
    fn delete_removes_everywhere() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 30i64]).unwrap();
        let row = t.delete(rid).unwrap();
        assert_eq!(row.get(0), &Value::Int(1));
        assert!(t.is_empty());
        assert_eq!(t.find_pk(&Value::Int(1)), None);
        let idx = t.index_on(&["age".to_string()]).unwrap();
        assert!(t.index_lookup(idx, &[Value::Int(30)]).is_empty());
        assert!(t.delete(rid).is_none(), "double delete returns None");
    }

    #[test]
    fn restore_preserves_rid_and_indexes() {
        let mut t = users_table();
        let rid = t.insert(row![1i64, "a", "a@x", 30i64]).unwrap();
        let row = t.delete(rid).unwrap();
        t.restore(rid, row);
        assert_eq!(t.find_pk(&Value::Int(1)), Some(rid));
        let idx = t.index_on(&["age".to_string()]).unwrap();
        assert_eq!(t.index_lookup(idx, &[Value::Int(30)]), vec![rid]);
    }

    #[test]
    fn create_index_backfills() {
        let mut t = users_table();
        t.insert(row![1i64, "a", "a@x", 10i64]).unwrap();
        t.insert(row![2i64, "b", "b@x", 10i64]).unwrap();
        t.create_index(IndexDef {
            name: "users_name".into(),
            columns: vec!["name".into()],
            unique: false,
        })
        .unwrap();
        let idx = t.index_on(&["name".to_string()]).unwrap();
        assert_eq!(t.index_lookup(idx, &[Value::Text("a".into())]).len(), 1);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = users_table();
        let err = t
            .create_index(IndexDef {
                name: "users_email".into(),
                columns: vec!["name".into()],
                unique: false,
            })
            .unwrap_err();
        assert!(matches!(err, StorageError::AlreadyExists(_)));
    }

    #[test]
    fn unique_backfill_over_duplicates_fails() {
        let mut t = users_table();
        t.insert(row![1i64, "same", "a@x", 1i64]).unwrap();
        t.insert(row![2i64, "same", "b@x", 2i64]).unwrap();
        let err = t
            .create_index(IndexDef {
                name: "users_name_u".into(),
                columns: vec!["name".into()],
                unique: true,
            })
            .unwrap_err();
        assert!(matches!(err, StorageError::UniqueViolation { .. }));
    }

    #[test]
    fn best_index_prefers_widest_match() {
        let schema = TableSchema::builder("t")
            .pk("id")
            .column(ColumnDef::new("a", ValueType::Int))
            .column(ColumnDef::new("b", ValueType::Int))
            .build()
            .unwrap();
        let mut t = Table::new(schema, 3);
        t.create_index(IndexDef {
            name: "t_a".into(),
            columns: vec!["a".into()],
            unique: false,
        })
        .unwrap();
        t.create_index(IndexDef {
            name: "t_ab".into(),
            columns: vec!["a".into(), "b".into()],
            unique: false,
        })
        .unwrap();
        let best = t.best_index_for(&["a", "b"]).unwrap();
        assert_eq!(best.def().name, "t_ab");
        let only_a = t.best_index_for(&["a"]).unwrap();
        assert_eq!(only_a.def().name, "t_a");
        assert!(
            t.best_index_for(&["b"]).is_none()
                || t.best_index_for(&["b"]).unwrap().def().columns == vec!["b".to_string()]
        );
    }

    #[test]
    fn best_index_breaks_ties_by_selectivity() {
        let schema = TableSchema::builder("inv")
            .pk("id")
            .column(ColumnDef::new("to_user", ValueType::Int))
            .column(ColumnDef::new("status", ValueType::Int))
            .build()
            .unwrap();
        let mut t = Table::new(schema, 9);
        t.create_index(IndexDef {
            name: "inv_status".into(),
            columns: vec!["status".into()],
            unique: false,
        })
        .unwrap();
        t.create_index(IndexDef {
            name: "inv_to_user".into(),
            columns: vec!["to_user".into()],
            unique: false,
        })
        .unwrap();
        // Many users, two statuses: the user index is far more selective.
        for i in 0..100i64 {
            t.insert(row![i, i % 50, i % 2]).unwrap();
        }
        let best = t.best_index_for(&["to_user", "status"]).unwrap();
        assert_eq!(best.def().name, "inv_to_user");
    }

    #[test]
    fn best_index_tie_breaks_by_name() {
        let schema = TableSchema::builder("t")
            .pk("id")
            .column(ColumnDef::new("a", ValueType::Int))
            .column(ColumnDef::new("b", ValueType::Int))
            .build()
            .unwrap();
        let mut t = Table::new(schema, 7);
        // Two single-column indexes over columns with identical
        // cardinality: width and selectivity tie, so the name decides —
        // deterministically, regardless of creation order.
        t.create_index(IndexDef {
            name: "t_zz".into(),
            columns: vec!["a".into()],
            unique: false,
        })
        .unwrap();
        t.create_index(IndexDef {
            name: "t_aa".into(),
            columns: vec!["b".into()],
            unique: false,
        })
        .unwrap();
        for i in 0..10i64 {
            t.insert(row![i, i % 5, i % 5]).unwrap();
        }
        assert_eq!(t.best_index_for(&["a", "b"]).unwrap().def().name, "t_aa");

        // Same table with the indexes created in the opposite order
        // picks the same winner.
        let schema = TableSchema::builder("t")
            .pk("id")
            .column(ColumnDef::new("a", ValueType::Int))
            .column(ColumnDef::new("b", ValueType::Int))
            .build()
            .unwrap();
        let mut t2 = Table::new(schema, 8);
        t2.create_index(IndexDef {
            name: "t_aa".into(),
            columns: vec!["b".into()],
            unique: false,
        })
        .unwrap();
        t2.create_index(IndexDef {
            name: "t_zz".into(),
            columns: vec!["a".into()],
            unique: false,
        })
        .unwrap();
        for i in 0..10i64 {
            t2.insert(row![i, i % 5, i % 5]).unwrap();
        }
        assert_eq!(t2.best_index_for(&["a", "b"]).unwrap().def().name, "t_aa");
    }

    #[test]
    fn page_of_groups_rows() {
        let schema = TableSchema::builder("t")
            .pk("id")
            .rows_per_page(4)
            .build()
            .unwrap();
        let t = Table::new(schema, 4);
        assert_eq!(t.page_of(RowId(0)), 0);
        assert_eq!(t.page_of(RowId(3)), 0);
        assert_eq!(t.page_of(RowId(4)), 1);
    }

    #[test]
    fn truncate_clears_but_keeps_rid_monotone() {
        let mut t = users_table();
        t.insert(row![1i64, "a", "a@x", 1i64]).unwrap();
        t.truncate();
        assert!(t.is_empty());
        let rid = t.insert(row![1i64, "a", "a@x", 1i64]).unwrap();
        assert!(rid.0 >= 1, "row ids are not reused after truncate");
    }
}
