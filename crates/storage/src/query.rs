//! Logical statement AST: the engine's "prepared statement" form.
//!
//! ORM queries compile to these structures directly; the SQL parser
//! ([`crate::sql`]) produces them from text. `Display` renders canonical
//! SQL, and the parser accepts everything `Display` emits (verified by a
//! round-trip property test), so the AST doubles as a canonical query
//! fingerprint for CacheGenie's pattern matching.

use crate::expr::{ColumnRef, Expr};
use crate::row::Row;
use crate::schema::{IndexDef, TableSchema};
use crate::value::Value;
use std::fmt;

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub table: String,
    /// Alias used to qualify columns; defaults to the table name.
    pub alias: Option<String>,
}

impl TableRef {
    /// References `table` without an alias.
    pub fn new(table: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: None,
        }
    }

    /// References `table` with `alias`.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: Some(alias.into()),
        }
    }

    /// The name columns qualify against.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.table),
            None => f.write_str(&self.table),
        }
    }
}

/// Join flavour. Only the two the ORM generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT OUTER JOIN.
    Left,
}

/// One join step in a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join flavour.
    pub kind: JoinKind,
    /// Joined table.
    pub table: TableRef,
    /// ON condition (unbound expression).
    pub on: Expr,
}

/// Aggregate functions supported by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(col)`.
    Count,
    /// `SUM(col)`.
    Sum,
    /// `AVG(col)`.
    Avg,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// One item of a SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every column of the FROM chain, in join order.
    Wildcard,
    /// A scalar expression with an optional output alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column name override.
        alias: Option<String>,
    },
    /// An aggregate over the (grouped) input.
    Aggregate {
        /// Aggregate function.
        func: AggFunc,
        /// Argument; `None` means `COUNT(*)`.
        arg: Option<Expr>,
        /// Output column name override.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// A plain column projection.
    pub fn column(name: impl Into<String>) -> Self {
        SelectItem::Expr {
            expr: Expr::col(name),
            alias: None,
        }
    }

    /// `COUNT(*)` shorthand.
    pub fn count_star() -> Self {
        SelectItem::Aggregate {
            func: AggFunc::Count,
            arg: None,
            alias: None,
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => write!(f, "{expr} AS {a}"),
                None => write!(f, "{expr}"),
            },
            SelectItem::Aggregate { func, arg, alias } => {
                match arg {
                    Some(e) => write!(f, "{func}({e})")?,
                    None => write!(f, "{func}(*)")?,
                }
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

/// A sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression (usually a column).
    pub expr: Expr,
    /// True for `DESC`.
    pub desc: bool,
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            self.expr,
            if self.desc { " DESC" } else { " ASC" }
        )
    }
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Base table.
    pub from: TableRef,
    /// Join chain, applied left to right.
    pub joins: Vec<Join>,
    /// Projection list (never empty).
    pub projection: Vec<SelectItem>,
    /// WHERE clause.
    pub predicate: Option<Expr>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// OFFSET row count.
    pub offset: Option<u64>,
}

impl Select {
    /// A `SELECT * FROM table` starting point.
    pub fn star(table: impl Into<String>) -> Self {
        Select {
            from: TableRef::new(table),
            joins: Vec::new(),
            projection: vec![SelectItem::Wildcard],
            predicate: None,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// Replaces the projection.
    pub fn project(mut self, items: Vec<SelectItem>) -> Self {
        self.projection = items;
        self
    }

    /// Sets the WHERE clause (replacing any previous one).
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.predicate = Some(predicate);
        self
    }

    /// Appends an inner join.
    pub fn join(mut self, table: TableRef, on: Expr) -> Self {
        self.joins.push(Join {
            kind: JoinKind::Inner,
            table,
            on,
        });
        self
    }

    /// Appends an ORDER BY key.
    pub fn order(mut self, column: impl Into<String>, desc: bool) -> Self {
        self.order_by.push(OrderKey {
            expr: Expr::col(column),
            desc,
        });
        self
    }

    /// Sets LIMIT.
    pub fn limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// True if any projection item is an aggregate.
    pub fn is_aggregate(&self) -> bool {
        self.projection
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }))
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.from)?;
        for j in &self.joins {
            let kw = match j.kind {
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT JOIN",
            };
            write!(f, " {kw} {} ON {}", j.table, j.on)?;
        }
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{k}")?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

/// An INSERT statement (multi-row VALUES form).
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Column list; empty means "all columns in schema order".
    pub columns: Vec<String>,
    /// One expression list per row.
    pub rows: Vec<Vec<Expr>>,
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        f.write_str(" VALUES ")?;
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str("(")?;
            for (j, e) in r.iter().enumerate() {
                if j > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{e}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// An UPDATE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `SET col = expr` assignments.
    pub sets: Vec<(String, Expr)>,
    /// WHERE clause; `None` updates every row.
    pub predicate: Option<Expr>,
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        for (i, (c, e)) in self.sets.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c} = {e}")?;
        }
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        Ok(())
    }
}

/// A DELETE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// WHERE clause; `None` deletes every row.
    pub predicate: Option<Expr>,
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        Ok(())
    }
}

/// Any executable statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT.
    Select(Select),
    /// EXPLAIN SELECT — plans the query without executing it, returning
    /// one text row per pipeline stage.
    Explain(Select),
    /// INSERT.
    Insert(Insert),
    /// UPDATE.
    Update(Update),
    /// DELETE.
    Delete(Delete),
    /// CREATE TABLE from a validated schema.
    CreateTable(TableSchema),
    /// CREATE INDEX on `table`.
    CreateIndex {
        /// Table to index.
        table: String,
        /// Index definition.
        def: IndexDef,
    },
    /// BEGIN a transaction.
    Begin,
    /// COMMIT the active transaction.
    Commit,
    /// ROLLBACK the active transaction.
    Rollback,
}

impl Statement {
    /// True for statements that modify table data.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_)
        )
    }
}

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names (empty for writes).
    pub columns: Vec<String>,
    /// Output rows (empty for writes).
    pub rows: Vec<Row>,
    /// Rows affected by a write.
    pub rows_affected: u64,
}

impl QueryResult {
    /// A write result affecting `n` rows.
    pub fn affected(n: u64) -> Self {
        QueryResult {
            rows_affected: n,
            ..Default::default()
        }
    }

    /// The single value of a single-row, single-column result (e.g.
    /// `COUNT(*)`), if the shape matches.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].arity() == 1 {
            Some(self.rows[0].get(0))
        } else {
            None
        }
    }

    /// True if no rows were returned.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_display_canonical() {
        let s = Select::star("wall")
            .filter(Expr::col("user_id").eq(Expr::Param(0)))
            .order("date_posted", true)
            .limit(20);
        assert_eq!(
            s.to_string(),
            "SELECT * FROM wall WHERE (user_id = $1) ORDER BY date_posted DESC LIMIT 20"
        );
    }

    #[test]
    fn join_display() {
        let s = Select::star("groups")
            .join(
                TableRef::new("membership"),
                Expr::qcol("membership", "group_id").eq(Expr::qcol("groups", "id")),
            )
            .filter(Expr::qcol("membership", "user_id").eq(Expr::Param(0)));
        let t = s.to_string();
        assert!(t.contains("JOIN membership ON"));
        assert!(t.contains("membership.group_id = groups.id"));
    }

    #[test]
    fn aggregate_display_and_flag() {
        let s = Select::star("friends")
            .project(vec![SelectItem::count_star()])
            .filter(Expr::col("user_id").eq(Expr::Param(0)));
        assert!(s.is_aggregate());
        assert!(s.to_string().starts_with("SELECT COUNT(*) FROM friends"));
    }

    #[test]
    fn insert_display() {
        let i = Insert {
            table: "users".into(),
            columns: vec!["id".into(), "name".into()],
            rows: vec![vec![Expr::lit(1i64), Expr::lit("alice")]],
        };
        assert_eq!(
            i.to_string(),
            "INSERT INTO users (id, name) VALUES (1, 'alice')"
        );
    }

    #[test]
    fn update_delete_display() {
        let u = Update {
            table: "users".into(),
            sets: vec![("name".into(), Expr::lit("bob"))],
            predicate: Some(Expr::col("id").eq(Expr::lit(1i64))),
        };
        assert_eq!(
            u.to_string(),
            "UPDATE users SET name = 'bob' WHERE (id = 1)"
        );
        let d = Delete {
            table: "users".into(),
            predicate: None,
        };
        assert_eq!(d.to_string(), "DELETE FROM users");
    }

    #[test]
    fn scalar_result_shape() {
        let r = QueryResult {
            columns: vec!["count".into()],
            rows: vec![Row::new(vec![Value::Int(3)])],
            rows_affected: 0,
        };
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
        let empty = QueryResult::default();
        assert_eq!(empty.scalar(), None);
        assert!(empty.is_empty());
    }

    #[test]
    fn statement_is_write() {
        assert!(Statement::Delete(Delete {
            table: "t".into(),
            predicate: None
        })
        .is_write());
        assert!(!Statement::Select(Select::star("t")).is_write());
    }

    #[test]
    fn table_ref_binding_name() {
        assert_eq!(TableRef::new("t").binding_name(), "t");
        assert_eq!(TableRef::aliased("t", "x").binding_name(), "x");
    }
}
