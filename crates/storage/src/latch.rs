//! Statement-scoped table latching: the middle level of the engine's
//! latch hierarchy.
//!
//! The hierarchy is: **catalog read-write latch** (one per database; DDL
//! and vacuum take it exclusively, every statement takes it shared) →
//! **per-table latches** (one [`parking_lot::RwLock`] cell per table,
//! owned by [`Catalog`]) → the lock manager's logical 2PL locks. A
//! statement computes the set of tables it can touch ([`LatchPlan`]),
//! then acquires their latches in canonical (sorted table-name) order
//! into a [`TableSet`], which is the only way executor code reaches a
//! [`Table`]. Statements on disjoint tables therefore never contend,
//! while a reader and a writer of the same table exclude each other for
//! the statement's duration — exactly the protection the old whole-engine
//! mutex provided, minus the false sharing.
//!
//! Deadlock freedom: every thread acquires in the fixed order *catalog
//! latch → table latches (sorted by name) → epoch mutex*, never the
//! reverse, and never blocks on a lock-manager lock while holding any
//! latch. Exclusive catalog holders ([`TableSet::exclusive`]) reach
//! tables through `&mut Catalog` and take no table latches at all.

use crate::catalog::Catalog;
use crate::error::{Result, StorageError};
use crate::lockmgr::LatchCounters;
use crate::query::Statement;
use crate::table::Table;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{BTreeMap, BTreeSet};

/// The tables a statement may touch, split by access mode. Computed
/// before execution from the statement shape alone — FROM/JOIN tables
/// for reads, the target table plus its foreign-key parents for writes —
/// so the latch set is complete before the first row is read.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub(crate) struct LatchPlan {
    /// Tables latched shared.
    pub read: BTreeSet<String>,
    /// Tables latched exclusive (wins over `read` on overlap).
    pub write: BTreeSet<String>,
}

impl LatchPlan {
    /// A plan reading exactly `tables`.
    pub fn reads<I: IntoIterator<Item = String>>(tables: I) -> Self {
        LatchPlan {
            read: tables.into_iter().collect(),
            write: BTreeSet::new(),
        }
    }

    /// A plan writing exactly `tables`.
    pub fn writes<I: IntoIterator<Item = String>>(tables: I) -> Self {
        LatchPlan {
            read: BTreeSet::new(),
            write: tables.into_iter().collect(),
        }
    }

    /// The latch set for one statement. Verifies every named table
    /// exists (the same [`StorageError::UnknownTable`] a statement would
    /// raise) and collects write targets' foreign-key parents, which
    /// constraint probes read during execution. Takes only brief
    /// one-at-a-time read latches to inspect schemas.
    pub fn for_statement(
        catalog: &Catalog,
        stmt: &Statement,
        counters: &LatchCounters,
    ) -> Result<LatchPlan> {
        let mut plan = LatchPlan::default();
        match stmt {
            Statement::Select(sel) | Statement::Explain(sel) => {
                plan.read.insert(sel.from.table.clone());
                for j in &sel.joins {
                    plan.read.insert(j.table.table.clone());
                }
                for t in &plan.read {
                    catalog.latch(t)?;
                }
            }
            Statement::Insert(ins) => {
                plan.write.insert(ins.table.clone());
                collect_fk_parents(catalog, &ins.table, &mut plan.read, counters)?;
            }
            Statement::Update(upd) => {
                plan.write.insert(upd.table.clone());
                collect_fk_parents(catalog, &upd.table, &mut plan.read, counters)?;
            }
            Statement::Delete(del) => {
                plan.write.insert(del.table.clone());
                catalog.latch(&del.table)?;
            }
            // DDL runs under the exclusive catalog latch; transaction
            // control never reaches statement execution.
            Statement::CreateTable(_)
            | Statement::CreateIndex { .. }
            | Statement::Begin
            | Statement::Commit
            | Statement::Rollback => {}
        }
        // Write mode covers read access; drop shadowed read entries so
        // each table is latched exactly once.
        plan.read = &plan.read - &plan.write;
        Ok(plan)
    }
}

/// Adds `table`'s foreign-key parent tables to `read` (the write latch
/// on `table` itself covers self-referential keys).
fn collect_fk_parents(
    catalog: &Catalog,
    table: &str,
    read: &mut BTreeSet<String>,
    counters: &LatchCounters,
) -> Result<()> {
    let guard = read_counted(catalog.latch(table)?, counters);
    for fk in guard.schema().foreign_keys() {
        if fk.ref_table != table {
            read.insert(fk.ref_table.clone());
        }
    }
    Ok(())
}

/// Acquires a table read latch, counting a wait if it blocks.
pub(crate) fn read_counted<'a>(
    cell: &'a RwLock<Table>,
    counters: &LatchCounters,
) -> RwLockReadGuard<'a, Table> {
    match cell.try_read() {
        Some(g) => g,
        None => {
            counters.note_table_read_wait();
            cell.read()
        }
    }
}

/// Acquires a table write latch, counting a wait if it blocks.
fn write_counted<'a>(
    cell: &'a RwLock<Table>,
    counters: &LatchCounters,
) -> RwLockWriteGuard<'a, Table> {
    match cell.try_write() {
        Some(g) => g,
        None => {
            counters.note_table_write_wait();
            cell.write()
        }
    }
}

enum Slot<'a> {
    Read(RwLockReadGuard<'a, Table>),
    Write(RwLockWriteGuard<'a, Table>),
    /// Direct borrow under the exclusive catalog latch (no table latch
    /// needed: catalog exclusivity already excludes every latch holder).
    Mut(&'a mut Table),
}

/// The latched tables one statement (or commit) executes against — the
/// executor's only window onto table data. Construction acquires the
/// latches; drop releases them. Lookup mirrors the old `Catalog` API
/// (`table` / `table_mut`) so executor code reads the same either way.
pub(crate) struct TableSet<'a> {
    slots: BTreeMap<String, Slot<'a>>,
}

impl<'a> TableSet<'a> {
    /// Latches `plan`'s tables in canonical (sorted-name) order — the
    /// global acquisition order that makes cross-statement deadlock
    /// impossible. The caller holds the catalog latch shared.
    pub fn latch(
        catalog: &'a Catalog,
        plan: &LatchPlan,
        counters: &LatchCounters,
    ) -> Result<TableSet<'a>> {
        let mut slots = BTreeMap::new();
        // BTreeSet union iterates in sorted order.
        for name in plan.write.union(&plan.read) {
            let cell = catalog.latch(name)?;
            let slot = if plan.write.contains(name) {
                Slot::Write(write_counted(cell, counters))
            } else {
                Slot::Read(read_counted(cell, counters))
            };
            slots.insert(name.clone(), slot);
        }
        Ok(TableSet { slots })
    }

    /// Every table as a [`Slot::Mut`] borrow — the exclusive-mode view
    /// used under the catalog write latch (DDL-adjacent statements,
    /// trigger-firing commits, the serial-latch baseline).
    pub fn exclusive(catalog: &'a mut Catalog) -> TableSet<'a> {
        TableSet {
            slots: catalog
                .tables_mut_named()
                .map(|(n, t)| (n.to_owned(), Slot::Mut(t)))
                .collect(),
        }
    }

    /// Shared lookup.
    pub fn table(&self, name: &str) -> Result<&Table> {
        match self.slots.get(name) {
            Some(Slot::Read(g)) => Ok(g),
            Some(Slot::Write(g)) => Ok(g),
            Some(Slot::Mut(t)) => Ok(t),
            None => Err(StorageError::UnknownTable(name.to_owned())),
        }
    }

    /// Exclusive lookup; requires the table to be write-latched (a
    /// read-only slot here means the [`LatchPlan`] missed a write target
    /// — an engine bug, surfaced loudly instead of racing).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        match self.slots.get_mut(name) {
            Some(Slot::Write(g)) => Ok(g),
            Some(Slot::Mut(t)) => Ok(t),
            Some(Slot::Read(_)) => Err(StorageError::Unsupported(format!(
                "internal: table '{name}' latched shared but written"
            ))),
            None => Err(StorageError::UnknownTable(name.to_owned())),
        }
    }

    /// Latched table names in sorted order (diagnostics).
    #[cfg(test)]
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.slots.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for name in ["a", "b", "c"] {
            c.create_table(TableSchema::builder(name).pk("id").build().unwrap())
                .unwrap();
        }
        c
    }

    #[test]
    fn latch_read_and_write_slots() {
        let c = catalog();
        let counters = LatchCounters::default();
        let plan = LatchPlan {
            read: BTreeSet::from(["a".to_owned()]),
            write: BTreeSet::from(["b".to_owned()]),
        };
        let mut set = TableSet::latch(&c, &plan, &counters).unwrap();
        assert!(set.table("a").is_ok());
        assert!(set.table("b").is_ok());
        assert!(set.table_mut("b").is_ok());
        assert!(set.table_mut("a").is_err(), "read slot refuses writes");
        assert!(set.table("c").is_err(), "unlatched table is invisible");
        // While held: `a` still admits readers, `b` admits nothing.
        assert!(c.latch("a").unwrap().try_read().is_some());
        assert!(c.latch("b").unwrap().try_read().is_none());
        drop(set);
        assert!(c.latch("b").unwrap().try_write().is_some());
    }

    #[test]
    fn exclusive_covers_all_tables() {
        let mut c = catalog();
        let mut set = TableSet::exclusive(&mut c);
        for name in ["a", "b", "c"] {
            assert!(set.table_mut(name).is_ok());
        }
        assert_eq!(set.names().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn write_shadow_drops_duplicate_read() {
        let c = catalog();
        let counters = LatchCounters::default();
        let stmt = crate::sql::parse("DELETE FROM a WHERE id = 1").unwrap();
        let plan = LatchPlan::for_statement(&c, &stmt, &counters).unwrap();
        assert!(plan.write.contains("a"));
        assert!(plan.read.is_empty());
    }

    #[test]
    fn unknown_table_fails_planning() {
        let c = catalog();
        let counters = LatchCounters::default();
        let stmt = crate::sql::parse("SELECT * FROM ghost").unwrap();
        assert!(matches!(
            LatchPlan::for_statement(&c, &stmt, &counters),
            Err(StorageError::UnknownTable(_))
        ));
    }
}
