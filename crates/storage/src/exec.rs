//! The executor: mechanically walks whatever the planner chose.
//!
//! SELECTs ask the planner (`crate::plan::plan_query`) for a [`QueryPlan`] — driving
//! table access path, join steps in cost-chosen order, ORDER BY / LIMIT
//! handling. Join queries pump base rows one at a time through the join
//! pipeline and the residual WHERE; row-at-a-time pumping is what makes
//! plans with `fetch_limit` (ORDER BY satisfied by an index scan, or no
//! ORDER BY at all) stop scanning as soon as `LIMIT + OFFSET` output rows
//! exist, instead of materializing every match.
//!
//! Join-free scans instead run **vectorized**: rids are processed in
//! `BATCH_ROWS`-sized morsels, the WHERE clause is compiled into a
//! `CompiledPred` of column-vs-constant atoms evaluated column-at-a-time
//! over a `RowBatch`, and only surviving rows are materialized (cloned).
//! With [`ScanOpts::workers`] > 1 and a large enough rid list, morsels are
//! claimed by worker threads from a shared atomic cursor (morsel-driven
//! parallelism) and outputs are merged back in morsel order, so results
//! are identical to the serial scan. `SELECT COUNT(*) ... WHERE` counts
//! survivors without materializing anything.
//!
//! Every physical decision (page touch, index probe, sort) is recorded in
//! the statement's [`CostReport`] so the benchmark harness can price it.
//! Scans charge a page touch for every rid they *examine* — including
//! versions invisible to the snapshot — because a real heap scan reads the
//! page before it can decide visibility.
//!
//! The executor reaches tables only through a `TableSet` — the latched
//! view assembled by the engine (see `crate::latch`) — never through the
//! catalog directly.

use crate::plan::{JoinMethod, QueryPlan};

use crate::bufferpool::{BufferPool, PageId};
use crate::cost::CostReport;
use crate::error::{Result, StorageError};
use crate::expr::{CmpOp, ColumnRef, Expr};
use crate::latch::TableSet;
use crate::lockmgr::TxnId;
use crate::query::{AggFunc, Delete, Insert, JoinKind, QueryResult, Select, SelectItem, Update};
use crate::row::{Row, RowId};
use crate::table::{Snapshot, Table};
use crate::trigger::TriggerEvent;
use crate::value::Value;

/// The read/write view a statement executes under: `snap` is the
/// snapshot its reads resolve against (a transaction's pinned snapshot,
/// or the latest committed epoch for autocommit); `latest_epoch` is the
/// newest committed epoch at statement start, which constraint probes
/// (FK existence checks) read so they never validate against a stale
/// snapshot — closing them against other writers' uncommitted state
/// without letting them miss committed rows.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecView {
    pub snap: Snapshot,
    pub latest_epoch: u64,
}

impl ExecView {
    /// The writer transaction, on write statements.
    pub(crate) fn tid(&self) -> TxnId {
        self.snap
            .writer
            .expect("write statements execute with a writer snapshot")
    }

    /// Constraint-check snapshot: latest committed state plus the
    /// writer's own uncommitted rows.
    fn fk_snap(&self) -> Snapshot {
        Snapshot {
            epoch: self.latest_epoch,
            writer: self.snap.writer,
        }
    }
}

/// One row-level change produced by a write statement; drives triggers.
#[derive(Debug, Clone)]
pub struct RowChange {
    /// Affected table.
    pub table: String,
    /// Kind of change.
    pub event: TriggerEvent,
    /// Pre-image (UPDATE/DELETE).
    pub old: Option<Row>,
    /// Post-image (INSERT/UPDATE).
    pub new: Option<Row>,
}

/// Undo-log entry for transaction rollback. `pushed` records whether
/// the write superseded a *committed* version (which went to the
/// table's version history and must be popped back) or mutated the
/// transaction's own uncommitted image in place.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// Reverse an insert by removing the uncommitted row.
    Insert { table: String, rid: RowId },
    /// Reverse a delete by restoring the row image.
    Delete {
        table: String,
        rid: RowId,
        row: Row,
        pushed: bool,
    },
    /// Reverse an update by restoring the pre-image.
    Update {
        table: String,
        rid: RowId,
        before: Row,
        pushed: bool,
    },
}

/// Everything a write statement did, before triggers fire.
#[derive(Debug, Default)]
pub struct WriteEffect {
    /// Row-level changes in application order.
    pub changes: Vec<RowChange>,
    /// Undo operations in application order (rolled back in reverse).
    pub undo: Vec<UndoOp>,
    /// Rows affected.
    pub affected: u64,
}

// ---------------------------------------------------------------------
// Column layout: maps (binding, column) -> position in the combined row.
// ---------------------------------------------------------------------

/// The column namespace of a FROM/JOIN chain.
#[derive(Debug, Clone, Default)]
pub(crate) struct Layout {
    /// (binding name, column names, offset of first column).
    entries: Vec<(String, Vec<String>, usize)>,
    width: usize,
}

impl Layout {
    fn push_table(&mut self, binding: &str, table: &Table) {
        let cols: Vec<String> = table
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let n = cols.len();
        self.entries.push((binding.to_owned(), cols, self.width));
        self.width += n;
    }

    /// Resolves a column reference to a combined-row position.
    fn resolve(&self, c: &ColumnRef) -> Result<usize> {
        match &c.table {
            Some(t) => {
                for (binding, cols, off) in &self.entries {
                    if binding == t {
                        if let Some(p) = cols.iter().position(|n| n == &c.column) {
                            return Ok(off + p);
                        }
                        return Err(StorageError::UnknownColumn {
                            table: t.clone(),
                            column: c.column.clone(),
                        });
                    }
                }
                Err(StorageError::UnknownTable(t.clone()))
            }
            None => {
                let mut found = None;
                for (_, cols, off) in &self.entries {
                    if let Some(p) = cols.iter().position(|n| n == &c.column) {
                        // First match wins; ORMs qualify ambiguous columns.
                        found = Some(off + p);
                        break;
                    }
                }
                found.ok_or_else(|| StorageError::UnknownColumn {
                    table: "<any>".to_owned(),
                    column: c.column.clone(),
                })
            }
        }
    }

    /// Output names for a `*` projection: bare column names in layout order.
    fn all_column_names(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.width);
        for (_, cols, _) in &self.entries {
            out.extend(cols.iter().cloned());
        }
        out
    }

    fn binder(&self) -> impl Fn(&ColumnRef) -> Result<usize> + '_ {
        move |c| self.resolve(c)
    }

    /// For each column position of `target`, its position in `self` —
    /// `None` when the layouts already agree. Used to remap combined rows
    /// from the planner's execution order back to syntactic column order;
    /// the planner only reorders when bindings are unique.
    fn permutation_to(&self, target: &Layout) -> Option<Vec<usize>> {
        if self.entries.len() == target.entries.len()
            && self
                .entries
                .iter()
                .zip(&target.entries)
                .all(|(a, b)| a.0 == b.0)
        {
            return None;
        }
        let mut perm = Vec::with_capacity(target.width);
        for (binding, cols, _) in &target.entries {
            let (_, _, off) = self
                .entries
                .iter()
                .find(|(b, _, _)| b == binding)
                .expect("execution layout covers the same bindings");
            perm.extend(*off..*off + cols.len());
        }
        Some(perm)
    }
}

// ---------------------------------------------------------------------
// Access-path planning — see crate::plan. The executor asks the planner
// for a Plan and mechanically walks whatever path it chose.
// ---------------------------------------------------------------------

use crate::plan::eval_const;

/// Plans and runs the base-table access for a write statement's
/// predicate against the statement's snapshot. Charges probes to
/// `cost`; `None` means full heap scan.
fn plan_write_rids(
    table: &Table,
    binding: &str,
    pred: Option<&Expr>,
    params: &[Value],
    cost: &mut CostReport,
    snap: &Snapshot,
) -> Result<Option<Vec<RowId>>> {
    let plan = crate::plan::plan_access(table, binding, pred, &[], params)?;
    Ok(
        crate::plan::execute_path(table, &plan, cost, snap).map(|mut rids| {
            // Writes process rows in heap order whatever path found them, so
            // trigger firing order matches the pre-planner engine.
            rids.sort_unstable();
            rids
        }),
    )
}

fn coerce_for(table: &Table, column: &str, v: &Value) -> Value {
    table
        .schema()
        .column(column)
        .and_then(|c| v.coerce_to(c.ty))
        .unwrap_or_else(|| v.clone())
}

fn touch_read(pool: &BufferPool, table: &Table, rid: RowId, cost: &mut CostReport) {
    let t = pool.touch(PageId {
        table: table.id(),
        page: table.page_of(rid),
    });
    if t.hit {
        cost.page_hits += 1;
    } else {
        cost.page_misses += 1;
    }
    cost.page_writebacks += t.writebacks;
}

// ---------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------

/// Per-statement scan tuning, snapshotted from the `Database` knobs at
/// statement start.
#[derive(Debug, Clone, Copy)]
pub struct ScanOpts {
    /// Vectorized batch execution for join-free scans (default on).
    pub batch: bool,
    /// Worker threads for morsel-driven parallel scans; 1 means serial.
    pub workers: usize,
}

impl Default for ScanOpts {
    fn default() -> Self {
        ScanOpts {
            batch: true,
            workers: 1,
        }
    }
}

impl ScanOpts {
    /// Serial vectorized execution — used for trigger-body queries,
    /// which already run inside a commit.
    pub(crate) fn serial() -> Self {
        ScanOpts::default()
    }
}

/// One prepared join step: the plan's probe method and residual ON
/// conditions, bound against the execution-order layout.
struct JoinStep<'a> {
    jt: &'a Table,
    kind: JoinKind,
    on: Vec<Expr>,
    method: BoundMethod<'a>,
}

enum BoundMethod<'a> {
    Pk(Expr),
    Index(&'a crate::table::Index, Vec<Expr>),
    Scan,
}

/// Runs one left row through a join step, appending combined rows. All
/// probes and fetches resolve against `snap`, so every joined table is
/// read at the same point in time as the driving table.
fn join_step(
    step: &JoinStep<'_>,
    left: &Row,
    params: &[Value],
    pool: &BufferPool,
    cost: &mut CostReport,
    out: &mut Vec<Row>,
    snap: &Snapshot,
) -> Result<()> {
    let jt = step.jt;
    let candidates: Vec<RowId> = match &step.method {
        BoundMethod::Pk(outer) => {
            cost.index_probes += 1;
            let v = outer.eval(left, params)?;
            if v.is_null() {
                Vec::new()
            } else {
                let v = coerce_for(jt, jt.schema().primary_key(), &v);
                jt.find_pk_visible(&v, snap).into_iter().collect()
            }
        }
        BoundMethod::Index(idx, outers) => {
            cost.index_probes += 1;
            let mut key = Vec::with_capacity(outers.len());
            let mut null_key = false;
            for (col, e) in idx.def().columns.iter().zip(outers) {
                let v = e.eval(left, params)?;
                if v.is_null() {
                    // SQL equality never matches NULL.
                    null_key = true;
                    break;
                }
                key.push(coerce_for(jt, col, &v));
            }
            if null_key {
                Vec::new()
            } else {
                jt.index_lookup_visible(idx, &key, snap)
            }
        }
        BoundMethod::Scan => jt.scan_rids(),
    };
    let mut matched = false;
    for rid in candidates {
        // Page touch precedes the visibility check: a scan reads the
        // page before it can decide whether the version is visible.
        touch_read(pool, jt, rid, cost);
        let Some(r) = jt.visible(rid, snap) else {
            continue;
        };
        cost.rows_scanned += 1;
        let mut combined = Vec::with_capacity(left.arity() + r.arity());
        combined.extend_from_slice(left.values());
        combined.extend_from_slice(r.values());
        let combined = Row::new(combined);
        let mut ok = true;
        for on in &step.on {
            if !on.matches(&combined, params)? {
                ok = false;
                break;
            }
        }
        if ok {
            matched = true;
            out.push(combined);
        }
    }
    if !matched && step.kind == JoinKind::Left {
        let mut combined = Vec::with_capacity(left.arity() + jt.schema().arity());
        combined.extend_from_slice(left.values());
        combined.extend(std::iter::repeat_n(Value::Null, jt.schema().arity()));
        out.push(Row::new(combined));
    }
    Ok(())
}

/// Executes a SELECT at the given read snapshot. Never takes or waits
/// for any lock-manager lock: visibility comes entirely from the version
/// metadata, so readers proceed while writer transactions hold row locks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_select(
    tables: &TableSet<'_>,
    pool: &BufferPool,
    sel: &Select,
    params: &[Value],
    cost: &mut CostReport,
    snap: &Snapshot,
    opts: &ScanOpts,
) -> Result<QueryResult> {
    let qplan: QueryPlan = crate::plan::plan_query(tables, sel, params)?;
    let base = tables.table(&qplan.base.table)?;

    // COUNT(*) pushdown: the planner proved the path yields exactly the
    // matching rows, so answer from pk-map / posting-list sizes without
    // touching the heap (entries resolve against the snapshot).
    if qplan.count_only {
        return run_count_only(base, sel, &qplan, cost, snap);
    }

    // Execution-order layout (driving table first, joins in plan order)
    // plus the prepared join steps. Probe expressions bind against the
    // prefix layout; ON residues bind once the step's table is pushed.
    let mut exec_layout = Layout::default();
    exec_layout.push_table(&qplan.base_binding, base);
    let mut steps: Vec<JoinStep<'_>> = Vec::with_capacity(qplan.joins.len());
    for jp in &qplan.joins {
        let jt = tables.table(&jp.table)?;
        let method = match &jp.method {
            JoinMethod::PkProbe { outer } => BoundMethod::Pk(outer.bind(&exec_layout.binder())?),
            JoinMethod::IndexProbe { index, outers } => {
                let idx = jt.index_by_name(index).expect("planned index exists");
                let bound = outers
                    .iter()
                    .map(|e| e.bind(&exec_layout.binder()))
                    .collect::<Result<Vec<_>>>()?;
                BoundMethod::Index(idx, bound)
            }
            JoinMethod::NestedScan => BoundMethod::Scan,
        };
        exec_layout.push_table(&jp.binding, jt);
        let on = jp
            .on
            .iter()
            .map(|e| e.bind(&exec_layout.binder()))
            .collect::<Result<Vec<_>>>()?;
        steps.push(JoinStep {
            jt,
            kind: jp.kind,
            on,
            method,
        });
    }

    // Syntactic layout: the column namespace WHERE / ORDER BY /
    // projection bind against, and the output column order. When the
    // planner rotated the join order, combined rows are remapped into it.
    let mut syn_layout = Layout::default();
    syn_layout.push_table(sel.from.binding_name(), tables.table(&sel.from.table)?);
    for j in &sel.joins {
        syn_layout.push_table(j.table.binding_name(), tables.table(&j.table.table)?);
    }
    let perm = exec_layout.permutation_to(&syn_layout);
    let layout = syn_layout;

    let bound_pred = match &sel.predicate {
        Some(p) => Some(p.bind(&layout.binder())?),
        None => None,
    };

    // --- base scan + pipeline ---
    let mut rids = crate::plan::execute_path(base, &qplan.base, cost, snap);
    if let Some(r) = rids.as_mut() {
        if !qplan.order_satisfied {
            // Path order only matters when the executor keeps it (sort
            // skipped). Otherwise restore heap order so the stable sort
            // breaks ties identically with and without indexes — and
            // unordered queries return heap order like a full scan.
            r.sort_unstable();
        }
    }
    let rid_list: Vec<RowId> = match rids {
        Some(rids) => rids,
        None => base.scan_rids(),
    };

    // With `fetch_limit` the pipeline's output order is final, so the
    // scan stops as soon as enough output rows exist — this is what cuts
    // Top-K page-query tail latency from O(matches) to O(k).
    let target = qplan.fetch_limit.map(|k| k as usize);

    // Bounded top-k: when the ORDER BY is not index-satisfied but LIMIT k
    // is present, keep only the best `LIMIT + OFFSET` rows during the
    // scan instead of materializing every match and fully sorting it.
    let mut topk: Option<TopK> = if !sel.order_by.is_empty()
        && !qplan.order_satisfied
        && !sel.is_aggregate()
        && sel.group_by.is_empty()
    {
        match sel.limit {
            Some(limit) => {
                let keys: Vec<(Expr, bool)> = sel
                    .order_by
                    .iter()
                    .map(|k| Ok((k.expr.bind(&layout.binder())?, k.desc)))
                    .collect::<Result<_>>()?;
                let cap = (limit.saturating_add(sel.offset.unwrap_or(0))) as usize;
                Some(TopK::new(keys, cap))
            }
            None => None,
        }
    } else {
        None
    };

    let vectorized = opts.batch && steps.is_empty();

    // COUNT(*) with a residual predicate: count batch survivors without
    // materializing a single row. Plain COUNT(*) (no predicate or an
    // index-exact one) never reaches here — `count_only` answered it.
    if vectorized
        && target.is_none()
        && sel.group_by.is_empty()
        && sel.order_by.is_empty()
        && matches!(
            &sel.projection[..],
            [SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: None,
                ..
            }]
        )
    {
        let n = count_matching(
            base,
            &rid_list,
            bound_pred.as_ref(),
            params,
            pool,
            cost,
            snap,
            opts.workers,
        )?;
        let alias = match &sel.projection[..] {
            [SelectItem::Aggregate { alias, .. }] => alias.clone(),
            _ => None,
        };
        cost.rows_returned += 1;
        return Ok(QueryResult {
            columns: vec![alias.unwrap_or_else(|| "count".to_owned())],
            rows: vec![Row::new(vec![Value::Int(n)])],
            rows_affected: 0,
        });
    }

    let mut current: Vec<Row> = Vec::new();
    if vectorized {
        scan_vectorized(
            base,
            &rid_list,
            bound_pred.as_ref(),
            params,
            pool,
            cost,
            snap,
            target,
            &mut topk,
            &mut current,
            opts,
        )?;
    } else {
        'scan: for rid in rid_list {
            touch_read(pool, base, rid, cost);
            let Some(r0) = base.visible(rid, snap) else {
                continue;
            };
            cost.rows_scanned += 1;
            let mut batch: Vec<Row> = vec![r0.clone()];
            for step in &steps {
                if batch.is_empty() {
                    break;
                }
                let mut next = Vec::new();
                for left in &batch {
                    join_step(step, left, params, pool, cost, &mut next, snap)?;
                }
                batch = next;
            }
            for row in batch {
                let row = match &perm {
                    Some(p) => Row::new(p.iter().map(|&i| row.get(i).clone()).collect()),
                    None => row,
                };
                let keep = match &bound_pred {
                    Some(pred) => pred.matches(&row, params)?,
                    None => true,
                };
                if keep {
                    match &mut topk {
                        Some(tk) => tk.offer(row, params)?,
                        None => {
                            current.push(row);
                            if let Some(t) = target {
                                if current.len() >= t {
                                    break 'scan;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Drain the bounded heap: rows come out already in final order, so
    // the full sort below is skipped (its cost too).
    let topk_sorted = topk.is_some();
    if let Some(tk) = topk {
        cost.sorts += 1;
        cost.sort_rows += tk.insertions;
        current = tk.into_rows();
    }

    // --- aggregates ---
    if sel.is_aggregate() || !sel.group_by.is_empty() {
        if !sel.order_by.is_empty() {
            return Err(StorageError::Unsupported(
                "ORDER BY combined with aggregates".into(),
            ));
        }
        return run_aggregate(sel, &layout, current, params, cost);
    }

    // --- ORDER BY ---
    // When the pipeline already yields the requested order (ordered base
    // scan surviving single-row joins), the sort — and its cost — is
    // skipped entirely.
    if !sel.order_by.is_empty() && !qplan.order_satisfied && !topk_sorted {
        let keys: Vec<(Expr, bool)> = sel
            .order_by
            .iter()
            .map(|k| Ok((k.expr.bind(&layout.binder())?, k.desc)))
            .collect::<Result<_>>()?;
        cost.sorts += 1;
        cost.sort_rows += current.len() as u64;
        let mut decorated: Vec<(Vec<Value>, Row)> = current
            .into_iter()
            .map(|r| {
                let kv = keys
                    .iter()
                    .map(|(e, _)| e.eval(&r, params))
                    .collect::<Result<Vec<_>>>()?;
                Ok((kv, r))
            })
            .collect::<Result<_>>()?;
        decorated.sort_by(|(ka, _), (kb, _)| cmp_order_keys(&keys, ka, kb));
        current = decorated.into_iter().map(|(_, r)| r).collect();
    }

    // --- OFFSET / LIMIT ---
    let offset = sel.offset.unwrap_or(0) as usize;
    if offset > 0 {
        current = current.into_iter().skip(offset).collect();
    }
    if let Some(limit) = sel.limit {
        current.truncate(limit as usize);
    }

    // --- projection ---
    let (columns, rows) = project(sel, &layout, current, params)?;
    cost.rows_returned += rows.len() as u64;
    Ok(QueryResult {
        columns,
        rows,
        rows_affected: 0,
    })
}

/// Compares two ORDER BY key tuples under the keys' ASC/DESC directions.
fn cmp_order_keys(keys: &[(Expr, bool)], a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (i, (_, desc)) in keys.iter().enumerate() {
        let ord = a[i].cmp(&b[i]);
        let ord = if *desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

// ---------------------------------------------------------------------
// Vectorized scans
// ---------------------------------------------------------------------

/// Rows per scan morsel. One morsel is the unit of vectorized predicate
/// evaluation and of parallel work distribution.
pub(crate) const BATCH_ROWS: usize = 1024;

/// Minimum rid-list size before a parallel scan pays for its threads.
const PARALLEL_MIN_RIDS: usize = 4096;

/// One WHERE conjunct, pre-compiled for the vectorized path.
enum Atom {
    /// `column <op> constant` — the shape ORM filters overwhelmingly
    /// take. Evaluated column-at-a-time with zero per-row allocation.
    Cmp { pos: usize, op: CmpOp, val: Value },
    /// Anything else falls back to the interpreted expression.
    Generic(Expr),
}

/// Tri-state truth of one atom on one row (SQL three-valued logic).
enum Truth {
    True,
    False,
    Null,
}

impl Atom {
    fn truth(&self, row: &Row, params: &[Value]) -> Result<Truth> {
        match self {
            Atom::Cmp { pos, op, val } => Ok(match row.get(*pos).sql_cmp(val) {
                Some(ord) if op.holds(ord) => Truth::True,
                Some(_) => Truth::False,
                None => Truth::Null,
            }),
            Atom::Generic(e) => Ok(match e.eval(row, params)? {
                Value::Bool(true) => Truth::True,
                Value::Bool(false) => Truth::False,
                _ => Truth::Null,
            }),
        }
    }
}

/// A WHERE clause compiled into conjunct atoms. Evaluation mirrors the
/// interpreted `AND` chain exactly: FALSE short-circuits, NULL makes the
/// row non-matching but keeps evaluating (so an error in a later
/// conjunct still surfaces), and a row matches only if every atom is TRUE.
struct CompiledPred {
    atoms: Vec<Atom>,
}

impl CompiledPred {
    fn compile(pred: Option<&Expr>, params: &[Value]) -> CompiledPred {
        let mut atoms = Vec::new();
        if let Some(p) = pred {
            for c in p.conjuncts() {
                atoms.push(compile_atom(c, params));
            }
        }
        CompiledPred { atoms }
    }

    fn matches(&self, row: &Row, params: &[Value]) -> Result<bool> {
        let mut all_true = true;
        for atom in &self.atoms {
            match atom.truth(row, params)? {
                Truth::True => {}
                Truth::False => return Ok(false),
                Truth::Null => all_true = false,
            }
        }
        Ok(all_true)
    }
}

fn compile_atom(e: &Expr, params: &[Value]) -> Atom {
    if let Expr::Cmp(a, op, b) = e {
        if let (Expr::BoundColumn(pos), Some(val)) = (&**a, const_operand(b, params)) {
            return Atom::Cmp {
                pos: *pos,
                op: *op,
                val,
            };
        }
    }
    Atom::Generic(e.clone())
}

fn const_operand(e: &Expr, params: &[Value]) -> Option<Value> {
    match e {
        Expr::Literal(v) => Some(v.clone()),
        // A missing parameter stays Generic so evaluation reports it.
        Expr::Param(i) => params.get(*i).cloned(),
        _ => None,
    }
}

/// One morsel of visible rows with a survivor bitmap. Rows are borrowed
/// from the table (zero-copy); predicate columns are read column-at-a-
/// time across the batch; only survivors are ever cloned (late
/// materialization).
struct RowBatch<'a> {
    rows: Vec<&'a Row>,
    /// Survivor bitmap: row still matches every atom applied so far.
    sel: Vec<bool>,
    /// Row still participates in atom evaluation. Diverges from `sel`
    /// only on NULL atoms, which exclude the row from the result but —
    /// matching interpreted `AND` — keep evaluating later conjuncts.
    live: Vec<bool>,
}

impl<'a> RowBatch<'a> {
    /// Touches every examined rid's page and collects the visible rows.
    fn gather(
        table: &'a Table,
        rids: &[RowId],
        pool: &BufferPool,
        cost: &mut CostReport,
        snap: &Snapshot,
    ) -> RowBatch<'a> {
        let mut rows = Vec::with_capacity(rids.len());
        for &rid in rids {
            touch_read(pool, table, rid, cost);
            if let Some(r) = table.visible(rid, snap) {
                rows.push(r);
            }
        }
        cost.rows_scanned += rows.len() as u64;
        let n = rows.len();
        RowBatch {
            rows,
            sel: vec![true; n],
            live: vec![true; n],
        }
    }

    /// The batch's values of one column, contiguous (column-major view).
    fn column(&self, pos: usize) -> Vec<&'a Value> {
        self.rows.iter().map(|r| r.get(pos)).collect()
    }

    /// Applies every predicate atom across the batch, column-at-a-time.
    fn filter(&mut self, pred: &CompiledPred, params: &[Value]) -> Result<()> {
        for atom in &pred.atoms {
            match atom {
                Atom::Cmp { pos, op, val } => {
                    let col = self.column(*pos);
                    for (i, v) in col.iter().enumerate() {
                        if self.live[i] {
                            match v.sql_cmp(val) {
                                Some(ord) if op.holds(ord) => {}
                                Some(_) => {
                                    self.sel[i] = false;
                                    self.live[i] = false;
                                }
                                None => self.sel[i] = false,
                            }
                        }
                    }
                }
                Atom::Generic(e) => {
                    for i in 0..self.rows.len() {
                        if self.live[i] {
                            match e.eval(self.rows[i], params)? {
                                Value::Bool(true) => {}
                                Value::Bool(false) => {
                                    self.sel[i] = false;
                                    self.live[i] = false;
                                }
                                _ => self.sel[i] = false,
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Surviving rows in batch (heap) order.
    fn selected(&self) -> impl Iterator<Item = &'a Row> + '_ {
        self.rows
            .iter()
            .zip(&self.sel)
            .filter(|(_, s)| **s)
            .map(|(r, _)| *r)
    }
}

/// The vectorized join-free scan. Serial by default; with `workers > 1`
/// and a large enough rid list (and no early-exit target), morsels are
/// distributed to worker threads.
#[allow(clippy::too_many_arguments)]
fn scan_vectorized(
    base: &Table,
    rid_list: &[RowId],
    pred: Option<&Expr>,
    params: &[Value],
    pool: &BufferPool,
    cost: &mut CostReport,
    snap: &Snapshot,
    target: Option<usize>,
    topk: &mut Option<TopK>,
    out: &mut Vec<Row>,
    opts: &ScanOpts,
) -> Result<()> {
    let compiled = CompiledPred::compile(pred, params);
    if opts.workers > 1 && rid_list.len() >= PARALLEL_MIN_RIDS && target.is_none() {
        return scan_parallel(
            base,
            rid_list,
            &compiled,
            params,
            pool,
            cost,
            snap,
            topk,
            out,
            opts.workers,
        );
    }
    if let Some(t) = target {
        // Early-exit shape: rid-at-a-time so the scan stops at exactly
        // the same row — and the same cost — as the row engine. The win
        // here is the compiled predicate on the borrowed row: no clone
        // unless the row matches.
        debug_assert!(topk.is_none(), "fetch_limit implies no late sort");
        for &rid in rid_list {
            touch_read(pool, base, rid, cost);
            let Some(r) = base.visible(rid, snap) else {
                continue;
            };
            cost.rows_scanned += 1;
            if compiled.matches(r, params)? {
                out.push(r.clone());
                if out.len() >= t {
                    break;
                }
            }
        }
        return Ok(());
    }
    for chunk in rid_list.chunks(BATCH_ROWS) {
        let mut batch = RowBatch::gather(base, chunk, pool, cost, snap);
        batch.filter(&compiled, params)?;
        for r in batch.selected() {
            match topk.as_mut() {
                Some(tk) => tk.offer(r.clone(), params)?,
                None => out.push(r.clone()),
            }
        }
    }
    Ok(())
}

/// `COUNT(*) WHERE ...` without materialization: batch survivors are
/// counted, never cloned. Scans every rid (counts cannot early-exit), so
/// serial cost equals the row engine's.
#[allow(clippy::too_many_arguments)]
fn count_matching(
    base: &Table,
    rid_list: &[RowId],
    pred: Option<&Expr>,
    params: &[Value],
    pool: &BufferPool,
    cost: &mut CostReport,
    snap: &Snapshot,
    workers: usize,
) -> Result<i64> {
    let compiled = CompiledPred::compile(pred, params);
    if workers > 1 && rid_list.len() >= PARALLEL_MIN_RIDS {
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let n_morsels = rid_list.len().div_ceil(BATCH_ROWS);
        let worker_results: Vec<Result<(CostReport, i64)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers.min(n_morsels))
                .map(|_| {
                    s.spawn(|| {
                        let mut wcost = CostReport::default();
                        let mut n = 0i64;
                        loop {
                            let m = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if m >= n_morsels {
                                break;
                            }
                            let lo = m * BATCH_ROWS;
                            let hi = (lo + BATCH_ROWS).min(rid_list.len());
                            let mut batch =
                                RowBatch::gather(base, &rid_list[lo..hi], pool, &mut wcost, snap);
                            batch.filter(&compiled, params)?;
                            n += batch.selected().count() as i64;
                        }
                        Ok((wcost, n))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect()
        });
        let mut total = 0i64;
        for r in worker_results {
            let (wcost, n) = r?;
            *cost += wcost;
            total += n;
        }
        return Ok(total);
    }
    let mut n = 0i64;
    for chunk in rid_list.chunks(BATCH_ROWS) {
        let mut batch = RowBatch::gather(base, chunk, pool, cost, snap);
        batch.filter(&compiled, params)?;
        n += batch.selected().count() as i64;
    }
    Ok(n)
}

/// Morsel-driven parallel scan: workers claim morsels from a shared
/// cursor, evaluate them with the vectorized path, and return survivors
/// tagged with their arrival rank `(morsel << 32) | seq`. The main
/// thread merges by rank, which reproduces the serial scan's row order
/// exactly — including ORDER BY tie-breaks. With a Top-K each worker
/// keeps only its own best `cap` rows (per-worker partials); a row a
/// worker drops is provably outside the global top `cap`, because the
/// `cap` rows that beat it locally also precede it in merged order.
///
/// Only reachable when the user opts in (`workers > 1`), because page
/// touches interleave nondeterministically: totals still add up, but
/// hit/miss splits can differ run to run.
#[allow(clippy::too_many_arguments)]
fn scan_parallel(
    base: &Table,
    rid_list: &[RowId],
    compiled: &CompiledPred,
    params: &[Value],
    pool: &BufferPool,
    cost: &mut CostReport,
    snap: &Snapshot,
    topk: &mut Option<TopK>,
    out: &mut Vec<Row>,
    workers: usize,
) -> Result<()> {
    let spec: Option<(&[(Expr, bool)], usize)> = topk.as_ref().map(|tk| (&tk.keys[..], tk.cap));
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let n_morsels = rid_list.len().div_ceil(BATCH_ROWS);
    type Tagged = (u64, Row);
    let worker_results: Vec<Result<(CostReport, Vec<Tagged>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(n_morsels))
            .map(|_| {
                s.spawn(|| {
                    let mut wcost = CostReport::default();
                    // With a Top-K spec: kept sorted by (keys, rank),
                    // truncated to cap. Otherwise: plain arrival order.
                    let mut local: Vec<(Vec<Value>, u64, Row)> = Vec::new();
                    loop {
                        let m = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if m >= n_morsels {
                            break;
                        }
                        let lo = m * BATCH_ROWS;
                        let hi = (lo + BATCH_ROWS).min(rid_list.len());
                        let mut batch =
                            RowBatch::gather(base, &rid_list[lo..hi], pool, &mut wcost, snap);
                        batch.filter(compiled, params)?;
                        for (seq, r) in batch.selected().enumerate() {
                            let rank = ((m as u64) << 32) | seq as u64;
                            match spec {
                                Some((keys, cap)) => {
                                    if cap == 0 {
                                        continue;
                                    }
                                    let kv = keys
                                        .iter()
                                        .map(|(e, _)| e.eval(r, params))
                                        .collect::<Result<Vec<_>>>()?;
                                    let pos =
                                        local.partition_point(
                                            |(ek, erank, _)| match cmp_order_keys(keys, ek, &kv) {
                                                std::cmp::Ordering::Equal => *erank < rank,
                                                o => o == std::cmp::Ordering::Less,
                                            },
                                        );
                                    if pos < cap {
                                        local.insert(pos, (kv, rank, r.clone()));
                                        local.truncate(cap);
                                    }
                                }
                                None => local.push((Vec::new(), rank, r.clone())),
                            }
                        }
                    }
                    Ok((wcost, local.into_iter().map(|(_, t, r)| (t, r)).collect()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });
    let mut merged: Vec<Tagged> = Vec::new();
    for r in worker_results {
        let (wcost, rows) = r?;
        *cost += wcost;
        merged.extend(rows);
    }
    // Rank order == the serial scan's arrival order.
    merged.sort_by_key(|(rank, _)| *rank);
    for (_, row) in merged {
        match topk.as_mut() {
            Some(tk) => tk.offer(row, params)?,
            None => out.push(row),
        }
    }
    Ok(())
}

/// Bounded top-k accumulator for `ORDER BY ... LIMIT k` without a usable
/// index order: a sorted vector of at most `cap` rows. Ties keep arrival
/// (heap) order — exactly what the executor's stable sort produces — so
/// results are identical to sort-then-truncate.
struct TopK {
    keys: Vec<(Expr, bool)>,
    cap: usize,
    /// (sort key values, row), kept sorted per the ORDER BY.
    entries: Vec<(Vec<Value>, Row)>,
    /// Rows that actually entered the bounded set (the sort work done).
    insertions: u64,
}

impl TopK {
    fn new(keys: Vec<(Expr, bool)>, cap: usize) -> Self {
        TopK {
            keys,
            cap,
            entries: Vec::new(),
            insertions: 0,
        }
    }

    fn offer(&mut self, row: Row, params: &[Value]) -> Result<()> {
        if self.cap == 0 {
            return Ok(());
        }
        let kv = self
            .keys
            .iter()
            .map(|(e, _)| e.eval(&row, params))
            .collect::<Result<Vec<_>>>()?;
        // First slot that sorts strictly after the candidate; equal keys
        // land before it (the candidate arrived later — stable order).
        let pos = self.entries.partition_point(|(ek, _)| {
            cmp_order_keys(&self.keys, ek, &kv) != std::cmp::Ordering::Greater
        });
        if pos >= self.cap {
            return Ok(()); // worse than every kept row
        }
        self.entries.insert(pos, (kv, row));
        self.entries.truncate(self.cap);
        self.insertions += 1;
        Ok(())
    }

    fn into_rows(self) -> Vec<Row> {
        self.entries.into_iter().map(|(_, r)| r).collect()
    }
}

/// Answers a planner-approved `SELECT COUNT(*)` from index metadata: the
/// pk map for `PkEq`, posting lists for `IndexEq`/`IndexPrefixRange`, and
/// the visible row count for a predicate-free scan. No heap page is
/// touched; entries resolve against the snapshot so counts agree with
/// what a full scan at the same snapshot would return.
fn run_count_only(
    base: &Table,
    sel: &Select,
    qplan: &QueryPlan,
    cost: &mut CostReport,
    snap: &Snapshot,
) -> Result<QueryResult> {
    use crate::plan::AccessPath;
    let n = match &qplan.base.path {
        AccessPath::TableScan => base.visible_len(snap) as i64,
        AccessPath::PkEq { key } => {
            cost.index_probes += 1;
            i64::from(base.find_pk_visible(key, snap).is_some())
        }
        AccessPath::IndexEq { index, key } => {
            cost.index_probes += 1;
            let idx = base.index_by_name(index).expect("planned index exists");
            base.index_lookup_visible(idx, key, snap).len() as i64
        }
        AccessPath::IndexPrefixRange { index, prefix } => {
            cost.index_probes += 1;
            let idx = base.index_by_name(index).expect("planned index exists");
            base.index_prefix_scan_visible(idx, prefix, false, snap)
                .len() as i64
        }
        AccessPath::PkOr { keys } => {
            cost.index_probes += keys.len() as u64;
            keys.iter()
                .filter(|k| base.find_pk_visible(k, snap).is_some())
                .count() as i64
        }
        AccessPath::PkRange { from, to } => {
            cost.index_probes += 1;
            base.pk_range_scan_visible(from, to, false, snap).len() as i64
        }
        AccessPath::IndexRange {
            index,
            eq_prefix,
            from,
            to,
        } => {
            cost.index_probes += 1;
            let idx = base.index_by_name(index).expect("planned index exists");
            base.index_range_scan_visible(idx, eq_prefix, from, to, false, snap)
                .len() as i64
        }
        AccessPath::IndexOr { index, keys } => {
            cost.index_probes += keys.len() as u64;
            let idx = base.index_by_name(index).expect("planned index exists");
            base.index_multi_lookup_visible(idx, keys, false, snap)
                .len() as i64
        }
        AccessPath::IndexInList {
            index,
            eq_prefix,
            keys,
        } => {
            cost.index_probes += keys.len() as u64;
            let idx = base.index_by_name(index).expect("planned index exists");
            base.index_in_scan_visible(idx, eq_prefix, keys, false, snap)
                .len() as i64
        }
    };
    let alias = match &sel.projection[..] {
        [crate::query::SelectItem::Aggregate { alias, .. }] => alias.clone(),
        _ => None,
    };
    cost.rows_returned += 1;
    Ok(QueryResult {
        columns: vec![alias.unwrap_or_else(|| "count".to_owned())],
        rows: vec![Row::new(vec![Value::Int(n)])],
        rows_affected: 0,
    })
}

fn project(
    sel: &Select,
    layout: &Layout,
    input: Vec<Row>,
    params: &[Value],
) -> Result<(Vec<String>, Vec<Row>)> {
    // Fast path: bare `SELECT *`.
    if sel.projection.len() == 1 && matches!(sel.projection[0], SelectItem::Wildcard) {
        return Ok((layout.all_column_names(), input));
    }
    let mut columns = Vec::new();
    enum Out {
        All,
        Expr(Expr),
    }
    let mut outs = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Wildcard => {
                columns.extend(layout.all_column_names());
                outs.push(Out::All);
            }
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column(c) => c.column.clone(),
                    other => other.to_string(),
                }));
                outs.push(Out::Expr(expr.bind(&layout.binder())?));
            }
            SelectItem::Aggregate { .. } => {
                return Err(StorageError::Unsupported(
                    "aggregate mixed into a non-aggregate projection".into(),
                ))
            }
        }
    }
    let mut rows = Vec::with_capacity(input.len());
    for r in input {
        let mut vals = Vec::with_capacity(columns.len());
        for out in &outs {
            match out {
                Out::All => vals.extend_from_slice(r.values()),
                Out::Expr(e) => vals.push(e.eval(&r, params)?),
            }
        }
        rows.push(Row::new(vals));
    }
    Ok((columns, rows))
}

fn run_aggregate(
    sel: &Select,
    layout: &Layout,
    input: Vec<Row>,
    params: &[Value],
    cost: &mut CostReport,
) -> Result<QueryResult> {
    // Group rows.
    let group_pos: Vec<usize> = sel
        .group_by
        .iter()
        .map(|c| layout.resolve(c))
        .collect::<Result<_>>()?;
    let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
    if group_pos.is_empty() {
        groups.push((Vec::new(), input));
    } else {
        use std::collections::HashMap;
        let mut map: HashMap<Vec<Value>, usize> = HashMap::new();
        for r in input {
            let key: Vec<Value> = group_pos.iter().map(|&p| r.get(p).clone()).collect();
            match map.get(&key) {
                Some(&i) => groups[i].1.push(r),
                None => {
                    map.insert(key.clone(), groups.len());
                    groups.push((key, vec![r]));
                }
            }
        }
    }

    let mut columns = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Aggregate { func, alias, .. } => columns.push(
                alias
                    .clone()
                    .unwrap_or_else(|| func.to_string().to_lowercase()),
            ),
            SelectItem::Expr { expr, alias } => {
                columns.push(alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column(c) => c.column.clone(),
                    other => other.to_string(),
                }))
            }
            SelectItem::Wildcard => {
                return Err(StorageError::Unsupported(
                    "wildcard in aggregate projection".into(),
                ))
            }
        }
    }

    let mut out_rows = Vec::with_capacity(groups.len());
    for (_key, rows) in &groups {
        let mut vals = Vec::with_capacity(sel.projection.len());
        for item in &sel.projection {
            match item {
                SelectItem::Aggregate { func, arg, .. } => {
                    let bound = match arg {
                        Some(e) => Some(e.bind(&layout.binder())?),
                        None => None,
                    };
                    vals.push(aggregate(*func, bound.as_ref(), rows, params)?);
                }
                SelectItem::Expr { expr, .. } => {
                    // Must be a grouped column: evaluate on the first row.
                    let bound = expr.bind(&layout.binder())?;
                    let rep = rows.first().cloned().unwrap_or_default();
                    vals.push(bound.eval(&rep, params)?);
                }
                SelectItem::Wildcard => unreachable!("rejected above"),
            }
        }
        out_rows.push(Row::new(vals));
    }
    cost.rows_returned += out_rows.len() as u64;
    Ok(QueryResult {
        columns,
        rows: out_rows,
        rows_affected: 0,
    })
}

fn aggregate(func: AggFunc, arg: Option<&Expr>, rows: &[Row], params: &[Value]) -> Result<Value> {
    match func {
        AggFunc::Count => match arg {
            None => Ok(Value::Int(rows.len() as i64)),
            Some(e) => {
                let mut n = 0i64;
                for r in rows {
                    if !e.eval(r, params)?.is_null() {
                        n += 1;
                    }
                }
                Ok(Value::Int(n))
            }
        },
        AggFunc::Sum | AggFunc::Avg => {
            let e = arg
                .ok_or_else(|| StorageError::Unsupported(format!("{func} requires an argument")))?;
            let mut sum = 0.0f64;
            let mut n = 0u64;
            let mut all_int = true;
            let mut isum = 0i64;
            for r in rows {
                let v = e.eval(r, params)?;
                match v {
                    Value::Null => {}
                    Value::Int(i) => {
                        isum = isum.wrapping_add(i);
                        sum += i as f64;
                        n += 1;
                    }
                    Value::Float(f) => {
                        all_int = false;
                        sum += f;
                        n += 1;
                    }
                    other => {
                        return Err(StorageError::Eval(format!(
                            "{func} over non-numeric value {other}"
                        )))
                    }
                }
            }
            if n == 0 {
                return Ok(Value::Null);
            }
            Ok(match func {
                AggFunc::Sum if all_int => Value::Int(isum),
                AggFunc::Sum => Value::Float(sum),
                _ => Value::Float(sum / n as f64),
            })
        }
        AggFunc::Min | AggFunc::Max => {
            let e = arg
                .ok_or_else(|| StorageError::Unsupported(format!("{func} requires an argument")))?;
            let mut best: Option<Value> = None;
            for r in rows {
                let v = e.eval(r, params)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take_new = match func {
                            AggFunc::Min => v < b,
                            _ => v > b,
                        };
                        if take_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

// ---------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------

/// Executes an INSERT under `view` (versioned: the rows stay invisible
/// to other snapshots until the transaction commits).
pub(crate) fn run_insert(
    tables: &mut TableSet<'_>,
    pool: &BufferPool,
    ins: &Insert,
    params: &[Value],
    cost: &mut CostReport,
    view: &ExecView,
) -> Result<WriteEffect> {
    // Evaluate all rows up front (no row context in VALUES).
    let schema = tables.table(&ins.table)?.schema().clone();
    let mut full_rows = Vec::with_capacity(ins.rows.len());
    for exprs in &ins.rows {
        let row = if ins.columns.is_empty() {
            if exprs.len() != schema.arity() {
                return Err(StorageError::TypeMismatch {
                    column: format!("{}(*)", ins.table),
                    expected: format!("{} values", schema.arity()),
                    got: format!("{} values", exprs.len()),
                });
            }
            let vals = exprs
                .iter()
                .map(|e| eval_const(e, params))
                .collect::<Result<Vec<_>>>()?;
            Row::new(vals)
        } else {
            if exprs.len() != ins.columns.len() {
                return Err(StorageError::TypeMismatch {
                    column: format!("{}(*)", ins.table),
                    expected: format!("{} values", ins.columns.len()),
                    got: format!("{} values", exprs.len()),
                });
            }
            let mut vals = vec![Value::Null; schema.arity()];
            for (col, e) in ins.columns.iter().zip(exprs) {
                let pos = schema.require_column(col)?;
                vals[pos] = eval_const(e, params)?;
            }
            Row::new(vals)
        };
        full_rows.push(row);
    }

    // Foreign-key checks (charge one probe per FK per row).
    for row in &full_rows {
        check_foreign_keys(tables, pool, &schema, row, cost, view)?;
    }

    let tid = view.tid();
    let table = tables.table_mut(&ins.table)?;
    let mut effect = WriteEffect::default();
    for row in full_rows {
        // Statement atomicity: a failure on row N (unique violation,
        // write conflict) must also undo rows 1..N-1 — leaking their
        // versions would leave keys permanently wedged on a writer that
        // never commits.
        let rid = match table.insert_txn(row.clone(), tid, &view.snap) {
            Ok(rid) => rid,
            Err(e) => {
                undo_same_table(table, effect.undo, tid);
                return Err(e);
            }
        };
        let stored = table.get(rid).expect("just inserted").clone();
        // Re-borrow immutably for page math is fine: same table.
        let page = PageId {
            table: table.id(),
            page: table.page_of(rid),
        };
        let t = pool.touch_write(page);
        if t.hit {
            cost.page_hits += 1;
        } else {
            cost.page_misses += 1;
        }
        cost.page_writebacks += t.writebacks;
        cost.rows_written += 1;
        effect.affected += 1;
        effect.undo.push(UndoOp::Insert {
            table: ins.table.clone(),
            rid,
        });
        effect.changes.push(RowChange {
            table: ins.table.clone(),
            event: TriggerEvent::Insert,
            old: None,
            new: Some(stored),
        });
    }
    Ok(effect)
}

/// Rolls back a half-applied statement's writes (all on one table), in
/// reverse order — the statement-atomicity path. Unlike
/// [`apply_undo`], the caller still holds the table borrow.
fn undo_same_table(table: &mut Table, undo: Vec<UndoOp>, tid: TxnId) {
    for op in undo.into_iter().rev() {
        match op {
            UndoOp::Insert { rid, .. } => table.undo_insert(rid),
            UndoOp::Delete {
                rid, row, pushed, ..
            } => table.undo_delete(rid, row, pushed, tid),
            UndoOp::Update {
                rid,
                before,
                pushed,
                ..
            } => table.undo_update(rid, before, pushed, tid),
        }
    }
}

/// Validates a row's foreign keys conservatively in both directions: the
/// parent must be **visible** at the latest committed epoch plus the
/// writer's own rows ([`ExecView::fk_snap`]) — so another transaction's
/// uncommitted parent insert does not satisfy the constraint (it may
/// roll back) — *and* a **live heap row must still carry the key** — so
/// a parent under another transaction's uncommitted delete *or pk move*
/// fails the check too (that write may commit, orphaning the child).
/// Only a parent both committed-visible and not pending removal passes.
///
/// Parent tables are read-latched by the statement's latch plan, which
/// collects FK parents precisely for these probes.
fn check_foreign_keys(
    tables: &TableSet<'_>,
    pool: &BufferPool,
    schema: &crate::schema::TableSchema,
    row: &Row,
    cost: &mut CostReport,
    view: &ExecView,
) -> Result<()> {
    let fk_snap = view.fk_snap();
    for fk in schema.foreign_keys() {
        let pos = schema.require_column(&fk.column)?;
        let v = row.get(pos);
        if v.is_null() {
            continue;
        }
        let ref_table = tables.table(&fk.ref_table)?;
        cost.index_probes += 1;
        let v = coerce_for(ref_table, &fk.ref_column, v);
        match ref_table.fk_probe(&v, &fk_snap) {
            (Some(rid), true) => touch_read(pool, ref_table, rid, cost),
            // Committed-visible but no live heap row carries the key:
            // the only way is another transaction's *pending* delete or
            // pk move (committed changes would show in both views).
            // That race is unresolved — retryable, like every other
            // pending-write collision in this engine.
            (Some(_), false) => {
                return Err(StorageError::WriteConflict {
                    table: fk.ref_table.clone(),
                    key: v.to_string(),
                })
            }
            (None, _) => {
                return Err(StorageError::ForeignKeyViolation {
                    constraint: fk.name.clone(),
                    detail: format!(
                        "{} = {v} not present in {}.{}",
                        fk.column, fk.ref_table, fk.ref_column
                    ),
                })
            }
        }
    }
    Ok(())
}

/// Executes an UPDATE under `view`: rows match against the statement's
/// snapshot, and each write passes the first-updater-wins gate —
/// touching a row whose newest committed version postdates the snapshot
/// aborts with [`StorageError::WriteConflict`].
pub(crate) fn run_update(
    tables: &mut TableSet<'_>,
    pool: &BufferPool,
    upd: &Update,
    params: &[Value],
    cost: &mut CostReport,
    view: &ExecView,
) -> Result<WriteEffect> {
    let schema = tables.table(&upd.table)?.schema().clone();
    let mut layout = Layout::default();
    layout.push_table(&upd.table, tables.table(&upd.table)?);
    let snap = view.snap;
    let tid = view.tid();

    // Plan matching rows against the snapshot.
    let match_rids = {
        let table = tables.table(&upd.table)?;
        let rids = plan_write_rids(
            table,
            &upd.table,
            upd.predicate.as_ref(),
            params,
            cost,
            &snap,
        )?;
        let bound = match &upd.predicate {
            Some(p) => Some(p.bind(&layout.binder())?),
            None => None,
        };
        let candidates: Vec<RowId> = match rids {
            Some(r) => r,
            None => table.scan_rids(),
        };
        let mut matched = Vec::new();
        for rid in candidates {
            touch_read(pool, table, rid, cost);
            let Some(row) = table.visible(rid, &snap) else {
                continue;
            };
            cost.rows_scanned += 1;
            let keep = match &bound {
                Some(p) => p.matches(row, params)?,
                None => true,
            };
            if keep {
                matched.push(rid);
            }
        }
        matched
    };

    // Bind SET expressions against the single-table layout.
    let sets: Vec<(usize, Expr)> = upd
        .sets
        .iter()
        .map(|(c, e)| Ok((schema.require_column(c)?, e.bind(&layout.binder())?)))
        .collect::<Result<_>>()?;

    let mut effect = WriteEffect::default();
    let applied = apply_update_rows(
        tables,
        pool,
        upd,
        &schema,
        &sets,
        &match_rids,
        params,
        cost,
        view,
        &mut effect,
    );
    if let Err(e) = applied {
        // Statement atomicity: a conflict or constraint failure on row
        // N also undoes rows 1..N-1 (their versions would otherwise
        // leak on a writer that never commits).
        undo_same_table(
            tables.table_mut(&upd.table)?,
            std::mem::take(&mut effect.undo),
            tid,
        );
        return Err(e);
    }
    Ok(effect)
}

/// The row-application loop of [`run_update`], split out so its caller
/// can roll back a half-applied statement on error.
#[allow(clippy::too_many_arguments)]
fn apply_update_rows(
    tables: &mut TableSet<'_>,
    pool: &BufferPool,
    upd: &Update,
    schema: &crate::schema::TableSchema,
    sets: &[(usize, Expr)],
    match_rids: &[RowId],
    params: &[Value],
    cost: &mut CostReport,
    view: &ExecView,
    effect: &mut WriteEffect,
) -> Result<()> {
    let snap = view.snap;
    let tid = view.tid();
    for &rid in match_rids {
        let old = tables
            .table(&upd.table)?
            .visible(rid, &snap)
            .cloned()
            .ok_or_else(|| StorageError::Eval("row vanished during update".into()))?;
        let mut new = old.clone();
        for (pos, e) in sets {
            let v = e.eval(&old, params)?;
            new.values_mut()[*pos] = v;
        }
        // FK checks against the new image.
        check_foreign_keys(tables, pool, schema, &new, cost, view)?;
        let table = tables.table_mut(&upd.table)?;
        // The write gate guarantees `before` equals the version the
        // snapshot matched (or the transaction's own newer image).
        let (before, pushed) = table.update_txn(rid, new.clone(), tid, &snap)?;
        let stored = table.get(rid).expect("just updated").clone();
        touch_write_raw(pool, table.id(), table.page_of(rid), cost);
        cost.rows_written += 1;
        effect.affected += 1;
        effect.undo.push(UndoOp::Update {
            table: upd.table.clone(),
            rid,
            before: before.clone(),
            pushed,
        });
        effect.changes.push(RowChange {
            table: upd.table.clone(),
            event: TriggerEvent::Update,
            old: Some(before),
            new: Some(stored),
        });
    }
    Ok(())
}

fn touch_write_raw(pool: &BufferPool, table: u32, page: u64, cost: &mut CostReport) {
    let t = pool.touch_write(PageId { table, page });
    if t.hit {
        cost.page_hits += 1;
    } else {
        cost.page_misses += 1;
    }
    cost.page_writebacks += t.writebacks;
}

/// Executes a DELETE under `view`: rows match against the statement's
/// snapshot and pass the first-updater-wins gate; the deleted versions
/// stay visible to older snapshots until vacuumed.
pub(crate) fn run_delete(
    tables: &mut TableSet<'_>,
    pool: &BufferPool,
    del: &Delete,
    params: &[Value],
    cost: &mut CostReport,
    view: &ExecView,
) -> Result<WriteEffect> {
    let mut layout = Layout::default();
    layout.push_table(&del.table, tables.table(&del.table)?);
    let snap = view.snap;
    let tid = view.tid();
    let match_rids = {
        let table = tables.table(&del.table)?;
        let rids = plan_write_rids(
            table,
            &del.table,
            del.predicate.as_ref(),
            params,
            cost,
            &snap,
        )?;
        let bound = match &del.predicate {
            Some(p) => Some(p.bind(&layout.binder())?),
            None => None,
        };
        let candidates: Vec<RowId> = match rids {
            Some(r) => r,
            None => table.scan_rids(),
        };
        let mut matched = Vec::new();
        for rid in candidates {
            touch_read(pool, table, rid, cost);
            let Some(row) = table.visible(rid, &snap) else {
                continue;
            };
            cost.rows_scanned += 1;
            let keep = match &bound {
                Some(p) => p.matches(row, params)?,
                None => true,
            };
            if keep {
                matched.push(rid);
            }
        }
        matched
    };

    let table = tables.table_mut(&del.table)?;
    let mut effect = WriteEffect::default();
    for rid in match_rids {
        // Statement atomicity: see run_insert.
        let (old, pushed) = match table.delete_txn(rid, tid, &snap) {
            Ok(r) => r,
            Err(e) => {
                undo_same_table(table, effect.undo, tid);
                return Err(e);
            }
        };
        touch_write_raw(pool, table.id(), table.page_of(rid), cost);
        cost.rows_written += 1;
        effect.affected += 1;
        effect.undo.push(UndoOp::Delete {
            table: del.table.clone(),
            rid,
            row: old.clone(),
            pushed,
        });
        effect.changes.push(RowChange {
            table: del.table.clone(),
            event: TriggerEvent::Delete,
            old: Some(old),
            new: None,
        });
    }
    Ok(effect)
}

/// Applies `tid`'s undo operations in reverse order (transaction
/// rollback): uncommitted versions disappear, pushed history versions
/// pop back into place, and no other snapshot ever observes an
/// intermediate state. The table set must write-cover every table the
/// undo log names (commit/rollback latch exactly that set).
pub(crate) fn apply_undo(tables: &mut TableSet<'_>, undo: Vec<UndoOp>, tid: TxnId) -> Result<()> {
    for op in undo.into_iter().rev() {
        match op {
            UndoOp::Insert { table, rid } => {
                tables.table_mut(&table)?.undo_insert(rid);
            }
            UndoOp::Delete {
                table,
                rid,
                row,
                pushed,
            } => {
                tables.table_mut(&table)?.undo_delete(rid, row, pushed, tid);
            }
            UndoOp::Update {
                table,
                rid,
                before,
                pushed,
            } => {
                tables
                    .table_mut(&table)?
                    .undo_update(rid, before, pushed, tid);
            }
        }
    }
    Ok(())
}
