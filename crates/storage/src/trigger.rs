//! Row-level AFTER triggers.
//!
//! This is the database primitive CacheGenie builds on: for every cached
//! object it installs INSERT/UPDATE/DELETE triggers on the underlying
//! tables, and the trigger bodies push invalidations or incremental updates
//! into the cache *synchronously, inside the write statement* — which is
//! what gives the paper its "users see their own writes immediately"
//! guarantee (§3.3).
//!
//! Semantics mirror PostgreSQL `AFTER <event> FOR EACH ROW` triggers:
//! bodies observe the post-change table state, receive OLD/NEW row images,
//! may run read-only queries against the database, and an error aborts the
//! whole statement.

use crate::cost::CostReport;
use crate::error::Result;
use crate::query::{QueryResult, Select};
use crate::row::Row;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Which write event a trigger reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TriggerEvent {
    /// Fired once per inserted row; `new` is set.
    Insert,
    /// Fired once per updated row; `old` and `new` are set.
    Update,
    /// Fired once per deleted row; `old` is set.
    Delete,
}

impl fmt::Display for TriggerEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TriggerEvent::Insert => "INSERT",
            TriggerEvent::Update => "UPDATE",
            TriggerEvent::Delete => "DELETE",
        };
        f.write_str(s)
    }
}

/// What a trigger body can see and do. Constructed by the executor after
/// each row change; bodies get the row images plus a read-only query
/// surface and cost-accounting hooks.
pub struct TriggerCtx<'a> {
    /// The event that fired.
    pub event: TriggerEvent,
    /// Table the event occurred on.
    pub table: &'a str,
    /// Pre-image (UPDATE and DELETE).
    pub old: Option<&'a Row>,
    /// Post-image (INSERT and UPDATE).
    pub new: Option<&'a Row>,
    /// Read-only query callback into the engine. Boxed so `trigger.rs`
    /// stays decoupled from the executor internals.
    pub(crate) query_fn: &'a mut dyn FnMut(&Select, &[Value]) -> Result<QueryResult>,
    /// Cost sink for work done inside the trigger.
    pub(crate) cost: &'a mut CostReport,
}

impl fmt::Debug for TriggerCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TriggerCtx")
            .field("event", &self.event)
            .field("table", &self.table)
            .field("old", &self.old)
            .field("new", &self.new)
            .finish_non_exhaustive()
    }
}

impl TriggerCtx<'_> {
    /// Runs a read-only query against the database from inside the trigger
    /// (Postgres triggers do this to compute incremental updates).
    ///
    /// # Errors
    ///
    /// Propagates executor errors; an error aborts the outer statement.
    pub fn query(&mut self, select: &Select, params: &[Value]) -> Result<QueryResult> {
        (self.query_fn)(select, params)
    }

    /// Records `n` cache operations performed by this trigger body. The
    /// cost model prices each at the paper's measured ~0.2 ms.
    pub fn charge_cache_ops(&mut self, n: u64) {
        self.cost.trigger_cache_ops += n;
    }

    /// Records that the trigger opened a (modelled) remote cache
    /// connection — the dominant trigger cost in the paper's §5.3
    /// microbenchmark (INSERT latency 6.5 ms → 11.9 ms).
    pub fn charge_connection_open(&mut self) {
        self.cost.trigger_connections += 1;
    }

    /// The row a key-extraction body should use: NEW for inserts/updates,
    /// OLD for deletes.
    pub fn effective_row(&self) -> Option<&Row> {
        self.new.or(self.old)
    }
}

/// A trigger body. Implemented for closures.
pub trait TriggerBody: Send + Sync {
    /// Runs the body; an error aborts the triggering statement.
    fn fire(&self, ctx: &mut TriggerCtx<'_>) -> Result<()>;
}

impl<F> TriggerBody for F
where
    F: Fn(&mut TriggerCtx<'_>) -> Result<()> + Send + Sync,
{
    fn fire(&self, ctx: &mut TriggerCtx<'_>) -> Result<()> {
        self(ctx)
    }
}

/// A registered trigger.
#[derive(Clone)]
pub struct Trigger {
    /// Unique trigger name.
    pub name: String,
    /// Table it watches.
    pub table: String,
    /// Event it reacts to.
    pub event: TriggerEvent,
    /// Executable body.
    pub body: Arc<dyn TriggerBody>,
    /// Generated source listing, if the trigger was produced by a code
    /// generator (CacheGenie reports lines of generated trigger code).
    pub source: Option<String>,
}

impl Trigger {
    /// Creates a trigger from a closure body.
    pub fn new(
        name: impl Into<String>,
        table: impl Into<String>,
        event: TriggerEvent,
        body: impl TriggerBody + 'static,
    ) -> Self {
        Trigger {
            name: name.into(),
            table: table.into(),
            event,
            body: Arc::new(body),
            source: None,
        }
    }

    /// Attaches a generated source listing.
    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }
}

impl fmt::Debug for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trigger")
            .field("name", &self.name)
            .field("table", &self.table)
            .field("event", &self.event)
            .field("has_source", &self.source.is_some())
            .finish()
    }
}

/// The per-database trigger registry.
#[derive(Debug, Default)]
pub struct TriggerManager {
    triggers: Vec<Trigger>,
    /// Global enable switch; Experiment 5 replays the workload with
    /// triggers off to measure the consistency overhead.
    enabled: bool,
}

impl TriggerManager {
    /// Creates an empty, enabled registry.
    pub fn new() -> Self {
        TriggerManager {
            triggers: Vec::new(),
            enabled: true,
        }
    }

    /// Registers a trigger. Names must be unique.
    ///
    /// # Errors
    ///
    /// [`crate::StorageError::AlreadyExists`] on a duplicate name.
    pub fn register(&mut self, trigger: Trigger) -> Result<()> {
        if self.triggers.iter().any(|t| t.name == trigger.name) {
            return Err(crate::StorageError::AlreadyExists(trigger.name));
        }
        self.triggers.push(trigger);
        Ok(())
    }

    /// Removes a trigger by name; returns whether it existed.
    pub fn drop_trigger(&mut self, name: &str) -> bool {
        let before = self.triggers.len();
        self.triggers.retain(|t| t.name != name);
        self.triggers.len() != before
    }

    /// Removes every trigger.
    pub fn clear(&mut self) {
        self.triggers.clear();
    }

    /// Globally enables or disables firing.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether firing is globally enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// All triggers matching `(table, event)`, cloned so the executor can
    /// fire them without holding a borrow of the registry.
    pub fn matching(&self, table: &str, event: TriggerEvent) -> Vec<Trigger> {
        if !self.enabled {
            return Vec::new();
        }
        self.triggers
            .iter()
            .filter(|t| t.table == table && t.event == event)
            .cloned()
            .collect()
    }

    /// Whether any enabled trigger watches `table` (any event). The
    /// engine uses this to decide if a write on `table` must run in
    /// exclusive (trigger-firing) mode.
    pub fn has_for_table(&self, table: &str) -> bool {
        self.enabled && self.triggers.iter().any(|t| t.table == table)
    }

    /// Every registered trigger.
    pub fn all(&self) -> &[Trigger] {
        &self.triggers
    }

    /// Number of registered triggers.
    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    /// True if no triggers are registered.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// Total lines across all attached source listings — reproduces the
    /// paper's "1720 lines of generated trigger code" metric.
    pub fn generated_source_lines(&self) -> usize {
        self.triggers
            .iter()
            .filter_map(|t| t.source.as_deref())
            .map(|s| s.lines().count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn noop() -> impl TriggerBody {
        |_: &mut TriggerCtx<'_>| Ok(())
    }

    #[test]
    fn register_and_match() {
        let mut m = TriggerManager::new();
        m.register(Trigger::new("t1", "wall", TriggerEvent::Insert, noop()))
            .unwrap();
        m.register(Trigger::new("t2", "wall", TriggerEvent::Delete, noop()))
            .unwrap();
        assert_eq!(m.matching("wall", TriggerEvent::Insert).len(), 1);
        assert_eq!(m.matching("wall", TriggerEvent::Update).len(), 0);
        assert_eq!(m.matching("other", TriggerEvent::Insert).len(), 0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut m = TriggerManager::new();
        m.register(Trigger::new("t", "a", TriggerEvent::Insert, noop()))
            .unwrap();
        assert!(m
            .register(Trigger::new("t", "b", TriggerEvent::Delete, noop()))
            .is_err());
    }

    #[test]
    fn disable_suppresses_matching() {
        let mut m = TriggerManager::new();
        m.register(Trigger::new("t", "a", TriggerEvent::Insert, noop()))
            .unwrap();
        m.set_enabled(false);
        assert!(m.matching("a", TriggerEvent::Insert).is_empty());
        m.set_enabled(true);
        assert_eq!(m.matching("a", TriggerEvent::Insert).len(), 1);
    }

    #[test]
    fn drop_trigger_by_name() {
        let mut m = TriggerManager::new();
        m.register(Trigger::new("t", "a", TriggerEvent::Insert, noop()))
            .unwrap();
        assert!(m.drop_trigger("t"));
        assert!(!m.drop_trigger("t"));
        assert!(m.is_empty());
    }

    #[test]
    fn source_line_accounting() {
        let mut m = TriggerManager::new();
        m.register(
            Trigger::new("t", "a", TriggerEvent::Insert, noop()).with_source("line1\nline2\nline3"),
        )
        .unwrap();
        m.register(Trigger::new("u", "a", TriggerEvent::Delete, noop()))
            .unwrap();
        assert_eq!(m.generated_source_lines(), 3);
    }

    #[test]
    fn closure_bodies_fire() {
        static FIRED: AtomicUsize = AtomicUsize::new(0);
        let body = |_ctx: &mut TriggerCtx<'_>| {
            FIRED.fetch_add(1, Ordering::SeqCst);
            Ok(())
        };
        let t = Trigger::new("t", "a", TriggerEvent::Insert, body);
        let mut cost = CostReport::new();
        let mut qf = |_: &Select, _: &[Value]| Ok(QueryResult::default());
        let mut ctx = TriggerCtx {
            event: TriggerEvent::Insert,
            table: "a",
            old: None,
            new: None,
            query_fn: &mut qf,
            cost: &mut cost,
        };
        t.body.fire(&mut ctx).unwrap();
        ctx.charge_cache_ops(2);
        ctx.charge_connection_open();
        assert_eq!(FIRED.load(Ordering::SeqCst), 1);
        assert_eq!(cost.trigger_cache_ops, 2);
        assert_eq!(cost.trigger_connections, 1);
    }

    #[test]
    fn effective_row_prefers_new() {
        let r_new = Row::new(vec![Value::Int(1)]);
        let r_old = Row::new(vec![Value::Int(0)]);
        let mut cost = CostReport::new();
        let mut qf = |_: &Select, _: &[Value]| Ok(QueryResult::default());
        let ctx = TriggerCtx {
            event: TriggerEvent::Update,
            table: "a",
            old: Some(&r_old),
            new: Some(&r_new),
            query_fn: &mut qf,
            cost: &mut cost,
        };
        assert_eq!(ctx.effective_row().unwrap().get(0), &Value::Int(1));
    }
}
