//! Error types for the storage engine.
//!
//! Two variants are *retryable aborts* rather than failures:
//! [`StorageError::Deadlock`] (the transaction lost a waits-for cycle)
//! and [`StorageError::WriteConflict`] (first-updater-wins — a
//! concurrent transaction committed a newer version of a row this
//! transaction's snapshot had read). Both mean the transaction was
//! rolled back and should be retried on a fresh snapshot:
//!
//! ```
//! use genie_storage::{Database, StorageError, Value};
//!
//! fn transfer(db: &Database, from: i64, to: i64) -> Result<(), StorageError> {
//!     db.transaction(|t| {
//!         t.execute_sql("UPDATE acct SET bal = bal - 1 WHERE id = $1", &[Value::Int(from)])?;
//!         t.execute_sql("UPDATE acct SET bal = bal + 1 WHERE id = $1", &[Value::Int(to)])?;
//!         Ok(())
//!     })
//! }
//!
//! # fn main() -> Result<(), StorageError> {
//! let db = Database::default();
//! db.execute_sql("CREATE TABLE acct (id INT PRIMARY KEY, bal INT)", &[])?;
//! db.execute_sql("INSERT INTO acct VALUES (1, 10), (2, 10)", &[])?;
//! // The canonical retry loop: aborts are expected under contention.
//! loop {
//!     match transfer(&db, 1, 2) {
//!         Ok(()) => break,
//!         Err(StorageError::Deadlock { .. }) | Err(StorageError::WriteConflict { .. }) => {
//!             continue; // rolled back; retry on a fresh snapshot
//!         }
//!         Err(e) => return Err(e), // real error
//!     }
//! }
//! assert_eq!(
//!     db.execute_sql("SELECT bal FROM acct WHERE id = 2", &[])?.result.rows[0].get(0),
//!     &Value::Int(11),
//! );
//! # Ok(())
//! # }
//! ```

use std::fmt;

/// Any error produced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The named table does not exist.
    UnknownTable(String),
    /// The named column does not exist on the referenced table.
    UnknownColumn { table: String, column: String },
    /// The named index does not exist.
    UnknownIndex(String),
    /// An object with this name already exists.
    AlreadyExists(String),
    /// A value was incompatible with the column's declared type.
    TypeMismatch {
        column: String,
        expected: String,
        got: String,
    },
    /// A NOT NULL column received NULL.
    NullViolation(String),
    /// A UNIQUE or PRIMARY KEY constraint was violated.
    UniqueViolation { index: String, key: String },
    /// A FOREIGN KEY constraint was violated.
    ForeignKeyViolation { constraint: String, detail: String },
    /// SQL text failed to lex or parse.
    Parse(String),
    /// The statement is recognised but unsupported by the engine.
    Unsupported(String),
    /// A trigger body returned an error; the statement is aborted.
    TriggerFailed { trigger: String, detail: String },
    /// The transaction was aborted (deadlock timeout or explicit rollback).
    TransactionAborted(String),
    /// A transactional operation was issued outside a transaction.
    NoTransaction,
    /// Row-lock acquisition timed out (write-write conflict).
    LockTimeout { table: String },
    /// The transaction was chosen as the victim of a waits-for deadlock
    /// cycle; the caller must roll it back and may retry it.
    Deadlock { table: String },
    /// First-updater-wins: the transaction tried to write a row version
    /// that a concurrent transaction already superseded after this
    /// transaction's snapshot was taken. Roll the transaction back and
    /// retry it on a fresh snapshot.
    WriteConflict { table: String, key: String },
    /// An arithmetic or evaluation error inside an expression.
    Eval(String),
    /// A write-ahead-log failure: log I/O error (the log is fail-stop —
    /// once poisoned, no later commit is ever reported durable), a
    /// corrupt checkpoint, or an unrecoverable log during restart.
    Wal(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column {column:?} on table {table:?}")
            }
            StorageError::UnknownIndex(i) => write!(f, "unknown index {i:?}"),
            StorageError::AlreadyExists(n) => write!(f, "object {n:?} already exists"),
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for column {column:?}: expected {expected}, got {got}"
            ),
            StorageError::NullViolation(c) => {
                write!(f, "null value in NOT NULL column {c:?}")
            }
            StorageError::UniqueViolation { index, key } => {
                write!(f, "duplicate key {key} violates unique index {index:?}")
            }
            StorageError::ForeignKeyViolation { constraint, detail } => {
                write!(f, "foreign key {constraint:?} violated: {detail}")
            }
            StorageError::Parse(m) => write!(f, "parse error: {m}"),
            StorageError::Unsupported(m) => write!(f, "unsupported: {m}"),
            StorageError::TriggerFailed { trigger, detail } => {
                write!(f, "trigger {trigger:?} failed: {detail}")
            }
            StorageError::TransactionAborted(m) => write!(f, "transaction aborted: {m}"),
            StorageError::NoTransaction => write!(f, "no transaction is active"),
            StorageError::LockTimeout { table } => {
                write!(f, "lock timeout on table {table:?}")
            }
            StorageError::Deadlock { table } => {
                write!(
                    f,
                    "deadlock detected waiting on {table:?}; transaction aborted as victim"
                )
            }
            StorageError::WriteConflict { table, key } => {
                write!(
                    f,
                    "write conflict on {table:?} key {key}: a newer committed version \
                     superseded this transaction's snapshot (first-updater-wins)"
                )
            }
            StorageError::Eval(m) => write!(f, "evaluation error: {m}"),
            StorageError::Wal(m) => write!(f, "wal: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::UnknownColumn {
            table: "wall".into(),
            column: "nope".into(),
        };
        let s = e.to_string();
        assert!(s.contains("wall") && s.contains("nope"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StorageError>();
    }
}
