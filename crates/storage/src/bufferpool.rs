//! Buffer-pool *model*: tracks which heap pages would be memory-resident.
//!
//! Rows live in Rust memory regardless; the pool exists to decide whether a
//! page touch is a *hit* or a *miss* (disk read) and whether evictions
//! write back dirty pages. Capacity is configured in bytes, as on the
//! paper's 2 GB database machine whose 10 GB dataset forces disk traffic.
//!
//! The model is page-LRU with a dirty bit, which is close enough to
//! Postgres' clock sweep for the shapes the evaluation depends on.
//!
//! The pool is shared by all statement threads, so its state lives behind
//! one internal mutex and the API takes `&self`. It is deliberately *not*
//! sharded: a single LRU clock keeps eviction order globally deterministic,
//! which the plan-audit baselines depend on, and each touch holds the mutex
//! only for a hash-map probe.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Identity of one heap page: `(table_id, page_number)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId {
    /// Dense table identifier assigned by the database catalog.
    pub table: u32,
    /// Page number within the table's heap.
    pub page: u64,
}

/// Counters describing pool behaviour since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page touches that found the page resident.
    pub hits: u64,
    /// Page touches that required a (modelled) disk read.
    pub misses: u64,
    /// Dirty pages written back during eviction.
    pub writebacks: u64,
    /// Pages currently resident.
    pub resident: usize,
}

#[derive(Debug, Clone)]
struct Frame {
    /// Position in the LRU clock: larger = more recently used.
    stamp: u64,
    dirty: bool,
}

/// Mutable pool state: frame table, LRU clock, counters.
#[derive(Debug)]
struct PoolInner {
    frames: HashMap<PageId, Frame>,
    clock: u64,
    stats: PoolStats,
}

/// The pool model. Thread-safe: all methods take `&self`.
#[derive(Debug)]
pub struct BufferPool {
    page_bytes: usize,
    capacity_pages: usize,
    inner: Mutex<PoolInner>,
}

/// Outcome of touching one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Touch {
    /// False if the touch required a disk read.
    pub hit: bool,
    /// Number of dirty pages written back to make room.
    pub writebacks: u64,
}

impl BufferPool {
    /// Default modelled page size (8 KiB, as in Postgres).
    pub const DEFAULT_PAGE_BYTES: usize = 8 * 1024;

    /// Creates a pool holding `capacity_bytes` of `page_bytes` pages.
    ///
    /// Capacity is floored at one page so the model degrades to "every
    /// touch after the first on a different page misses".
    pub fn new(capacity_bytes: usize, page_bytes: usize) -> Self {
        let page_bytes = page_bytes.max(512);
        BufferPool {
            page_bytes,
            capacity_pages: (capacity_bytes / page_bytes).max(1),
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                clock: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Creates a pool with the default page size.
    pub fn with_capacity_bytes(capacity_bytes: usize) -> Self {
        BufferPool::new(capacity_bytes, Self::DEFAULT_PAGE_BYTES)
    }

    /// The modelled page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Maximum resident pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Touches `page` for reading; returns hit/miss and eviction effects.
    pub fn touch(&self, page: PageId) -> Touch {
        self.touch_inner(page, false)
    }

    /// Touches `page` for writing (marks it dirty).
    pub fn touch_write(&self, page: PageId) -> Touch {
        self.touch_inner(page, true)
    }

    fn touch_inner(&self, page: PageId, write: bool) -> Touch {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(f) = inner.frames.get_mut(&page) {
            f.stamp = stamp;
            f.dirty |= write;
            inner.stats.hits += 1;
            return Touch {
                hit: true,
                writebacks: 0,
            };
        }
        inner.stats.misses += 1;
        let mut writebacks = 0;
        while inner.frames.len() >= self.capacity_pages {
            if let Some((&victim, _)) = inner.frames.iter().min_by_key(|(_, f)| f.stamp) {
                let f = inner.frames.remove(&victim).expect("victim present");
                if f.dirty {
                    writebacks += 1;
                }
            } else {
                break;
            }
        }
        inner.stats.writebacks += writebacks;
        inner.frames.insert(
            page,
            Frame {
                stamp,
                dirty: write,
            },
        );
        inner.stats.resident = inner.frames.len();
        Touch {
            hit: false,
            writebacks,
        }
    }

    /// Drops every frame belonging to `table` (used by DROP TABLE / TRUNCATE).
    pub fn invalidate_table(&self, table: u32) {
        let mut inner = self.inner.lock();
        inner.frames.retain(|p, _| p.table != table);
        inner.stats.resident = inner.frames.len();
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        let mut s = inner.stats;
        s.resident = inner.frames.len();
        s
    }

    /// Zeroes the hit/miss counters but keeps residency (used between
    /// warm-up and measurement intervals).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.stats = PoolStats {
            resident: inner.frames.len(),
            ..Default::default()
        };
    }

    /// Hit ratio since the last reset, or 1.0 with no traffic.
    pub fn hit_ratio(&self) -> f64 {
        let stats = self.inner.lock().stats;
        let total = stats.hits + stats.misses;
        if total == 0 {
            1.0
        } else {
            stats.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(table: u32, page: u64) -> PageId {
        PageId { table, page }
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let bp = BufferPool::new(8 * 1024 * 4, 8 * 1024);
        assert!(!bp.touch(pid(1, 0)).hit);
        assert!(bp.touch(pid(1, 0)).hit);
        assert_eq!(bp.stats().hits, 1);
        assert_eq!(bp.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_coldest() {
        let bp = BufferPool::new(8 * 1024 * 2, 8 * 1024); // 2 pages
        bp.touch(pid(1, 0));
        bp.touch(pid(1, 1));
        bp.touch(pid(1, 0)); // page 0 now hottest
        bp.touch(pid(1, 2)); // evicts page 1
        assert!(bp.touch(pid(1, 0)).hit, "page 0 should have survived");
        assert!(!bp.touch(pid(1, 1)).hit, "page 1 should have been evicted");
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let bp = BufferPool::new(8 * 1024, 8 * 1024); // 1 page
        bp.touch_write(pid(1, 0));
        let t = bp.touch(pid(1, 1));
        assert_eq!(t.writebacks, 1);
        assert_eq!(bp.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_does_not_write_back() {
        let bp = BufferPool::new(8 * 1024, 8 * 1024);
        bp.touch(pid(1, 0));
        let t = bp.touch(pid(1, 1));
        assert_eq!(t.writebacks, 0);
    }

    #[test]
    fn rewrite_keeps_dirty_until_evicted() {
        let bp = BufferPool::new(8 * 1024 * 2, 8 * 1024);
        bp.touch_write(pid(1, 0));
        bp.touch(pid(1, 0)); // read does not clean it
        bp.touch(pid(1, 1));
        let t = bp.touch(pid(1, 2)); // evicts page 0 (coldest) — dirty
        assert_eq!(t.writebacks, 1);
    }

    #[test]
    fn capacity_floors_at_one_page() {
        let bp = BufferPool::new(0, 8 * 1024);
        assert_eq!(bp.capacity_pages(), 1);
    }

    #[test]
    fn invalidate_table_drops_frames() {
        let bp = BufferPool::new(8 * 1024 * 8, 8 * 1024);
        bp.touch(pid(1, 0));
        bp.touch(pid(2, 0));
        bp.invalidate_table(1);
        assert!(!bp.touch(pid(1, 0)).hit);
        assert!(bp.touch(pid(2, 0)).hit);
    }

    #[test]
    fn hit_ratio_and_reset() {
        let bp = BufferPool::new(8 * 1024 * 4, 8 * 1024);
        bp.touch(pid(1, 0));
        bp.touch(pid(1, 0));
        assert!((bp.hit_ratio() - 0.5).abs() < 1e-9);
        bp.reset_stats();
        assert_eq!(bp.hit_ratio(), 1.0);
        assert_eq!(bp.stats().resident, 1);
    }

    #[test]
    fn working_set_larger_than_pool_thrashes() {
        let bp = BufferPool::new(8 * 1024 * 4, 8 * 1024); // 4 pages
                                                          // Cycle through 8 pages twice: LRU gives 0% hit rate on the rescan.
        for _ in 0..2 {
            for p in 0..8 {
                bp.touch(pid(1, p));
            }
        }
        assert_eq!(bp.stats().hits, 0);
        assert_eq!(bp.stats().misses, 16);
    }

    #[test]
    fn shared_across_threads() {
        let bp = BufferPool::new(8 * 1024 * 64, 8 * 1024);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let bp = &bp;
                s.spawn(move || {
                    for p in 0..8 {
                        bp.touch(pid(t, p));
                        bp.touch(pid(t, p));
                    }
                });
            }
        });
        let stats = bp.stats();
        assert_eq!(stats.hits + stats.misses, 64);
        assert_eq!(stats.misses, 32, "each page misses exactly once");
    }
}
