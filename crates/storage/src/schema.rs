//! Table schemas: columns, constraints, indexes, foreign keys.

use crate::error::{Result, StorageError};
use crate::value::ValueType;

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-sensitive, by convention lower_snake).
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
    /// Whether NULL is rejected.
    pub not_null: bool,
    /// Whether a single-column unique index is implied.
    pub unique: bool,
}

impl ColumnDef {
    /// Creates a nullable, non-unique column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            not_null: false,
            unique: false,
        }
    }

    /// Marks the column NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    /// Marks the column UNIQUE.
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }
}

/// A foreign-key constraint from one column of this table to the primary
/// key of another table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKeyDef {
    /// Constraint name (auto-derived if built through the builder).
    pub name: String,
    /// Referencing column on this table.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column (must be the referenced table's primary key).
    pub ref_column: String,
}

/// A secondary index over one or more columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name, unique within the database.
    pub name: String,
    /// Indexed columns, in key order.
    pub columns: Vec<String>,
    /// Whether the index enforces uniqueness.
    pub unique: bool,
}

/// Schema of a single table.
///
/// Built with [`TableSchema::builder`]; the first column is conventionally
/// the integer primary key (the ORM layer always generates an `id` column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    name: String,
    columns: Vec<ColumnDef>,
    primary_key: String,
    foreign_keys: Vec<ForeignKeyDef>,
    /// Approximate bytes per row used by the buffer-pool model when rows
    /// are absent (e.g. planning); actual rows report their real size.
    pub rows_per_page_hint: usize,
}

impl TableSchema {
    /// Starts building a schema for `name`.
    pub fn builder(name: impl Into<String>) -> TableSchemaBuilder {
        TableSchemaBuilder {
            name: name.into(),
            columns: Vec::new(),
            primary_key: None,
            foreign_keys: Vec::new(),
            rows_per_page_hint: 64,
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All columns, in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The primary-key column name.
    pub fn primary_key(&self) -> &str {
        &self.primary_key
    }

    /// Index of the primary-key column.
    pub fn primary_key_pos(&self) -> usize {
        self.column_pos(&self.primary_key)
            .expect("primary key validated at build time")
    }

    /// Declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKeyDef] {
        &self.foreign_keys
    }

    /// Position of `column`, or `None` if absent.
    pub fn column_pos(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == column)
    }

    /// Position of `column`, as a storage error if absent.
    pub fn require_column(&self, column: &str) -> Result<usize> {
        self.column_pos(column)
            .ok_or_else(|| StorageError::UnknownColumn {
                table: self.name.clone(),
                column: column.to_owned(),
            })
    }

    /// The column definition for `column`, if present.
    pub fn column(&self, column: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == column)
    }
}

/// Builder for [`TableSchema`]; see [`TableSchema::builder`].
#[derive(Debug, Clone)]
pub struct TableSchemaBuilder {
    name: String,
    columns: Vec<ColumnDef>,
    primary_key: Option<String>,
    foreign_keys: Vec<ForeignKeyDef>,
    rows_per_page_hint: usize,
}

impl TableSchemaBuilder {
    /// Adds a column.
    pub fn column(mut self, def: ColumnDef) -> Self {
        self.columns.push(def);
        self
    }

    /// Shorthand: adds a NOT NULL integer primary-key column named `name`
    /// and marks it as the primary key.
    pub fn pk(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        self.columns
            .push(ColumnDef::new(name.clone(), ValueType::Int).not_null());
        self.primary_key = Some(name);
        self
    }

    /// Declares which existing column is the primary key.
    pub fn primary_key(mut self, column: impl Into<String>) -> Self {
        self.primary_key = Some(column.into());
        self
    }

    /// Adds a foreign key from `column` to `ref_table(ref_column)`.
    pub fn foreign_key(
        mut self,
        column: impl Into<String>,
        ref_table: impl Into<String>,
        ref_column: impl Into<String>,
    ) -> Self {
        let column = column.into();
        let ref_table = ref_table.into();
        let name = format!("fk_{}_{}_{}", self.name, column, ref_table);
        self.foreign_keys.push(ForeignKeyDef {
            name,
            column,
            ref_table,
            ref_column: ref_column.into(),
        });
        self
    }

    /// Overrides the buffer-pool rows-per-page hint for this table.
    pub fn rows_per_page(mut self, rows: usize) -> Self {
        self.rows_per_page_hint = rows.max(1);
        self
    }

    /// Validates and builds the schema.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Parse`] for an empty column list, a
    /// duplicate column name, a missing/unknown primary key, or a foreign
    /// key referencing an unknown local column.
    pub fn build(self) -> Result<TableSchema> {
        if self.columns.is_empty() {
            return Err(StorageError::Parse(format!(
                "table {:?} has no columns",
                self.name
            )));
        }
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::Parse(format!(
                    "duplicate column {:?} in table {:?}",
                    c.name, self.name
                )));
            }
        }
        let primary_key = self.primary_key.ok_or_else(|| {
            StorageError::Parse(format!("table {:?} has no primary key", self.name))
        })?;
        if !self.columns.iter().any(|c| c.name == primary_key) {
            return Err(StorageError::Parse(format!(
                "primary key {primary_key:?} is not a column of {:?}",
                self.name
            )));
        }
        for fk in &self.foreign_keys {
            if !self.columns.iter().any(|c| c.name == fk.column) {
                return Err(StorageError::Parse(format!(
                    "foreign key column {:?} is not a column of {:?}",
                    fk.column, self.name
                )));
            }
        }
        Ok(TableSchema {
            name: self.name,
            columns: self.columns,
            primary_key,
            foreign_keys: self.foreign_keys,
            rows_per_page_hint: self.rows_per_page_hint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wall_schema() -> TableSchema {
        TableSchema::builder("wall")
            .pk("post_id")
            .column(ColumnDef::new("user_id", ValueType::Int).not_null())
            .column(ColumnDef::new("content", ValueType::Text))
            .column(ColumnDef::new("sender_id", ValueType::Int).not_null())
            .column(ColumnDef::new("date_posted", ValueType::Timestamp).not_null())
            .foreign_key("user_id", "users", "id")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_schema() {
        let s = wall_schema();
        assert_eq!(s.name(), "wall");
        assert_eq!(s.arity(), 5);
        assert_eq!(s.primary_key(), "post_id");
        assert_eq!(s.primary_key_pos(), 0);
        assert_eq!(s.column_pos("content"), Some(2));
        assert_eq!(s.foreign_keys().len(), 1);
        assert_eq!(s.foreign_keys()[0].ref_table, "users");
    }

    #[test]
    fn require_column_reports_table() {
        let s = wall_schema();
        let err = s.require_column("missing").unwrap_err();
        assert_eq!(
            err,
            StorageError::UnknownColumn {
                table: "wall".into(),
                column: "missing".into()
            }
        );
    }

    #[test]
    fn empty_table_rejected() {
        let err = TableSchema::builder("t").build().unwrap_err();
        assert!(matches!(err, StorageError::Parse(_)));
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = TableSchema::builder("t")
            .pk("id")
            .column(ColumnDef::new("id", ValueType::Text))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate column"));
    }

    #[test]
    fn missing_primary_key_rejected() {
        let err = TableSchema::builder("t")
            .column(ColumnDef::new("x", ValueType::Int))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("no primary key"));
    }

    #[test]
    fn unknown_pk_column_rejected() {
        let err = TableSchema::builder("t")
            .column(ColumnDef::new("x", ValueType::Int))
            .primary_key("y")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("not a column"));
    }

    #[test]
    fn fk_on_unknown_column_rejected() {
        let err = TableSchema::builder("t")
            .pk("id")
            .foreign_key("ghost", "users", "id")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn rows_per_page_clamps_to_one() {
        let s = TableSchema::builder("t")
            .pk("id")
            .rows_per_page(0)
            .build()
            .unwrap();
        assert_eq!(s.rows_per_page_hint, 1);
    }
}
