//! Cost-based access-path planning for single-table scans.
//!
//! Extracted from the executor so that *choosing* how to read a table is
//! separate from *doing* it. The planner analyzes a statement's WHERE
//! conjuncts against the table's primary key and secondary indexes and
//! picks the cheapest [`AccessPath`] under a cost model whose weights
//! mirror the physical counters in [`crate::cost::CostReport`] (rows
//! scanned, index probes, page touches, sort rows).
//!
//! The executor re-applies the full WHERE clause to whatever the chosen
//! path yields, so every path only has to produce a *superset* of the
//! matching rows in a known order — which is what lets the planner use
//! the storage total order (see [`crate::value`]) for range scans without
//! re-deriving SQL comparison semantics.
//!
//! Paths (the shapes a Django-style ORM emits):
//!
//! * [`AccessPath::PkEq`] / [`AccessPath::IndexEq`] — point lookups;
//! * [`AccessPath::PkRange`] / [`AccessPath::IndexRange`] — `<', `<=`,
//!   `>`, `>=`, `BETWEEN` over an indexed column, optionally under an
//!   equality prefix of a composite index;
//! * [`AccessPath::IndexPrefixRange`] — equality on a proper prefix of a
//!   composite index;
//! * [`AccessPath::IndexOr`] — `IN (...)` lists and same-column `OR`
//!   equality chains as sorted multi-key lookups;
//! * [`AccessPath::TableScan`] — the fallback.
//!
//! Index scans yield rows in index-key order, so the planner also decides
//! whether the chosen path already satisfies `ORDER BY` (possibly by
//! scanning in reverse), letting the executor skip the sort.

use crate::cost::CostReport;
use crate::error::Result;
use crate::expr::{CmpOp, Expr};
use crate::query::{OrderKey, Select};
use crate::row::Row;
use crate::table::Table;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// One end of a range scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// No constraint on this end.
    Unbounded,
    /// Endpoint included (`<=` / `>=` / `BETWEEN`).
    Included(Value),
    /// Endpoint excluded (`<` / `>`).
    Excluded(Value),
}

impl Bound {
    /// True if this end is constrained.
    pub fn is_bounded(&self) -> bool {
        !matches!(self, Bound::Unbounded)
    }

    /// The endpoint value, if bounded.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Bound::Unbounded => None,
            Bound::Included(v) | Bound::Excluded(v) => Some(v),
        }
    }
}

/// How the executor reads the base table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Visit every row in heap order.
    TableScan,
    /// Primary-key point lookup.
    PkEq {
        /// The key value.
        key: Value,
    },
    /// Multi-key primary-key lookup (`pk IN (...)` / OR chains on the
    /// primary key); keys are deduplicated and sorted.
    PkOr {
        /// Key values, sorted ascending, no duplicates.
        keys: Vec<Value>,
    },
    /// Ordered scan of a primary-key range.
    PkRange {
        /// Lower end.
        from: Bound,
        /// Upper end.
        to: Bound,
    },
    /// Exact-key secondary-index lookup (all key columns constrained).
    IndexEq {
        /// Index name.
        index: String,
        /// Full-width key, in index column order.
        key: Vec<Value>,
    },
    /// Ordered scan of an index range: equality on the first
    /// `eq_prefix.len()` key columns, a range on the next one.
    IndexRange {
        /// Index name.
        index: String,
        /// Values for the leading equality-constrained key columns.
        eq_prefix: Vec<Value>,
        /// Lower end on the first unconstrained key column.
        from: Bound,
        /// Upper end on the first unconstrained key column.
        to: Bound,
    },
    /// Equality on a proper prefix of a composite index's key columns.
    IndexPrefixRange {
        /// Index name.
        index: String,
        /// Values for the leading key columns.
        prefix: Vec<Value>,
    },
    /// Multi-key lookup for `IN (...)` / same-column `OR` chains; keys
    /// are deduplicated and sorted, so the scan yields key order.
    IndexOr {
        /// Index name.
        index: String,
        /// First-key-column values, sorted ascending, no duplicates.
        keys: Vec<Value>,
    },
}

impl AccessPath {
    /// Short tag for diagnostics (`EXPLAIN` output, bench labels).
    pub fn kind(&self) -> &'static str {
        match self {
            AccessPath::TableScan => "TableScan",
            AccessPath::PkEq { .. } => "PkEq",
            AccessPath::PkOr { .. } => "PkOr",
            AccessPath::PkRange { .. } => "PkRange",
            AccessPath::IndexEq { .. } => "IndexEq",
            AccessPath::IndexRange { .. } => "IndexRange",
            AccessPath::IndexPrefixRange { .. } => "IndexPrefixRange",
            AccessPath::IndexOr { .. } => "IndexOr",
        }
    }
}

/// The planner's decision for one base-table access.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Table being read.
    pub table: String,
    /// Chosen access path.
    pub path: AccessPath,
    /// Estimated rows the path yields (before residual filtering).
    pub estimated_rows: f64,
    /// Estimated physical cost in row-visit units.
    pub estimated_cost: f64,
    /// True when the path yields rows in the statement's ORDER BY order,
    /// so the executor skips its sort.
    pub order_satisfied: bool,
    /// True when the path must be scanned in reverse to satisfy a
    /// descending ORDER BY.
    pub reverse: bool,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}", self.path.kind(), self.table)?;
        match &self.path {
            AccessPath::TableScan => {}
            AccessPath::PkEq { key } => write!(f, " pk={key}")?,
            AccessPath::PkOr { keys } => write!(f, " pk in [{}]", ValuesFmt(keys))?,
            AccessPath::PkRange { from, to } => write!(f, " pk in {}", RangeFmt(from, to))?,
            AccessPath::IndexEq { index, key } => {
                write!(f, " via {index} key=[{}]", ValuesFmt(key))?
            }
            AccessPath::IndexRange {
                index,
                eq_prefix,
                from,
                to,
            } => {
                write!(f, " via {index}")?;
                if !eq_prefix.is_empty() {
                    write!(f, " prefix=[{}]", ValuesFmt(eq_prefix))?;
                }
                write!(f, " range {}", RangeFmt(from, to))?;
            }
            AccessPath::IndexPrefixRange { index, prefix } => {
                write!(f, " via {index} prefix=[{}]", ValuesFmt(prefix))?
            }
            AccessPath::IndexOr { index, keys } => {
                write!(f, " via {index} keys=[{}]", ValuesFmt(keys))?
            }
        }
        write!(
            f,
            " rows~{:.1} cost~{:.1}{}{})",
            self.estimated_rows,
            self.estimated_cost,
            if self.order_satisfied { " ordered" } else { "" },
            if self.reverse { " reverse" } else { "" },
        )
    }
}

struct ValuesFmt<'a>(&'a [Value]);

impl fmt::Display for ValuesFmt<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

struct RangeFmt<'a>(&'a Bound, &'a Bound);

impl fmt::Display for RangeFmt<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Bound::Unbounded => f.write_str("(")?,
            Bound::Included(v) => write!(f, "[{v}")?,
            Bound::Excluded(v) => write!(f, "({v}")?,
        }
        f.write_str("..")?;
        match self.1 {
            Bound::Unbounded => f.write_str(")"),
            Bound::Included(v) => write!(f, "{v}]"),
            Bound::Excluded(v) => write!(f, "{v})"),
        }
    }
}

// ---------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------
//
// Unit: one heap-row visit (one `rows_scanned` tick). The other weights
// express how the benchmark cost model prices the matching CostReport
// counters relative to a row visit: a B-tree probe does a few comparisons
// plus pointer chasing; a page touch risks a buffer-pool miss; sorting is
// per-row-comparison work.

const ROW_COST: f64 = 1.0;
const PROBE_COST: f64 = 2.0;
const PAGE_COST: f64 = 0.5;
const SORT_ROW_COST: f64 = 0.4;

/// Selectivity guesses for range predicates without histograms (the
/// classic System-R defaults).
const RANGE_BOTH_BOUNDED_SEL: f64 = 0.25;
const RANGE_HALF_BOUNDED_SEL: f64 = 0.33;

fn range_selectivity(from: &Bound, to: &Bound) -> f64 {
    match (from.is_bounded(), to.is_bounded()) {
        (true, true) => RANGE_BOTH_BOUNDED_SEL,
        (false, false) => 1.0,
        _ => RANGE_HALF_BOUNDED_SEL,
    }
}

fn scan_cost(rows: f64, probes: f64, rows_per_page: f64) -> f64 {
    rows * ROW_COST + probes * PROBE_COST + (rows / rows_per_page.max(1.0)) * PAGE_COST
}

fn sort_cost(rows: f64) -> f64 {
    rows * rows.max(2.0).log2() * SORT_ROW_COST
}

// ---------------------------------------------------------------------
// Predicate analysis
// ---------------------------------------------------------------------

/// Everything the WHERE conjuncts say about one base-table column.
#[derive(Debug, Default, Clone)]
struct ColumnConstraint {
    eq: Option<Value>,
    lower: Option<Bound>,
    upper: Option<Bound>,
    /// Sorted, deduplicated `IN` / OR-equality key set.
    in_keys: Option<Vec<Value>>,
}

/// Per-column constraints extracted from a predicate for one binding.
#[derive(Debug, Default)]
struct Constraints {
    cols: Vec<(String, ColumnConstraint)>,
}

impl Constraints {
    fn get(&self, col: &str) -> Option<&ColumnConstraint> {
        self.cols.iter().find(|(c, _)| c == col).map(|(_, c)| c)
    }

    fn entry(&mut self, col: &str) -> &mut ColumnConstraint {
        if let Some(i) = self.cols.iter().position(|(c, _)| c == col) {
            return &mut self.cols[i].1;
        }
        self.cols
            .push((col.to_owned(), ColumnConstraint::default()));
        &mut self.cols.last_mut().expect("just pushed").1
    }

    fn eq_value(&self, col: &str) -> Option<&Value> {
        self.get(col).and_then(|c| c.eq.as_ref())
    }

    fn has_any(&self) -> bool {
        !self.cols.is_empty()
    }
}

/// Evaluates a row-free expression (literal or parameter).
pub(crate) fn eval_const(e: &Expr, params: &[Value]) -> Result<Value> {
    e.eval(&Row::default(), params)
}

/// Coerces a predicate value for use against `column`'s stored
/// representation. Returns `None` when no index-safe form exists (the
/// caller then skips the index candidate; the residual filter keeps
/// semantics).
fn coerce_for_column(table: &Table, column: &str, v: &Value) -> Option<Value> {
    let col = table.schema().column(column)?;
    if let Some(cv) = v.coerce_to(col.ty) {
        return Some(cv);
    }
    // Numerics interleave in the storage total order, so an uncoercible
    // float bound (e.g. `int_col > 10.5`) still ranges correctly raw.
    use crate::value::ValueType;
    let numeric_col = matches!(col.ty, ValueType::Int | ValueType::Float);
    let numeric_val = matches!(v, Value::Int(_) | Value::Float(_));
    if numeric_col && numeric_val {
        return Some(v.clone());
    }
    None
}

/// True when `cref` constrains `binding`'s table (qualified with the
/// binding name, or unqualified and resolvable in the table's schema —
/// ORMs qualify ambiguous columns, so first-match attribution is safe).
fn binds_to(cref: &crate::expr::ColumnRef, binding: &str, table: &Table) -> bool {
    let name_ok = match &cref.table {
        Some(t) => t == binding,
        None => true,
    };
    name_ok && table.schema().column_pos(&cref.column).is_some()
}

fn extract_constraints(
    pred: Option<&Expr>,
    binding: &str,
    table: &Table,
    params: &[Value],
) -> Result<Constraints> {
    let mut out = Constraints::default();
    let Some(pred) = pred else {
        return Ok(out);
    };
    for conjunct in pred.conjuncts() {
        if let Some((cref, vexpr)) = conjunct.as_column_eq() {
            if binds_to(cref, binding, table) {
                let v = eval_const(vexpr, params)?;
                if let Some(cv) = coerce_for_column(table, &cref.column, &v) {
                    out.entry(&cref.column).eq = Some(cv);
                }
            }
            continue;
        }
        if let Some((cref, op, vexpr)) = conjunct.as_column_cmp() {
            if !matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
                || !binds_to(cref, binding, table)
            {
                continue;
            }
            let v = eval_const(vexpr, params)?;
            // A NULL endpoint makes the comparison unknown for every row;
            // leave it to the residual filter rather than building a
            // range that storage-orders NULL below everything.
            if v.is_null() {
                continue;
            }
            let Some(cv) = coerce_for_column(table, &cref.column, &v) else {
                continue;
            };
            let c = out.entry(&cref.column);
            match op {
                CmpOp::Gt => tighten_lower(&mut c.lower, Bound::Excluded(cv)),
                CmpOp::Ge => tighten_lower(&mut c.lower, Bound::Included(cv)),
                CmpOp::Lt => tighten_upper(&mut c.upper, Bound::Excluded(cv)),
                CmpOp::Le => tighten_upper(&mut c.upper, Bound::Included(cv)),
                _ => unreachable!("filtered above"),
            }
            continue;
        }
        let in_pair = conjunct.as_column_in().map(|(c, list)| (c, list.to_vec()));
        let or_pair = || {
            conjunct
                .as_or_column_eqs()
                .map(|(c, list)| (c, list.into_iter().cloned().collect::<Vec<_>>()))
        };
        if let Some((cref, items)) = in_pair.or_else(or_pair) {
            if !binds_to(cref, binding, table) {
                continue;
            }
            let mut keys = BTreeSet::new();
            let mut all_indexable = true;
            for item in &items {
                let v = eval_const(item, params)?;
                if v.is_null() {
                    // `col IN (.., NULL)` / `col = NULL` arms never match.
                    continue;
                }
                match coerce_for_column(table, &cref.column, &v) {
                    Some(cv) => {
                        keys.insert(cv);
                    }
                    None => {
                        all_indexable = false;
                        break;
                    }
                }
            }
            if all_indexable {
                out.entry(&cref.column).in_keys = Some(keys.into_iter().collect());
            }
        }
    }
    Ok(out)
}

fn tighten_lower(slot: &mut Option<Bound>, candidate: Bound) {
    let replace = match (&slot, &candidate) {
        (None, _) => true,
        (Some(Bound::Included(old) | Bound::Excluded(old)), Bound::Included(new)) => new > old,
        (Some(Bound::Included(old)), Bound::Excluded(new)) => new >= old,
        (Some(Bound::Excluded(old)), Bound::Excluded(new)) => new > old,
        (Some(Bound::Unbounded), _) => true,
        (_, Bound::Unbounded) => false,
    };
    if replace {
        *slot = Some(candidate);
    }
}

fn tighten_upper(slot: &mut Option<Bound>, candidate: Bound) {
    let replace = match (&slot, &candidate) {
        (None, _) => true,
        (Some(Bound::Included(old) | Bound::Excluded(old)), Bound::Included(new)) => new < old,
        (Some(Bound::Included(old)), Bound::Excluded(new)) => new <= old,
        (Some(Bound::Excluded(old)), Bound::Excluded(new)) => new < old,
        (Some(Bound::Unbounded), _) => true,
        (_, Bound::Unbounded) => false,
    };
    if replace {
        *slot = Some(candidate);
    }
}

// ---------------------------------------------------------------------
// ORDER BY analysis
// ---------------------------------------------------------------------

/// The base-table columns a statement orders by, when the whole ORDER BY
/// is plain base-table columns (the only case an index scan can satisfy).
fn order_columns<'a>(
    order_by: &'a [OrderKey],
    binding: &str,
    table: &Table,
) -> Option<Vec<(&'a str, bool)>> {
    let mut out = Vec::with_capacity(order_by.len());
    for key in order_by {
        let Expr::Column(c) = &key.expr else {
            return None;
        };
        if !binds_to(c, binding, table) {
            return None;
        }
        out.push((c.column.as_str(), key.desc));
    }
    Some(out)
}

/// Decides whether `remaining` index key columns satisfy the ORDER BY,
/// after dropping order keys pinned to a constant by an equality
/// constraint. Returns `(satisfied, reverse)`.
fn order_match(
    order: &Option<Vec<(&str, bool)>>,
    cons: &Constraints,
    remaining: &[String],
) -> (bool, bool) {
    let Some(order) = order else {
        return (false, false);
    };
    // Order keys on eq-constrained columns are constant across survivors.
    let effective: Vec<&(&str, bool)> = order
        .iter()
        .filter(|(c, _)| cons.eq_value(c).is_none())
        .collect();
    if effective.is_empty() {
        return (true, false);
    }
    // The order must cover *every* remaining key column, not just a
    // prefix: otherwise rows tying on the ORDER BY keys would come back
    // in trailing-key-column order instead of the heap (rid) tie order
    // the stable sort produces, and results would change with the set of
    // available indexes.
    if effective.len() != remaining.len() {
        return (false, false);
    }
    let desc = effective[0].1;
    for (i, (col, d)) in effective.iter().enumerate() {
        if *d != desc || remaining[i] != *col {
            return (false, false);
        }
    }
    (true, desc)
}

// ---------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------

/// Plans the base-table access for a SELECT (the same entry point the
/// executor uses — see [`crate::Database::explain`]).
pub fn plan_select(table: &Table, sel: &Select, params: &[Value]) -> Result<Plan> {
    plan_access(
        table,
        sel.from.binding_name(),
        sel.predicate.as_ref(),
        if sel.joins.is_empty() && !sel.is_aggregate() && sel.group_by.is_empty() {
            &sel.order_by
        } else {
            // Joins re-shuffle rows and aggregates ignore input order, so
            // an ordered scan buys nothing.
            &[]
        },
        params,
    )
}

/// Plans one base-table access from a predicate and an ORDER BY.
pub fn plan_access(
    table: &Table,
    binding: &str,
    pred: Option<&Expr>,
    order_by: &[OrderKey],
    params: &[Value],
) -> Result<Plan> {
    let cons = extract_constraints(pred, binding, table, params)?;
    let order = order_columns(order_by, binding, table);
    let has_order = !order_by.is_empty();
    let n = table.len() as f64;
    let rpp = table.schema().rows_per_page_hint as f64;

    // Near-equal costs are broken by path specificity (a wider matched
    // key bounds the result set more tightly even when today's data
    // makes the row estimates tie — e.g. every invitation still PENDING
    // makes (to_user_id) and (to_user_id, status) look equally
    // selective), then by the fixed candidate-generation order below, so
    // the choice never flip-flops between runs.
    const TIE_EPS: f64 = 1e-6;
    let mut best: Option<(Plan, f64)> = None;
    let mut consider =
        |path: AccessPath, rows: f64, probes: f64, satisfied: bool, rev: bool, tie_rank: f64| {
            let mut cost = scan_cost(rows, probes, rpp);
            if has_order && !satisfied {
                cost += sort_cost(rows);
            }
            let cand = Plan {
                table: table.schema().name().to_owned(),
                path,
                estimated_rows: rows,
                estimated_cost: cost,
                order_satisfied: satisfied && has_order,
                reverse: rev && satisfied && has_order,
            };
            let replaces = match &best {
                None => true,
                Some((b, rank)) => {
                    cand.estimated_cost < b.estimated_cost - TIE_EPS
                        || ((cand.estimated_cost - b.estimated_cost).abs() <= TIE_EPS
                            && tie_rank > *rank)
                }
            };
            if replaces {
                best = Some((cand, tie_rank));
            }
        };

    let pk = table.schema().primary_key();

    // 1. Primary-key point lookup: at most one row, trivially ordered.
    if let Some(v) = cons.eq_value(pk) {
        consider(
            AccessPath::PkEq { key: v.clone() },
            1.0,
            1.0,
            true,
            false,
            100.0,
        );
    } else if let Some(keys) = cons.get(pk).and_then(|c| c.in_keys.clone()) {
        // 2. Multi-key primary-key lookup: `pk IN (...)`. Sorted keys
        // yield pk order.
        let k = keys.len() as f64;
        let (sat, rev) = order_match(&order, &cons, &[pk.to_owned()]);
        consider(AccessPath::PkOr { keys }, k, k, sat, rev, 90.0);
    } else if let Some(c) = cons.get(pk) {
        // 3. Primary-key range scan.
        let from = c.lower.clone().unwrap_or(Bound::Unbounded);
        let to = c.upper.clone().unwrap_or(Bound::Unbounded);
        if from.is_bounded() || to.is_bounded() {
            let rows = n * range_selectivity(&from, &to);
            let (sat, rev) = order_match(&order, &cons, &[pk.to_owned()]);
            consider(AccessPath::PkRange { from, to }, rows, 1.0, sat, rev, 15.0);
        }
    }

    // 4. Secondary indexes: equality / prefix / range / IN-OR shapes.
    for idx in table.indexes() {
        let columns = &idx.def().columns;
        let width = columns.len() as f64;
        let distinct = idx.distinct_keys().max(1) as f64;
        // Selectivity of an equality prefix of `p` of `width` key
        // columns. When another index covers exactly the prefix columns,
        // its distinct-key count is the true prefix cardinality;
        // otherwise fall back to the geometric interpolation
        // `distinct^(p/width)` (each key column contributes equally).
        let prefix_sel = |p: f64| {
            let cols = &columns[..p as usize];
            table
                .indexes()
                .iter()
                .find(|other| other.def().columns == cols)
                .map(|other| 1.0 / other.distinct_keys().max(1) as f64)
                .unwrap_or_else(|| (1.0 / distinct).powf(p / width))
        };

        let mut eq_prefix = Vec::new();
        for col in columns {
            match cons.eq_value(col) {
                Some(v) => eq_prefix.push(v.clone()),
                None => break,
            }
        }
        let p = eq_prefix.len();

        if p == columns.len() {
            let rows = (n * prefix_sel(width)).max(1.0);
            // A unique full-key match yields at most one row, which is
            // trivially ordered.
            let (sat, _) = if idx.def().unique {
                (true, false)
            } else {
                order_match(&order, &cons, &[])
            };
            consider(
                AccessPath::IndexEq {
                    index: idx.def().name.clone(),
                    key: eq_prefix,
                },
                rows,
                1.0,
                sat,
                false,
                width * 10.0,
            );
            continue;
        }

        let remaining = &columns[p..];
        let next_col = &remaining[0];
        let range = cons.get(next_col).and_then(|c| {
            let from = c.lower.clone().unwrap_or(Bound::Unbounded);
            let to = c.upper.clone().unwrap_or(Bound::Unbounded);
            (from.is_bounded() || to.is_bounded()).then_some((from, to))
        });

        if let Some((from, to)) = range {
            // Equality prefix plus a range on the next key column.
            let rows = (n * prefix_sel(p as f64) * range_selectivity(&from, &to)).max(1.0);
            let (sat, rev) = order_match(&order, &cons, remaining);
            consider(
                AccessPath::IndexRange {
                    index: idx.def().name.clone(),
                    eq_prefix: eq_prefix.clone(),
                    from,
                    to,
                },
                rows,
                1.0,
                sat,
                rev,
                p as f64 * 10.0 + 5.0,
            );
            continue;
        }

        if p > 0 {
            let rows = (n * prefix_sel(p as f64)).max(1.0);
            let (sat, rev) = order_match(&order, &cons, remaining);
            consider(
                AccessPath::IndexPrefixRange {
                    index: idx.def().name.clone(),
                    prefix: eq_prefix,
                },
                rows,
                1.0,
                sat,
                rev,
                p as f64 * 10.0,
            );
            continue;
        }

        // IN (...) / OR-equality chain on the first key column.
        if let Some(keys) = cons.get(&columns[0]).and_then(|c| c.in_keys.clone()) {
            if !keys.is_empty() {
                let k = keys.len() as f64;
                let rows = (k * n * prefix_sel(1.0)).min(n).max(1.0);
                // Sorted distinct keys yield key order; order_match's
                // full-coverage rule keeps the claim to single-column
                // indexes (a wider index would order same-first-column
                // ties by its trailing columns).
                let (sat, rev) = order_match(&order, &cons, columns);
                consider(
                    AccessPath::IndexOr {
                        index: idx.def().name.clone(),
                        keys,
                    },
                    rows,
                    k,
                    sat,
                    rev,
                    5.0,
                );
                continue;
            } else {
                // Every IN item was NULL: nothing can match; an empty
                // multi-key lookup reads zero rows.
                consider(
                    AccessPath::IndexOr {
                        index: idx.def().name.clone(),
                        keys,
                    },
                    0.0,
                    0.0,
                    true,
                    false,
                    200.0,
                );
                continue;
            }
        }

        // No usable predicate — but a full ordered index scan can still
        // beat scan+sort when it satisfies the ORDER BY.
        let (sat, rev) = order_match(&order, &cons, columns);
        if sat && has_order {
            consider(
                AccessPath::IndexRange {
                    index: idx.def().name.clone(),
                    eq_prefix: Vec::new(),
                    from: Bound::Unbounded,
                    to: Bound::Unbounded,
                },
                n,
                1.0,
                true,
                rev,
                1.0,
            );
        }
    }

    // 5. Fallback: full scan. Charged one probe-equivalent of setup so
    // that an index path with the same row estimate always beats it (an
    // index bounds the result set even if the table grows; and the FK
    // probes the benchmark cost model prices must stay index probes).
    // Only constraint-free trivial orders are satisfied — heap order is
    // insertion order, not pk order, so ORDER BY pk still sorts.
    let (sat, _) = if cons.has_any() {
        order_match(&order, &cons, &[])
    } else {
        (false, false)
    };
    consider(AccessPath::TableScan, n, 1.0, sat, false, 0.0);

    Ok(best
        .map(|(plan, _)| plan)
        .expect("TableScan is always a candidate"))
}

/// Executes a plan's access path, returning candidate row ids in path
/// order (`None` means full heap scan). Charges probes to `cost`.
pub(crate) fn execute_path(
    table: &Table,
    plan: &Plan,
    cost: &mut CostReport,
) -> Option<Vec<crate::row::RowId>> {
    match &plan.path {
        AccessPath::TableScan => None,
        AccessPath::PkEq { key } => {
            cost.index_probes += 1;
            Some(table.find_pk(key).into_iter().collect())
        }
        AccessPath::PkOr { keys } => {
            cost.index_probes += keys.len() as u64;
            let mut rids: Vec<crate::row::RowId> =
                keys.iter().filter_map(|k| table.find_pk(k)).collect();
            if plan.reverse {
                rids.reverse();
            }
            Some(rids)
        }
        AccessPath::PkRange { from, to } => {
            cost.index_probes += 1;
            Some(table.pk_range_scan(from, to, plan.reverse))
        }
        AccessPath::IndexEq { index, key } => {
            cost.index_probes += 1;
            let idx = table.index_by_name(index).expect("planned index exists");
            Some(table.index_lookup(idx, key))
        }
        AccessPath::IndexRange {
            index,
            eq_prefix,
            from,
            to,
        } => {
            cost.index_probes += 1;
            let idx = table.index_by_name(index).expect("planned index exists");
            Some(table.index_range_scan(idx, eq_prefix, from, to, plan.reverse))
        }
        AccessPath::IndexPrefixRange { index, prefix } => {
            cost.index_probes += 1;
            let idx = table.index_by_name(index).expect("planned index exists");
            Some(table.index_prefix_scan(idx, prefix, plan.reverse))
        }
        AccessPath::IndexOr { index, keys } => {
            cost.index_probes += keys.len() as u64;
            let idx = table.index_by_name(index).expect("planned index exists");
            Some(table.index_multi_lookup(idx, keys, plan.reverse))
        }
    }
}
